//! Process-wide compiled-artifact cache (DESIGN.md §10).
//!
//! A batched multi-room run compiles the same handful of kernels over and
//! over: every room of a given boundary model and precision lowers to a
//! byte-identical kernel AST, but [`exec::prepare`] hands each caller a
//! [`Prepared`] with a fresh `id`, so the per-device launch-plan caches
//! (keyed on that id) never line up across rooms and every job replans and
//! re-verifies from scratch. This module deduplicates that work at the
//! process level, across devices and worker threads:
//!
//! * [`compile_cached`] — content-fingerprinted `Kernel` → `Arc<Prepared>`.
//!   Identical kernels share one `Prepared` (and therefore one `id`), which
//!   is what makes the downstream plan and verdict caches effective.
//! * a shared launch-plan map keyed `(prep id, binding kind signature)` that
//!   [`Device::launch_wg`](crate::device::Device) consults after a
//!   per-device miss, so a plan computed on one worker's device is adopted
//!   by every other device launching the same prepared kernel.
//! * [`verify_cached`] — memoized static-verifier verdicts
//!   ([`verify_prepared`]) per prepared id, so a batch gate re-checking
//!   every job pays for each distinct kernel once.
//!
//! Counters: `vgpu.artifact.hits` / `vgpu.artifact.misses` (compile cache),
//! `vgpu.plan.shared_hits` (plan adopted from the shared map — the adopting
//! device bumps neither `vgpu.plan.hits` nor `vgpu.plan.misses` for that
//! launch), and `vgpu.verify.hits` / `vgpu.verify.misses` (verdict cache).
//!
//! The caches are append-only for the life of the process: entries are tiny
//! (a `Prepared`, a `LaunchPlan`, a `TapeReport`) and the population is
//! bounded by the number of distinct kernels the process compiles, so no
//! eviction is needed.

use crate::exec::{self, ExecError, LaunchPlan, Prepared};
use crate::telemetry;
use crate::verify::{verify_prepared, TapeReport};
use lift::kast::Kernel;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Key of the shared plan map: (prepared-kernel id, binding kind signature).
pub type PlanKey = (u64, Vec<u8>);

fn compiled() -> &'static Mutex<HashMap<u64, Arc<Prepared>>> {
    static M: OnceLock<Mutex<HashMap<u64, Arc<Prepared>>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(HashMap::new()))
}

fn plans() -> &'static Mutex<HashMap<PlanKey, Arc<LaunchPlan>>> {
    static M: OnceLock<Mutex<HashMap<PlanKey, Arc<LaunchPlan>>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(HashMap::new()))
}

fn verdicts() -> &'static Mutex<HashMap<u64, Option<Arc<TapeReport>>>> {
    static M: OnceLock<Mutex<HashMap<u64, Option<Arc<TapeReport>>>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Content fingerprint of a kernel AST. Two kernels that print identically
/// under `{:?}` (same name, params, body, work_dim — which is everything a
/// [`Kernel`] holds) get the same fingerprint; distinct precisions resolve
/// to distinct ASTs and therefore distinct fingerprints.
pub fn fingerprint(kernel: &Kernel) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{kernel:?}").hash(&mut h);
    h.finish()
}

/// Compiles `kernel` through the process-wide artifact cache: returns the
/// shared [`Prepared`] for its content fingerprint, preparing it on first
/// sight. All callers handed the same `Arc` share one prepared id, so their
/// devices' launch-plan caches (and the shared plan map) line up.
///
/// Preparation *errors* are not cached — a failing kernel re-fails on every
/// call, which keeps error paths identical to [`exec::prepare`].
pub fn compile_cached(kernel: &Kernel) -> Result<Arc<Prepared>, ExecError> {
    let fp = fingerprint(kernel);
    let reg = telemetry::registry();
    if let Some(p) = compiled().lock().unwrap().get(&fp) {
        reg.counter("vgpu.artifact.hits").inc();
        return Ok(p.clone());
    }
    // Prepare outside the lock: compilation is the slow part, and a worker
    // compiling one kernel must not serialize workers compiling others.
    // If two workers race on the same kernel, the first insert wins so
    // every caller still agrees on a single id; the loser's work is
    // discarded and its miss is counted (two compilations really happened).
    let prep = Arc::new(exec::prepare(kernel)?);
    reg.counter("vgpu.artifact.misses").inc();
    Ok(compiled().lock().unwrap().entry(fp).or_insert(prep).clone())
}

/// Runs the static kernel verifier through the process-wide verdict cache,
/// keyed on the prepared id. `None` means what [`verify_prepared`] means:
/// the kernel has no tape to verify.
pub fn verify_cached(prep: &Prepared) -> Option<Arc<TapeReport>> {
    let reg = telemetry::registry();
    if let Some(v) = verdicts().lock().unwrap().get(&prep.id()) {
        reg.counter("vgpu.verify.hits").inc();
        return v.clone();
    }
    let verdict = verify_prepared(prep).map(Arc::new);
    reg.counter("vgpu.verify.misses").inc();
    verdicts().lock().unwrap().entry(prep.id()).or_insert(verdict).clone()
}

/// Looks up a launch plan in the shared map. Called by
/// [`Device::launch_wg`](crate::device::Device) after a per-device miss.
pub(crate) fn lookup_plan(key: &PlanKey) -> Option<Arc<LaunchPlan>> {
    plans().lock().unwrap().get(key).cloned()
}

/// Publishes a freshly computed launch plan so other devices can adopt it.
pub(crate) fn publish_plan(key: PlanKey, plan: Arc<LaunchPlan>) {
    plans().lock().unwrap().entry(key).or_insert(plan);
}

/// Sizes of the three process-wide caches: `(compiled kernels, launch
/// plans, verifier verdicts)`. For telemetry sidecars and tests.
pub fn cache_sizes() -> (usize, usize, usize) {
    (
        compiled().lock().unwrap().len(),
        plans().lock().unwrap().len(),
        verdicts().lock().unwrap().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::kast::{KExpr, KStmt, KernelParam, MemRef};
    use lift::prelude::ScalarKind;

    fn copy_kernel(name: &str, kind: ScalarKind) -> Kernel {
        Kernel {
            name: name.into(),
            params: vec![KernelParam::global_buf("x", kind), KernelParam::global_buf("out", kind)],
            body: vec![KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)),
            }],
            work_dim: 1,
        }
    }

    #[test]
    fn identical_kernels_share_one_prepared() {
        let a = compile_cached(&copy_kernel("artifact_share", ScalarKind::F32)).unwrap();
        let b = compile_cached(&copy_kernel("artifact_share", ScalarKind::F32)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same content must yield the same Arc");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn precision_variants_get_distinct_artifacts() {
        let f32 = compile_cached(&copy_kernel("artifact_prec", ScalarKind::F32)).unwrap();
        let f64 = compile_cached(&copy_kernel("artifact_prec", ScalarKind::F64)).unwrap();
        assert_ne!(f32.id(), f64.id(), "f32 and f64 variants are distinct artifacts");
    }

    #[test]
    fn verifier_verdicts_are_memoized() {
        let prep = compile_cached(&copy_kernel("artifact_verify", ScalarKind::F32)).unwrap();
        let a = verify_cached(&prep).expect("kernel has a tape");
        let b = verify_cached(&prep).expect("kernel has a tape");
        assert!(Arc::ptr_eq(&a, &b), "second verify must return the cached report");
        assert!(a.is_clean(), "trivial copy kernel verifies clean");
    }
}

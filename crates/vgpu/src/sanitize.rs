//! Shadow-memory sanitizer: the dynamic half of the access-footprint story.
//!
//! The static analysis ([`lift::footprint`]) *proves* per-site halo widths
//! and host-program initialization order. This module *observes* them: under
//! `VGPU_SANITIZE=shadow` every device buffer carries one shadow byte per
//! element tracking whether that element is **uninitialized**, was
//! **initialized** by an upload/store, or is a **halo mirror** of a region
//! owned by another buffer. Every engine's gather checks the shadow and
//! every scatter updates it, so
//!
//! * a load of a never-written element is reported as an *uninit read*
//!   (the dynamic witness of the host read-before-write pass), and
//! * a load of a halo mirror whose source buffer has been written since the
//!   last exchange is reported as a *stale-halo read* (the dynamic witness
//!   of the proven halo widths: a sharded schedule that exchanges too little
//!   or too late trips it on the exact seam element).
//!
//! Staleness is tracked with per-buffer version clocks: each mutation bumps
//! the owner's [`Shadow::version`]; a tagged halo write
//! ([`crate::Device::write_halo_region_tagged`]) records the source's clock
//! in a [`Mirror`], and a seam load compares the clock against that record.
//!
//! Findings are deduplicated per (kernel, site, kind, buffer) into a
//! process-wide registry ([`findings`], [`take_findings`]) and counted under
//! `vgpu.sanitize.*` in the telemetry registry. The differential engine
//! turns any finding on its own kernel into a launch error, which is the CI
//! gate: a `VGPU_ENGINE=diff` + `VGPU_SANITIZE=shadow` leg fails loudly on
//! the first stale or uninit read anywhere in the suite.
//!
//! With `VGPU_SANITIZE=off` (the default) no shadow is allocated and every
//! hook is one `Option` test on buffer metadata — the `telemetry_overhead`
//! bench holds that path to ≤2% of the unsanitized runtime.

use crate::telemetry;
use lift::kast::KernelParam;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Shadow state: element has never been written on this device.
const UNINIT: u8 = 0;
/// Shadow state: element was written by an upload, region write or store.
const INIT: u8 = 1;
/// Shadow state: element mirrors a halo region owned by another buffer.
const HALO: u8 = 2;

static FORCE_SHADOW: AtomicBool = AtomicBool::new(false);

/// Forces shadow mode on for the rest of the process, regardless of
/// `VGPU_SANITIZE`. In-process escape hatch for tests and harnesses (the
/// environment is read per call, but mutating it from a threaded test is
/// unsound; this is the safe override).
pub fn force_shadow() {
    FORCE_SHADOW.store(true, Ordering::SeqCst);
}

/// True when the shadow-memory sanitizer is enabled (`VGPU_SANITIZE=shadow`
/// or [`force_shadow`]). Consulted at buffer-creation time: buffers made
/// while this is false carry no shadow and cost one pointer test per access.
pub fn shadow_on() -> bool {
    if FORCE_SHADOW.load(Ordering::Relaxed) {
        return true;
    }
    matches!(std::env::var("VGPU_SANITIZE").as_deref(), Ok("shadow") | Ok("SHADOW"))
}

/// One halo mirror: `len` elements at `off` copied from a source buffer
/// whose version clock read `seen` at copy time.
struct Mirror {
    off: usize,
    len: usize,
    src: Arc<AtomicU64>,
    seen: u64,
}

/// Capability to tag a halo write with its source's version clock. Obtained
/// from the *source* buffer ([`crate::Device::halo_provenance`]) and handed
/// to [`crate::Device::write_halo_region_tagged`] on the destination.
pub struct HaloProvenance {
    pub(crate) src: Arc<AtomicU64>,
    pub(crate) seen: u64,
}

/// Per-buffer shadow memory: one state byte per element, a version clock
/// bumped on every mutation, and the halo mirrors currently live in the
/// buffer. All methods are `&self` and thread-safe — the interpreter hooks
/// run on rayon workers.
pub(crate) struct Shadow {
    states: Box<[AtomicU8]>,
    version: Arc<AtomicU64>,
    mirrors: Mutex<Vec<Mirror>>,
}

/// What a shadow check found wrong with one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The element was never written on this device.
    UninitRead,
    /// The element mirrors a halo region whose source buffer has been
    /// written since the copy — the mirror no longer matches the owner.
    StaleHaloRead,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::UninitRead => "uninit-read",
            FaultKind::StaleHaloRead => "stale-halo-read",
        }
    }
}

impl Shadow {
    pub(crate) fn new(len: usize, initialized: bool) -> Shadow {
        let fill = if initialized { INIT } else { UNINIT };
        let states = (0..len).map(|_| AtomicU8::new(fill)).collect();
        telemetry::registry().counter("vgpu.sanitize.shadowed_buffers").inc();
        Shadow { states, version: Arc::new(AtomicU64::new(0)), mirrors: Mutex::new(Vec::new()) }
    }

    fn bump(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks `[off, off+len)` initialized (upload, region write). Any halo
    /// mirror the region overwrites is dissolved back into owned data.
    pub(crate) fn mark_init(&self, off: usize, len: usize) {
        for s in &self.states[off..(off + len).min(self.states.len())] {
            s.store(INIT, Ordering::Relaxed);
        }
        self.mirrors.lock().retain(|m| m.off + m.len <= off || off + len <= m.off);
        self.bump();
    }

    /// Marks `[off, off+len)` as a halo mirror of the source behind `prov`
    /// (or as plain initialized data when the copy carries no provenance).
    pub(crate) fn mark_halo(&self, off: usize, len: usize, prov: Option<HaloProvenance>) {
        let Some(prov) = prov else {
            return self.mark_init(off, len);
        };
        for s in &self.states[off..(off + len).min(self.states.len())] {
            s.store(HALO, Ordering::Relaxed);
        }
        let mut mirrors = self.mirrors.lock();
        // Re-exchanging the same seam replaces the record rather than
        // growing the list a step at a time.
        if let Some(m) = mirrors.iter_mut().find(|m| m.off == off && m.len == len) {
            m.src = prov.src;
            m.seen = prov.seen;
        } else {
            mirrors.push(Mirror { off, len, src: prov.src, seen: prov.seen });
        }
        // Deliberately no version bump: a halo write lands in halo planes,
        // which are never the *source* of another buffer's mirror, so it
        // cannot invalidate anything. Bumping here would mark sibling
        // mirrors recorded earlier in the same exchange round as stale.
    }

    /// This buffer's version clock, sampled now — tag for halo copies
    /// *from* this buffer.
    pub(crate) fn provenance(&self) -> HaloProvenance {
        HaloProvenance { src: self.version.clone(), seen: self.version.load(Ordering::Relaxed) }
    }

    /// Records one kernel store: the element is now owned, initialized data.
    #[inline]
    pub(crate) fn note_store(&self, i: usize) {
        if let Some(s) = self.states.get(i) {
            s.store(INIT, Ordering::Relaxed);
        }
        self.bump();
    }

    /// Classifies one kernel load. `None` means the element is clean.
    pub(crate) fn classify_load(&self, i: usize) -> Option<FaultKind> {
        match self.states.get(i)?.load(Ordering::Relaxed) {
            INIT => None,
            HALO => {
                let mirrors = self.mirrors.lock();
                let stale = mirrors
                    .iter()
                    .find(|m| m.off <= i && i < m.off + m.len)
                    .is_some_and(|m| m.src.load(Ordering::Relaxed) != m.seen);
                stale.then_some(FaultKind::StaleHaloRead)
            }
            _ => Some(FaultKind::UninitRead),
        }
    }
}

/// Kernel context threaded into the interpreter hot loops so a finding can
/// name the kernel, site and buffer it fired on.
#[derive(Clone, Copy)]
pub(crate) struct SanCtx<'a> {
    pub(crate) kernel: &'a str,
    pub(crate) params: &'a [KernelParam],
}

/// One deduplicated sanitizer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What kind of bad read this was.
    pub kind: FaultKind,
    /// Kernel the load belongs to.
    pub kernel: String,
    /// Stable load-site id within the kernel (matches the static verifier's
    /// site numbering for tree-engine findings).
    pub site: u32,
    /// Name of the buffer parameter that was read.
    pub buffer: String,
    /// Flat element index of the first offending read observed.
    pub element: u64,
    /// Engine that observed it (`tree`, `tape`, `vector`, `compiled`).
    pub engine: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in `{}` site {}: buffer `{}` element {} ({} engine)",
            self.kind.label(),
            self.kernel,
            self.site,
            self.buffer,
            self.element,
            self.engine
        )
    }
}

#[derive(Default)]
struct Registry {
    findings: Vec<Finding>,
    seen: std::collections::HashSet<(String, u32, FaultKind, String)>,
}

fn registry() -> &'static Mutex<Registry> {
    static R: OnceLock<Mutex<Registry>> = OnceLock::new();
    R.get_or_init(Mutex::default)
}

fn report(f: Finding) {
    let ctr = match f.kind {
        FaultKind::UninitRead => "vgpu.sanitize.uninit_reads",
        FaultKind::StaleHaloRead => "vgpu.sanitize.stale_halo_reads",
    };
    telemetry::registry().counter(ctr).inc();
    let mut reg = registry().lock();
    if reg.seen.insert((f.kernel.clone(), f.site, f.kind, f.buffer.clone())) {
        reg.findings.push(f);
    }
}

/// Snapshot of all findings so far (deduplicated, process-wide).
pub fn findings() -> Vec<Finding> {
    registry().lock().findings.clone()
}

/// Drains the finding registry, returning everything recorded so far.
pub fn take_findings() -> Vec<Finding> {
    let mut reg = registry().lock();
    reg.seen.clear();
    std::mem::take(&mut reg.findings)
}

/// Number of findings recorded so far for `kernel`. The differential engine
/// samples this before/after a launch to fail the launch on its own
/// findings without racing concurrently-running kernels.
pub fn findings_for(kernel: &str) -> usize {
    registry().lock().findings.iter().filter(|f| f.kernel == kernel).count()
}

/// Interpreter load hook: classifies the read and reports a finding with
/// kernel/site provenance. Call only when the buffer has a shadow.
#[inline(never)]
pub(crate) fn report_load_fault(
    kind: FaultKind,
    san: Option<&SanCtx<'_>>,
    param: usize,
    site: u32,
    element: u64,
    engine: &'static str,
) {
    let (kernel, buffer) = match san {
        Some(s) => (
            s.kernel.to_string(),
            s.params.get(param).map(|p| p.name.clone()).unwrap_or_else(|| format!("arg{param}")),
        ),
        None => ("<unknown-kernel>".to_string(), format!("arg{param}")),
    };
    report(Finding { kind, kernel, site, buffer, element, engine });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_tracks_uninit_then_init() {
        let sh = Shadow::new(4, false);
        assert_eq!(sh.classify_load(2), Some(FaultKind::UninitRead));
        sh.note_store(2);
        assert_eq!(sh.classify_load(2), None);
        // Out-of-range indices are someone else's (bounds checker's) problem.
        assert_eq!(sh.classify_load(99), None);
    }

    #[test]
    fn halo_mirror_goes_stale_when_source_moves() {
        let owner = Shadow::new(8, true);
        let mirror = Shadow::new(8, true);
        mirror.mark_halo(0, 2, Some(owner.provenance()));
        assert_eq!(mirror.classify_load(0), None, "fresh mirror is clean");
        owner.note_store(5); // owner mutated after the exchange
        assert_eq!(mirror.classify_load(1), Some(FaultKind::StaleHaloRead));
        // Re-exchange refreshes the mirror in place.
        mirror.mark_halo(0, 2, Some(owner.provenance()));
        assert_eq!(mirror.classify_load(0), None);
        // A plain write over the seam dissolves the mirror entirely.
        owner.note_store(5);
        mirror.mark_init(0, 2);
        assert_eq!(mirror.classify_load(0), None);
    }

    #[test]
    fn findings_dedupe_by_site() {
        report(Finding {
            kind: FaultKind::UninitRead,
            kernel: "san_test_dedupe".into(),
            site: 7,
            buffer: "a".into(),
            element: 3,
            engine: "tree",
        });
        report(Finding {
            kind: FaultKind::UninitRead,
            kernel: "san_test_dedupe".into(),
            site: 7,
            buffer: "a".into(),
            element: 4,
            engine: "tree",
        });
        assert_eq!(findings_for("san_test_dedupe"), 1);
    }
}

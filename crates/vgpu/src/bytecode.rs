//! Flat bytecode compilation of prepared kernels.
//!
//! The tree-walking interpreter in [`crate::exec`] dispatches on boxed
//! [`PExpr`] nodes and `Value` enums for every operation of every work-item.
//! This module flattens a [`Prepared`] kernel once, at compile time, into a
//! linear tape of register-register [`Op`]s:
//!
//! * **Dense registers** — scalar slots map to the first `nslots` registers;
//!   expression temporaries extend the file. Registers hold raw 64-bit
//!   patterns whose interpretation ([`K`]) is fixed statically, so the inner
//!   loop never unwraps a `Value`.
//! * **Monomorphised arithmetic** — C-style promotion (`f64 > f32 > i32`,
//!   bool → i32) is resolved during compilation; every `Bin` op carries its
//!   promoted kind and operands are pre-cast by explicit `Cast` ops. The
//!   arithmetic therefore reproduces the tree-walker (and a native OpenCL
//!   kernel) bit for bit.
//! * **Static load/store sites** — `LdG`/`StG` ops carry the same site ids
//!   the tree-walker assigns, feeding the identical warp transaction model,
//!   counters, and race-check bookkeeping.
//! * **Static flop accounting** — flop counts are summed per basic block and
//!   materialised as single `Flops` ops, preserving the tree-walker's
//!   data-dependent totals (branches carry their own counts).
//!
//! Compilation is best-effort: kernels whose scalar kinds cannot be inferred
//! statically (e.g. a variable re-declared with a different kind on one
//! branch only) are rejected with an error and the launch falls back to the
//! tree-walker, which remains the reference oracle (see
//! [`crate::exec::Engine`]).

use crate::buffer::{BufPtr, SharedBuf};
use crate::exec::{Counters, PExpr, PMem, PStmt, Prepared, WriteRec, WARP};
use crate::profiler::OpProf;
use lift::kast::MemSpace;
use lift::prelude::{BinOp, Intrinsic, ScalarKind, UnOp, Value};
use std::time::Instant;

/// Register index.
pub(crate) type R = u32;

/// Statically-known register kind (the bit-pattern interpretation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum K {
    /// f32 bits in the low 32.
    F32,
    /// f64 bits.
    F64,
    /// i32 bits in the low 32 (zero-extended).
    I32,
    /// 0 or 1.
    Bool,
}

impl K {
    fn is_float(self) -> bool {
        matches!(self, K::F32 | K::F64)
    }
}

fn kk(k: ScalarKind) -> Result<K, String> {
    match k {
        ScalarKind::F32 => Ok(K::F32),
        ScalarKind::F64 => Ok(K::F64),
        ScalarKind::I32 => Ok(K::I32),
        ScalarKind::Bool => Ok(K::Bool),
        ScalarKind::Real => Err("unresolved Real kind".into()),
    }
}

// ---- bit-pattern helpers (the register encoding) ----

#[inline(always)]
fn b32(x: f32) -> u64 {
    x.to_bits() as u64
}
#[inline(always)]
fn f32v(b: u64) -> f32 {
    f32::from_bits(b as u32)
}
#[inline(always)]
fn b64(x: f64) -> u64 {
    x.to_bits()
}
#[inline(always)]
fn f64v(b: u64) -> f64 {
    f64::from_bits(b)
}
#[inline(always)]
fn bi32(x: i32) -> u64 {
    x as u32 as u64
}
#[inline(always)]
fn i32v(b: u64) -> i32 {
    b as u32 as i32
}
#[inline(always)]
fn bi64(x: i64) -> u64 {
    x as u64
}
#[inline(always)]
fn i64v(b: u64) -> i64 {
    b as i64
}
#[inline(always)]
fn bb(x: bool) -> u64 {
    x as u64
}

/// `Value::as_f64` on a register.
#[inline(always)]
fn to_f64(k: K, b: u64) -> f64 {
    match k {
        K::F32 => f32v(b) as f64,
        K::F64 => f64v(b),
        K::I32 => i32v(b) as f64,
        K::Bool => (b != 0) as i32 as f64,
    }
}

/// `Value::as_i64` on a register.
#[inline(always)]
fn to_i64(k: K, b: u64) -> i64 {
    match k {
        K::F32 => f32v(b) as i64,
        K::F64 => f64v(b) as i64,
        K::I32 => i32v(b) as i64,
        K::Bool => b as i64,
    }
}

/// `Value::truthy` on a register.
#[inline(always)]
fn truthy(k: K, b: u64) -> bool {
    match k {
        K::F32 => f32v(b) != 0.0,
        K::F64 => f64v(b) != 0.0,
        K::I32 => i32v(b) != 0,
        K::Bool => b != 0,
    }
}

/// `Value::cast` on a register (C conversion semantics).
#[inline(always)]
fn cast_bits(from: K, to: K, b: u64) -> u64 {
    match to {
        K::F32 => b32(to_f64(from, b) as f32),
        K::F64 => b64(to_f64(from, b)),
        K::I32 => bi32(to_i64(from, b) as i32),
        K::Bool => bb(truthy(from, b)),
    }
}

fn value_bits(v: Value) -> (K, u64) {
    match v {
        Value::F32(x) => (K::F32, b32(x)),
        Value::F64(x) => (K::F64, b64(x)),
        Value::I32(x) => (K::I32, bi32(x)),
        Value::Bool(x) => (K::Bool, bb(x)),
    }
}

pub(crate) fn bits_of_value(v: Value) -> u64 {
    value_bits(v).1
}

fn bits_value(k: K, b: u64) -> Value {
    match k {
        K::F32 => Value::F32(f32v(b)),
        K::F64 => Value::F64(f64v(b)),
        K::I32 => Value::I32(i32v(b)),
        K::Bool => Value::Bool(b != 0),
    }
}

/// One tape instruction. Loop counters and load/store indices are internal
/// i64 registers (`AsI64` truncates like `Value::as_i64`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// dst = bits.
    Const { dst: R, bits: u64 },
    /// dst = get_global_id(dim) as i32 bits.
    Gid { dst: R, dim: u8 },
    /// dst = get_global_size(dim).
    Gsz { dst: R, dim: u8 },
    /// dst = get_local_id(dim).
    Lid { dst: R, dim: u8 },
    /// dst = get_local_size(dim).
    Lsz { dst: R, dim: u8 },
    /// dst = get_group_id(dim).
    Grp { dst: R, dim: u8 },
    /// dst = src.
    Mov { dst: R, src: R },
    /// dst = cast(src) with C semantics.
    Cast { dst: R, src: R, from: K, to: K },
    /// dst = as_i64(src) (i64 register).
    AsI64 { dst: R, src: R, from: K },
    /// dst = max(dst, 1) on an i64 register (loop step clamping).
    MaxOne { dst: R },
    /// dst = src as i32 (loop variable materialisation).
    I64ToI32 { dst: R, src: R },
    /// dst = a + b on i64 registers.
    AddI64 { dst: R, a: R, b: R },
    /// Jump when a >= b (i64 registers; loop exit test).
    JgeI64 { a: R, b: R, target: u32 },
    /// Monomorphised negation.
    Neg { dst: R, src: R, k: K },
    /// Logical not (truthiness).
    Not { dst: R, src: R, k: K },
    /// Binary op on two operands pre-cast to the promoted kind `k`.
    Bin { dst: R, a: R, b: R, op: BinOp, k: K },
    /// Non-short-circuit `&&` / `||` on raw operands.
    Logic { dst: R, a: R, b: R, ka: K, kb: K, or: bool },
    /// min/max on operands pre-cast to `k` (f32 computes through f64 like
    /// the tree-walker).
    MinMax { dst: R, a: R, b: R, k: K, max: bool },
    /// Unary float intrinsic at fixed precision.
    Intr1 { dst: R, src: R, intr: Intrinsic, k: K },
    /// dst = truthy(ck, cond) ? t : f, raw bits. Materialised by the
    /// if-conversion pass for branch diamonds whose arms are pure: both
    /// operand chains have already executed unconditionally, so no branch —
    /// and no warp divergence — remains.
    Sel { dst: R, cond: R, ck: K, t: R, f: R },
    /// Global/constant-space load. `idx` is an i64 register.
    LdG { dst: R, buf: u16, idx: R, site: u32, constant: bool },
    /// Global-space store; `vk` is the value register's kind (the buffer
    /// casts on write, as the tree-walker does).
    StG { buf: u16, idx: R, val: R, vk: K, site: u32 },
    /// Private-array load.
    LdP { dst: R, arr: u16, idx: R },
    /// Private-array store (casts `vk` → the array kind `k`).
    StP { arr: u16, idx: R, val: R, vk: K, k: K },
    /// Workgroup-local load.
    LdL { dst: R, arr: u16, idx: R },
    /// Workgroup-local store.
    StL { arr: u16, idx: R, val: R, vk: K, k: K },
    /// (Re)allocate a private array, zero-filled.
    DeclPriv { arr: u16, len: R },
    /// Allocate a local array once per group.
    DeclLocal { arr: u16, len: R },
    /// Add `n` to the flop counter (one per basic block).
    Flops { n: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Jump when the condition is falsy.
    Jz { cond: R, k: K, target: u32 },
    /// Work-item early exit.
    Ret,
    /// End of phase.
    Halt,
}

/// Number of [`Op`] variants — sizes the profiler's per-opcode tally arrays
/// ([`crate::profiler::OpProf`]).
pub(crate) const NOPCODES: usize = 33;

/// Opcode display names, parallel to [`op_index`].
const OP_NAMES: [&str; NOPCODES] = [
    "Const",
    "Gid",
    "Gsz",
    "Lid",
    "Lsz",
    "Grp",
    "Mov",
    "Cast",
    "AsI64",
    "MaxOne",
    "I64ToI32",
    "AddI64",
    "JgeI64",
    "Neg",
    "Not",
    "Bin",
    "Logic",
    "MinMax",
    "Intr1",
    "Sel",
    "LdG",
    "StG",
    "LdP",
    "StP",
    "LdL",
    "StL",
    "DeclPriv",
    "DeclLocal",
    "Flops",
    "Jmp",
    "Jz",
    "Ret",
    "Halt",
];

/// Display name of the opcode with dense index `i` (see [`op_index`]).
pub(crate) fn op_name(i: usize) -> &'static str {
    OP_NAMES[i]
}

/// Dense index of an op's variant (declaration order), used by the per-op
/// profiler to tally counts/time in fixed arrays without hashing.
#[inline(always)]
pub(crate) fn op_index(op: &Op) -> usize {
    match op {
        Op::Const { .. } => 0,
        Op::Gid { .. } => 1,
        Op::Gsz { .. } => 2,
        Op::Lid { .. } => 3,
        Op::Lsz { .. } => 4,
        Op::Grp { .. } => 5,
        Op::Mov { .. } => 6,
        Op::Cast { .. } => 7,
        Op::AsI64 { .. } => 8,
        Op::MaxOne { .. } => 9,
        Op::I64ToI32 { .. } => 10,
        Op::AddI64 { .. } => 11,
        Op::JgeI64 { .. } => 12,
        Op::Neg { .. } => 13,
        Op::Not { .. } => 14,
        Op::Bin { .. } => 15,
        Op::Logic { .. } => 16,
        Op::MinMax { .. } => 17,
        Op::Intr1 { .. } => 18,
        Op::Sel { .. } => 19,
        Op::LdG { .. } => 20,
        Op::StG { .. } => 21,
        Op::LdP { .. } => 22,
        Op::StP { .. } => 23,
        Op::LdL { .. } => 24,
        Op::StL { .. } => 25,
        Op::DeclPriv { .. } => 26,
        Op::DeclLocal { .. } => 27,
        Op::Flops { .. } => 28,
        Op::Jmp { .. } => 29,
        Op::Jz { .. } => 30,
        Op::Ret => 31,
        Op::Halt => 32,
    }
}

// ---- superinstructions (the compiled engine's fused op set) ----
//
// The compiled engine (`VGPU_ENGINE=compiled`, see `compile.rs`) re-lowers a
// validated tape into basic blocks of *superinstructions*: the op sequences
// the acoustics kernels actually emit — index-arithmetic → `AsI64` → `LdG`
// stencil gathers with a trailing accumulate, `Bin`·`Bin` multiply-add
// chains, and the compare → `Sel` / compare → `Jz` diamonds produced by
// if-conversion — each collapsed into one fused op. A fused op skips the
// writes of its *globally single-use* intermediate registers (their only
// reader is the fused op itself), which is what makes fusion profitable on
// the SoA register file: every elided intermediate saves a 32-lane column
// round-trip. Arithmetic inside fused ops goes through the exact same
// bit-level helpers as the interpreters ([`bin_bits`], [`to_i64`], …) in the
// exact same operand order, so results stay bit-identical lane for lane.

/// The accumulate tail of a fused global load: `dst = src ⊕ loaded` (or
/// `loaded ⊕ src` when `rev`), with `⊕` ∈ {Add, Sub} at kind `k`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Acc {
    pub(crate) dst: R,
    pub(crate) src: R,
    pub(crate) k: K,
    pub(crate) sub: bool,
    pub(crate) rev: bool,
}

/// One superinstruction of the compiled engine. Every variant's observable
/// effects (registers written, counters bumped) equal the op sequence it
/// replaced, minus the writes of fused-away single-use intermediates.
#[derive(Debug, Clone)]
pub(crate) enum FOp {
    /// An op the fuser left alone, executed with dense-prefix lane loops.
    Base(Op),
    /// `Bin{t,a,b,Mul,k}; Bin{dst,…,…,Add|Sub,k}` with `t` single-use:
    /// `dst = (a*b) ⊕ c` (or `c ⊕ (a*b)` when `rev`). The multiply and the
    /// add/sub stay two distinct roundings — never contracted to an FMA.
    MulAdd { dst: R, a: R, b: R, c: R, k: K, sub: bool, rev: bool },
    /// `Bin{t,a,b,cmp,k}; Sel{dst,t,Bool,tr,fl}` with `t` single-use:
    /// `dst = if a cmp b { tr } else { fl }` (lane-wise register pick).
    CmpSel { dst: R, a: R, b: R, op: BinOp, k: K, tr: R, fl: R },
    /// Fused global load: `[Bin{t,base,off,±,I32};] AsI64{t2,t|base,I32};
    /// LdG{dst,buf,t2,site} [; Bin acc]` with every intermediate single-use.
    /// The i32 index math wraps exactly like [`bin_bits`].
    LdGFused {
        dst: R,
        buf: u16,
        base: R,
        off: Option<(R, bool)>,
        acc: Option<Acc>,
        site: u32,
        constant: bool,
    },
    /// `AsI64{t2,base,I32}; StG{buf,t2,val,vk,site}` with `t2` single-use.
    StGAt { buf: u16, base: R, val: R, vk: K, site: u32 },
}

/// Number of fused-op kinds with their own profiler index (Base ops tally
/// under their inner opcode; the fused compare-branch terminator gets the
/// last slot).
pub(crate) const NFOPS: usize = 5;

/// Fused-op display names, parallel to [`fop_index`]; index `NFOPS - 1` is
/// the `CmpJz` terminator.
const FOP_NAMES: [&str; NFOPS] = ["F.MulAdd", "F.CmpSel", "F.LdGFused", "F.StGAt", "F.CmpJz"];

/// Display name of the fused op with dense index `i` (see [`fop_index`]).
pub(crate) fn fop_name(i: usize) -> &'static str {
    FOP_NAMES[i]
}

/// Dense profiler index of a fused op, offset past the base opcodes: tally
/// slot is `NOPCODES + fop_index(..)`. `Base` ops report `None` and tally
/// under [`op_index`] of the inner op.
#[inline(always)]
pub(crate) fn fop_index(fop: &FOp) -> Option<usize> {
    match fop {
        FOp::Base(_) => None,
        FOp::MulAdd { .. } => Some(0),
        FOp::CmpSel { .. } => Some(1),
        FOp::LdGFused { .. } => Some(2),
        FOp::StGAt { .. } => Some(3),
    }
}

/// Profiler index of the fused compare-branch block terminator.
pub(crate) const FOP_CMPJZ: usize = 4;

/// A basic-block terminator of the compiled engine. Conditional terminators
/// carry the pc of the first op they fused (`orig_pc`): when the active
/// lanes disagree, the whole warp is delegated to the vector interpreter
/// *at that pc*, which re-evaluates the (pure) condition and handles
/// divergence with its mask/reconvergence machinery.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FTerm {
    /// `Ret` / `Halt`: the phase is done for every active lane.
    Halt,
    Jmp {
        block: u32,
    },
    /// `Jz{cond,k,target}`: lanes where `cond` is falsy go to `on_zero`.
    Jz {
        cond: R,
        k: K,
        on_zero: u32,
        on_nonzero: u32,
        orig_pc: u32,
    },
    /// `Bin{t,a,b,cmp,k}; Jz{t,Bool,target}` with `t` single-use: lanes
    /// where `a cmp b` is false go to `on_zero`.
    CmpJz {
        a: R,
        b: R,
        op: BinOp,
        k: K,
        on_zero: u32,
        on_nonzero: u32,
        orig_pc: u32,
    },
    /// `JgeI64{a,b,target}`: lanes where `a >= b` go to `on_ge`.
    JgeI64 {
        a: R,
        b: R,
        on_ge: u32,
        on_lt: u32,
        orig_pc: u32,
    },
}

/// One basic block of fused ops plus its terminator.
#[derive(Debug, Clone)]
pub(crate) struct FBlock {
    pub(crate) ops: Vec<FOp>,
    pub(crate) term: FTerm,
}

/// A tape re-lowered into superinstruction basic blocks for the compiled
/// engine. Built by [`crate::compile::lower`]; executed by
/// [`exec_fused_warp`]. The original [`Compiled`] tape stays alongside as
/// the divergence-delegation target.
#[derive(Debug, Clone)]
pub struct Fused {
    pub(crate) blocks: Vec<FBlock>,
    /// Entry block per phase, parallel to [`Compiled::phase_starts`].
    pub(crate) entries: Vec<u32>,
    /// Raw tape ops absorbed into superinstructions (beyond the first of
    /// each window). Feeds `vgpu.compiled.fused_ops`.
    pub(crate) fused_ops: u32,
    /// Number of global access sites (`max site + 1`) — sizes the per-site
    /// bounds-check table the executor receives.
    pub(crate) nsites: u32,
}

/// A compiled kernel tape: one instruction stream with an entry point per
/// barrier-delimited phase, plus a launch-invariant prelude hoisted out of
/// the per-item path by [`optimize`].
#[derive(Debug, Clone)]
pub struct Compiled {
    pub(crate) ops: Vec<Op>,
    pub(crate) phase_starts: Vec<u32>,
    pub(crate) nregs: usize,
    /// Item-invariant ops hoisted out of the per-item stream; executed once
    /// per register file by [`exec_pre`] (after scalar-slot initialisation,
    /// before any phase). Contains only pure register ops — never loads,
    /// stores, `Flops`, or control flow — so counters and the transaction
    /// model are unaffected.
    pub(crate) pre: Vec<Op>,
    /// Deduplicated launch-context reads (`Gid`/`Lid`/`Lsz`/`Grp`), one per
    /// distinct (op, dim): executed once per work-item by [`exec_item_pre`]
    /// instead of at every use site. Pure register writes only.
    pub(crate) item_pre: Vec<Op>,
    /// Ops eliminated by the peephole optimizer: constant folds, dead ops
    /// removed, and ops hoisted into `pre`. Feeds `vgpu.tape.optimized_ops`.
    pub(crate) optimized_ops: u32,
    /// Reconvergence metadata for the warp interpreter, parallel to `ops`:
    /// `joins[pc]` is the immediate postdominator of the conditional branch
    /// at `pc` — the first instruction every lane reaches again no matter
    /// which side of the branch it took — `ops.len()` when the branch's
    /// paths only meet again at `Ret`/`Halt`, and [`NO_JOIN`] on non-branch
    /// ops. Computed by [`compute_joins`] on the final optimized tape.
    pub(crate) joins: Vec<u32>,
}

impl Compiled {
    /// Number of barrier-delimited phases.
    pub(crate) fn phases(&self) -> usize {
        self.phase_starts.len()
    }
}

/// Static kind state of a scalar slot during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sk {
    Unset,
    Known(K),
    Conflict,
}

fn merge_sk(a: Sk, b: Sk) -> Sk {
    if a == b {
        a
    } else {
        Sk::Conflict
    }
}

struct Cc<'a> {
    prep: &'a Prepared,
    ops: Vec<Op>,
    nregs: u32,
    slots: Vec<Sk>,
    flops: u32,
}

impl<'a> Cc<'a> {
    fn temp(&mut self) -> R {
        let r = self.nregs;
        self.nregs += 1;
        r
    }

    fn flush(&mut self) {
        if self.flops > 0 {
            let n = self.flops;
            self.ops.push(Op::Flops { n });
            self.flops = 0;
        }
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: u32, t: u32) {
        match &mut self.ops[at as usize] {
            Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } => *target = t,
            _ => unreachable!("patch target is not a jump"),
        }
    }

    fn cast(&mut self, r: R, from: K, to: K) -> R {
        if from == to {
            return r;
        }
        let dst = self.temp();
        self.ops.push(Op::Cast { dst, src: r, from, to });
        dst
    }

    fn as_i64(&mut self, r: R, from: K) -> R {
        let dst = self.temp();
        self.ops.push(Op::AsI64 { dst, src: r, from });
        dst
    }

    /// Promoted kind under C's usual arithmetic conversions.
    fn promote_k(ka: K, kb: K) -> K {
        if ka == K::F64 || kb == K::F64 {
            K::F64
        } else if ka == K::F32 || kb == K::F32 {
            K::F32
        } else {
            K::I32
        }
    }

    fn expr(&mut self, e: &PExpr) -> Result<(R, K), String> {
        Ok(match e {
            PExpr::Lit(v) => {
                let (k, bits) = value_bits(*v);
                let dst = self.temp();
                self.ops.push(Op::Const { dst, bits });
                (dst, k)
            }
            PExpr::Var(s) => match self.slots[*s] {
                Sk::Known(k) => (*s as R, k),
                Sk::Unset => return Err(format!("slot {s} read before any declaration")),
                Sk::Conflict => {
                    return Err(format!("slot {s} has branch-dependent kind at a read"))
                }
            },
            PExpr::GlobalId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Gid { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::GlobalSize(d) => {
                let dst = self.temp();
                self.ops.push(Op::Gsz { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::LocalId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Lid { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::LocalSize(d) => {
                let dst = self.temp();
                self.ops.push(Op::Lsz { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::GroupId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Grp { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::Load { mem, idx, site, space } => {
                let (ri, ki) = self.expr(idx)?;
                let ri = self.as_i64(ri, ki);
                let dst = self.temp();
                match mem {
                    PMem::Param(p) => {
                        let k = kk(self.prep.params[*p].kind)?;
                        let constant = matches!(space, MemSpace::Constant);
                        self.ops.push(Op::LdG {
                            dst,
                            buf: *p as u16,
                            idx: ri,
                            site: *site,
                            constant,
                        });
                        (dst, k)
                    }
                    PMem::Priv(a) => {
                        let k = kk(self.prep.priv_kinds[*a])?;
                        self.ops.push(Op::LdP { dst, arr: *a as u16, idx: ri });
                        (dst, k)
                    }
                    PMem::Local(a) => {
                        let k = kk(self.prep.local_kinds[*a])?;
                        self.ops.push(Op::LdL { dst, arr: *a as u16, idx: ri });
                        (dst, k)
                    }
                }
            }
            PExpr::Bin(op, a, b) => {
                let (ra, ka) = self.expr(a)?;
                let (rb, kb) = self.expr(b)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        let dst = self.temp();
                        self.ops.push(Op::Logic {
                            dst,
                            a: ra,
                            b: rb,
                            ka,
                            kb,
                            or: matches!(op, BinOp::Or),
                        });
                        (dst, K::Bool)
                    }
                    BinOp::Rem => {
                        let k = Self::promote_k(ka, kb);
                        if k != K::I32 {
                            return Err("% on float operands".into());
                        }
                        let ra = self.cast(ra, ka, k);
                        let rb = self.cast(rb, kb, k);
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: ra, b: rb, op: *op, k });
                        (dst, k)
                    }
                    _ => {
                        let k = Self::promote_k(ka, kb);
                        let ra = self.cast(ra, ka, k);
                        let rb = self.cast(rb, kb, k);
                        if op.is_flop() && (ka.is_float() || kb.is_float()) {
                            self.flops += 1;
                        }
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: ra, b: rb, op: *op, k });
                        (dst, if op.is_predicate() { K::Bool } else { k })
                    }
                }
            }
            PExpr::Un(op, a) => {
                let (ra, ka) = self.expr(a)?;
                let dst = self.temp();
                match op {
                    UnOp::Neg => {
                        self.ops.push(Op::Neg { dst, src: ra, k: ka });
                        (dst, if ka == K::Bool { K::I32 } else { ka })
                    }
                    UnOp::Not => {
                        self.ops.push(Op::Not { dst, src: ra, k: ka });
                        (dst, K::Bool)
                    }
                }
            }
            PExpr::Select(c, t, f) => {
                let (rc, kc) = self.expr(c)?;
                self.flush();
                let dst = self.temp();
                let jz = self.here();
                self.ops.push(Op::Jz { cond: rc, k: kc, target: 0 });
                let (rt, kt) = self.expr(t)?;
                self.flush();
                self.ops.push(Op::Mov { dst, src: rt });
                let jmp = self.here();
                self.ops.push(Op::Jmp { target: 0 });
                let else_at = self.here();
                self.patch(jz, else_at);
                let (rf, kf) = self.expr(f)?;
                self.flush();
                self.ops.push(Op::Mov { dst, src: rf });
                let end = self.here();
                self.patch(jmp, end);
                if kt != kf {
                    return Err("select branches have different kinds".into());
                }
                (dst, kt)
            }
            PExpr::Call(intr, args) => {
                let mut rs = Vec::with_capacity(args.len());
                for a in args {
                    rs.push(self.expr(a)?);
                }
                match intr {
                    Intrinsic::Sqrt
                    | Intrinsic::Fabs
                    | Intrinsic::Exp
                    | Intrinsic::Log
                    | Intrinsic::Sin
                    | Intrinsic::Cos => {
                        let (r0, k0) = rs[0];
                        self.flops += match intr {
                            Intrinsic::Fabs => 0,
                            _ => 4,
                        };
                        let (src, k) = if k0 == K::F32 {
                            (r0, K::F32)
                        } else {
                            (self.cast(r0, k0, K::F64), K::F64)
                        };
                        let dst = self.temp();
                        self.ops.push(Op::Intr1 { dst, src, intr: *intr, k });
                        (dst, k)
                    }
                    Intrinsic::Min | Intrinsic::Max => {
                        let (r0, k0) = rs[0];
                        let (r1, k1) = rs[1];
                        if k0.is_float() {
                            self.flops += 1;
                        }
                        let k = Self::promote_k(k0, k1);
                        let a = self.cast(r0, k0, k);
                        let b = self.cast(r1, k1, k);
                        let dst = self.temp();
                        self.ops.push(Op::MinMax {
                            dst,
                            a,
                            b,
                            k,
                            max: matches!(intr, Intrinsic::Max),
                        });
                        (dst, k)
                    }
                    Intrinsic::Fma => {
                        // Unfused a*b + c in the promoted precision of (a, b):
                        // f32 when both promote to f32, otherwise f64 — the
                        // tree-walker's exact arm structure. Two flops.
                        let (r0, k0) = rs[0];
                        let (r1, k1) = rs[1];
                        let (r2, k2) = rs[2];
                        self.flops += 2;
                        let k = if Self::promote_k(k0, k1) == K::F32 { K::F32 } else { K::F64 };
                        let a = self.cast(r0, k0, k);
                        let b = self.cast(r1, k1, k);
                        let c = self.cast(r2, k2, k);
                        let t = self.temp();
                        self.ops.push(Op::Bin { dst: t, a, b, op: BinOp::Mul, k });
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: t, b: c, op: BinOp::Add, k });
                        (dst, k)
                    }
                }
            }
            PExpr::Cast(kind, a) => {
                let (ra, ka) = self.expr(a)?;
                let k = kk(*kind)?;
                (self.cast(ra, ka, k), k)
            }
        })
    }

    fn stmts(&mut self, stmts: &[PStmt]) -> Result<(), String> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &PStmt) -> Result<(), String> {
        match s {
            PStmt::DeclScalar { slot, kind, init } => {
                let k = kk(*kind)?;
                match init {
                    Some(e) => {
                        let (r, ke) = self.expr(e)?;
                        let r = self.cast(r, ke, k);
                        self.ops.push(Op::Mov { dst: *slot as R, src: r });
                    }
                    None => {
                        self.ops.push(Op::Const { dst: *slot as R, bits: 0 });
                    }
                }
                self.slots[*slot] = Sk::Known(k);
            }
            PStmt::Assign { slot, value, .. } => {
                let k = match self.slots[*slot] {
                    Sk::Known(k) => k,
                    _ => return Err(format!("assignment to slot {slot} of unknown kind")),
                };
                let (r, ke) = self.expr(value)?;
                let r = self.cast(r, ke, k);
                self.ops.push(Op::Mov { dst: *slot as R, src: r });
            }
            PStmt::DeclPriv { arr, len, .. } => {
                let (rl, kl) = self.expr(len)?;
                let rl = self.as_i64(rl, kl);
                self.ops.push(Op::DeclPriv { arr: *arr as u16, len: rl });
            }
            PStmt::DeclLocal { arr, len, .. } => {
                let (rl, kl) = self.expr(len)?;
                let rl = self.as_i64(rl, kl);
                self.ops.push(Op::DeclLocal { arr: *arr as u16, len: rl });
            }
            PStmt::Store { mem, idx, value, site, space: _ } => {
                let (ri, ki) = self.expr(idx)?;
                let ri = self.as_i64(ri, ki);
                let (rv, kv) = self.expr(value)?;
                match mem {
                    PMem::Param(p) => {
                        self.ops.push(Op::StG {
                            buf: *p as u16,
                            idx: ri,
                            val: rv,
                            vk: kv,
                            site: *site,
                        });
                    }
                    PMem::Priv(a) => {
                        let k = kk(self.prep.priv_kinds[*a])?;
                        self.ops.push(Op::StP { arr: *a as u16, idx: ri, val: rv, vk: kv, k });
                    }
                    PMem::Local(a) => {
                        let k = kk(self.prep.local_kinds[*a])?;
                        self.ops.push(Op::StL { arr: *a as u16, idx: ri, val: rv, vk: kv, k });
                    }
                }
            }
            PStmt::For { slot, begin, end, step, body } => {
                let (rb, kb) = self.expr(begin)?;
                let rb = self.as_i64(rb, kb);
                let (re, ke) = self.expr(end)?;
                let re = self.as_i64(re, ke);
                let (rs, ks) = self.expr(step)?;
                let rs = self.as_i64(rs, ks);
                self.ops.push(Op::MaxOne { dst: rs });
                let ri = self.temp();
                self.ops.push(Op::Mov { dst: ri, src: rb });
                self.flush();
                let head = self.here();
                self.ops.push(Op::JgeI64 { a: ri, b: re, target: 0 });
                self.ops.push(Op::I64ToI32 { dst: *slot as R, src: ri });
                let pre = self.slots.clone();
                self.slots[*slot] = Sk::Known(K::I32);
                let entry = self.slots.clone();
                self.stmts(body)?;
                self.flush();
                self.ops.push(Op::AddI64 { dst: ri, a: ri, b: rs });
                self.ops.push(Op::Jmp { target: head });
                let end_at = self.here();
                self.patch(head, end_at);
                // A later iteration re-enters the body with the kinds the
                // previous one left behind; reject kernels where they differ
                // from the kinds the emitted ops assumed.
                for s in 0..self.slots.len() {
                    if let (Sk::Known(k1), Sk::Known(k2)) = (entry[s], self.slots[s]) {
                        if k1 != k2 {
                            return Err(format!("loop body changes kind of slot {s}"));
                        }
                    }
                    self.slots[s] = merge_sk(pre[s], self.slots[s]);
                }
            }
            PStmt::If { cond, then_, else_ } => {
                // Constant conditions (e.g. lowered comments) take one branch
                // statically; the tree-walker's Lit eval has no side effects.
                if let PExpr::Lit(v) = cond {
                    return self.stmts(if v.truthy() { then_ } else { else_ });
                }
                let (rc, kc) = self.expr(cond)?;
                self.flush();
                let jz = self.here();
                self.ops.push(Op::Jz { cond: rc, k: kc, target: 0 });
                let saved = self.slots.clone();
                self.stmts(then_)?;
                self.flush();
                let jmp = self.here();
                self.ops.push(Op::Jmp { target: 0 });
                let else_at = self.here();
                self.patch(jz, else_at);
                let after_then = std::mem::replace(&mut self.slots, saved);
                self.stmts(else_)?;
                self.flush();
                let end = self.here();
                self.patch(jmp, end);
                for (slot, &then_sk) in self.slots.iter_mut().zip(&after_then) {
                    *slot = merge_sk(then_sk, *slot);
                }
            }
            PStmt::Return => {
                self.flush();
                self.ops.push(Op::Ret);
            }
            PStmt::Barrier => return Err("barrier inside a phase".into()),
        }
        Ok(())
    }
}

/// Compiles a prepared kernel into a tape, or explains why it cannot be
/// compiled (the caller then falls back to the tree-walker).
pub(crate) fn compile(prep: &Prepared) -> Result<Compiled, String> {
    let mut slots = vec![Sk::Unset; prep.nslots];
    for (p, s) in prep.params.iter().zip(&prep.scalar_slots) {
        if let Some(slot) = s {
            slots[*slot] = Sk::Known(kk(p.kind)?);
        }
    }
    let mut cc = Cc { prep, ops: Vec::new(), nregs: prep.nslots as u32, slots, flops: 0 };
    let mut phase_starts = Vec::with_capacity(prep.phases.len());
    for phase in &prep.phases {
        phase_starts.push(cc.here());
        cc.stmts(phase)?;
        cc.flush();
        cc.ops.push(Op::Halt);
    }
    if cc.nregs > u32::MAX / 2 {
        return Err("register file overflow".into());
    }
    let mut c = Compiled {
        ops: cc.ops,
        phase_starts,
        nregs: cc.nregs as usize,
        pre: Vec::new(),
        item_pre: Vec::new(),
        optimized_ops: 0,
        joins: Vec::new(),
    };
    optimize(&mut c, prep.nslots);
    if !validate(&c) {
        // Never expected: the compiler allocated every operand itself. The
        // fallback keeps the launch on the (fully bounds-checked) tree
        // engine rather than trusting a tape the check rejected.
        return Err("tape validation failed".into());
    }
    // Branch reconvergence points for the warp interpreter, computed on the
    // final op stream (the optimizer has already remapped every target).
    c.joins = compute_joins(&c.ops);
    Ok(c)
}

/// `joins[pc]` value for ops that are not conditional branches (or whose
/// join could not be established): the warp interpreter must finish the
/// affected lanes on the scalar interpreter instead of reconverging.
pub(crate) const NO_JOIN: u32 = u32::MAX;

/// Immediate postdominators of the tape's conditional branches — the warp
/// interpreter's reconvergence points. The tape's control-flow graph is one
/// node per op (successors: fall-through, jump targets, or a shared virtual
/// exit after `Ret`/`Halt`); postdominators are computed by the standard
/// iterative algorithm of Cooper–Harvey–Kennedy run on the reversed graph,
/// which the tape's size (hundreds of ops) makes effectively linear. The
/// result is exact for arbitrary reducible control flow, so it covers the
/// structured `If`/`Select` diamonds and `For` loops the compiler emits —
/// including branches whose only meeting point is the virtual exit (a `Ret`
/// inside one arm), which map to `ops.len()`.
fn compute_joins(ops: &[Op]) -> Vec<u32> {
    let n = ops.len();
    let exit = n; // virtual exit node shared by every `Ret`/`Halt`
    let succs = |pc: usize| -> ([usize; 2], usize) {
        match ops[pc] {
            Op::Jmp { target } => ([target as usize, 0], 1),
            Op::Jz { target, .. } | Op::JgeI64 { target, .. } => ([pc + 1, target as usize], 2),
            Op::Ret | Op::Halt => ([exit, 0], 1),
            _ => ([pc + 1, 0], 1),
        }
    };
    // Predecessor lists of the original graph double as successor lists of
    // the reversed graph, whose dominator tree is the postdominator tree.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
    for pc in 0..n {
        let (ss, k) = succs(pc);
        for &s in &ss[..k] {
            preds[s].push(pc as u32);
        }
    }
    // Iterative DFS postorder over the reversed graph from the exit. Ops
    // that cannot reach the exit (an infinite loop, which the structured
    // compiler never emits) stay unvisited and keep `NO_JOIN`.
    let mut order: Vec<usize> = Vec::with_capacity(n + 1);
    let mut seen = vec![false; n + 1];
    let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
    seen[exit] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if let Some(&u) = preds[v].get(*i) {
            *i += 1;
            if !seen[u as usize] {
                seen[u as usize] = true;
                stack.push((u as usize, 0));
            }
        } else {
            order.push(v);
            stack.pop();
        }
    }
    let mut po = vec![usize::MAX; n + 1];
    for (i, &v) in order.iter().enumerate() {
        po[v] = i;
    }
    let mut ipdom = vec![usize::MAX; n + 1];
    ipdom[exit] = exit;
    let intersect = |ipdom: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while po[a] < po[b] {
                a = ipdom[a];
            }
            while po[b] < po[a] {
                b = ipdom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder of the reversed graph; only successors already
        // assigned an ipdom participate in the intersection.
        for &v in order.iter().rev() {
            if v == exit {
                continue;
            }
            let (ss, k) = succs(v);
            let mut new = usize::MAX;
            for &s in &ss[..k] {
                if ipdom[s] != usize::MAX {
                    new = if new == usize::MAX { s } else { intersect(&ipdom, new, s) };
                }
            }
            if new != usize::MAX && ipdom[v] != new {
                ipdom[v] = new;
                changed = true;
            }
        }
    }
    let mut joins = vec![NO_JOIN; n];
    for (pc, join) in joins.iter_mut().enumerate() {
        if matches!(ops[pc], Op::Jz { .. } | Op::JgeI64 { .. }) && ipdom[pc] != usize::MAX {
            *join = ipdom[pc] as u32;
        }
    }
    joins
}

/// One-time structural check run at compile time: every register operand in
/// the main tape and the prelude is below `nregs`, every jump target and
/// phase entry is inside the tape, and the tape is non-empty. `exec_phase`
/// relies on this to elide per-access register bounds checks.
fn validate(c: &Compiled) -> bool {
    // The tape must end in a terminator: `pc` only moves past non-final ops
    // (a fall-through at the final op would run off the end) or to a
    // validated jump target, so the program counter can never leave the
    // tape. `exec_phase` elides the fetch bounds check on this basis.
    let mut ok = matches!(c.ops.last(), Some(Op::Ret | Op::Halt));
    for op in c.ops.iter().chain(&c.pre).chain(&c.item_pre) {
        if let Some(d) = op_dst(op) {
            ok &= (d as usize) < c.nregs;
        }
        visit_srcs(op, &mut |r| ok &= (r as usize) < c.nregs);
        if let Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } = *op {
            ok &= (target as usize) < c.ops.len();
        }
    }
    for &s in &c.phase_starts {
        ok &= (s as usize) < c.ops.len();
    }
    ok
}

// ---- peephole optimizer ----
//
// Four passes over the compiled tape, run once at compile time:
//
// 0. **If-conversion** — branch diamonds whose arms are pure straight-line
//    code are flattened: both arms execute unconditionally into renamed
//    temporaries and a predicated `Sel` picks the taken side's bits for
//    each live-out register. This is what keeps the warp interpreter
//    convergent on stencil boundary logic.
// 1. **Constant folding** — pure register ops whose operands are all
//    compile-time constants are rewritten to `Const`.
// 2. **Hoisting** — pure ops in a phase's entry block (before any control
//    flow) whose operands are item-invariant move to `Compiled::pre` and
//    execute once per register file instead of once per work-item.
// 3. **Dead-register elimination** — pure ops whose destination is never
//    read are removed and jump targets/phase entries are remapped.
//
// The passes never touch loads, stores, `Flops`, declarations, or control
// flow with observable effects, so the observable semantics — buffer bits,
// all counters, the transaction trace, and race records — are identical to
// the unoptimized tape. `Engine::Differential` enforces this against the
// tree-walker.

/// The destination register an op writes, if any. `MaxOne` both reads and
/// writes its `dst`; callers that need read sets must also consult
/// [`visit_srcs`].
pub(crate) fn op_dst(op: &Op) -> Option<R> {
    match *op {
        Op::Const { dst, .. }
        | Op::Gid { dst, .. }
        | Op::Gsz { dst, .. }
        | Op::Lid { dst, .. }
        | Op::Lsz { dst, .. }
        | Op::Grp { dst, .. }
        | Op::Mov { dst, .. }
        | Op::Cast { dst, .. }
        | Op::AsI64 { dst, .. }
        | Op::MaxOne { dst }
        | Op::I64ToI32 { dst, .. }
        | Op::AddI64 { dst, .. }
        | Op::Neg { dst, .. }
        | Op::Not { dst, .. }
        | Op::Bin { dst, .. }
        | Op::Logic { dst, .. }
        | Op::MinMax { dst, .. }
        | Op::Intr1 { dst, .. }
        | Op::Sel { dst, .. }
        | Op::LdG { dst, .. }
        | Op::LdP { dst, .. }
        | Op::LdL { dst, .. } => Some(dst),
        Op::StG { .. }
        | Op::StP { .. }
        | Op::StL { .. }
        | Op::DeclPriv { .. }
        | Op::DeclLocal { .. }
        | Op::Flops { .. }
        | Op::Jmp { .. }
        | Op::JgeI64 { .. }
        | Op::Jz { .. }
        | Op::Ret
        | Op::Halt => None,
    }
}

/// Mutable twin of [`op_dst`]: the if-conversion pass redirects an arm's
/// live-out write into a fresh temporary before predicating it with `Sel`.
fn op_dst_mut(op: &mut Op) -> Option<&mut R> {
    match op {
        Op::Const { dst, .. }
        | Op::Gid { dst, .. }
        | Op::Gsz { dst, .. }
        | Op::Lid { dst, .. }
        | Op::Lsz { dst, .. }
        | Op::Grp { dst, .. }
        | Op::Mov { dst, .. }
        | Op::Cast { dst, .. }
        | Op::AsI64 { dst, .. }
        | Op::MaxOne { dst }
        | Op::I64ToI32 { dst, .. }
        | Op::AddI64 { dst, .. }
        | Op::Neg { dst, .. }
        | Op::Not { dst, .. }
        | Op::Bin { dst, .. }
        | Op::Logic { dst, .. }
        | Op::MinMax { dst, .. }
        | Op::Intr1 { dst, .. }
        | Op::Sel { dst, .. }
        | Op::LdG { dst, .. }
        | Op::LdP { dst, .. }
        | Op::LdL { dst, .. } => Some(dst),
        Op::StG { .. }
        | Op::StP { .. }
        | Op::StL { .. }
        | Op::DeclPriv { .. }
        | Op::DeclLocal { .. }
        | Op::Flops { .. }
        | Op::Jmp { .. }
        | Op::JgeI64 { .. }
        | Op::Jz { .. }
        | Op::Ret
        | Op::Halt => None,
    }
}

/// Visits every register an op reads.
pub(crate) fn visit_srcs(op: &Op, f: &mut impl FnMut(R)) {
    match *op {
        Op::Mov { src, .. }
        | Op::Cast { src, .. }
        | Op::AsI64 { src, .. }
        | Op::I64ToI32 { src, .. }
        | Op::Neg { src, .. }
        | Op::Not { src, .. }
        | Op::Intr1 { src, .. } => f(src),
        Op::MaxOne { dst } => f(dst),
        Op::AddI64 { a, b, .. }
        | Op::JgeI64 { a, b, .. }
        | Op::Bin { a, b, .. }
        | Op::Logic { a, b, .. }
        | Op::MinMax { a, b, .. } => {
            f(a);
            f(b);
        }
        Op::LdG { idx, .. } | Op::LdP { idx, .. } | Op::LdL { idx, .. } => f(idx),
        Op::StG { idx, val, .. } | Op::StP { idx, val, .. } | Op::StL { idx, val, .. } => {
            f(idx);
            f(val);
        }
        Op::DeclPriv { len, .. } | Op::DeclLocal { len, .. } => f(len),
        Op::Jz { cond, .. } => f(cond),
        Op::Sel { cond, t, f: fv, .. } => {
            f(cond);
            f(t);
            f(fv);
        }
        Op::Const { .. }
        | Op::Gid { .. }
        | Op::Gsz { .. }
        | Op::Lid { .. }
        | Op::Lsz { .. }
        | Op::Grp { .. }
        | Op::Flops { .. }
        | Op::Jmp { .. }
        | Op::Ret
        | Op::Halt => {}
    }
}

/// Mutable twin of [`visit_srcs`]: offers every source-register field for
/// in-place rewriting (the context-CSE pass redirects reads of duplicate
/// context registers to the canonical one).
fn visit_srcs_mut(op: &mut Op, f: &mut impl FnMut(&mut R)) {
    match op {
        Op::Mov { src, .. }
        | Op::Cast { src, .. }
        | Op::AsI64 { src, .. }
        | Op::I64ToI32 { src, .. }
        | Op::Neg { src, .. }
        | Op::Not { src, .. }
        | Op::Intr1 { src, .. } => f(src),
        Op::MaxOne { dst } => f(dst),
        Op::AddI64 { a, b, .. }
        | Op::JgeI64 { a, b, .. }
        | Op::Bin { a, b, .. }
        | Op::Logic { a, b, .. }
        | Op::MinMax { a, b, .. } => {
            f(a);
            f(b);
        }
        Op::LdG { idx, .. } | Op::LdP { idx, .. } | Op::LdL { idx, .. } => f(idx),
        Op::StG { idx, val, .. } | Op::StP { idx, val, .. } | Op::StL { idx, val, .. } => {
            f(idx);
            f(val);
        }
        Op::DeclPriv { len, .. } | Op::DeclLocal { len, .. } => f(len),
        Op::Jz { cond, .. } => f(cond),
        Op::Sel { cond, t, f: fv, .. } => {
            f(cond);
            f(t);
            f(fv);
        }
        Op::Const { .. }
        | Op::Gid { .. }
        | Op::Gsz { .. }
        | Op::Lid { .. }
        | Op::Lsz { .. }
        | Op::Grp { .. }
        | Op::Flops { .. }
        | Op::Jmp { .. }
        | Op::Ret
        | Op::Halt => {}
    }
}

/// Number of writers of each register across the whole tape.
fn count_writers(ops: &[Op], nregs: usize) -> Vec<u32> {
    let mut w = vec![0u32; nregs];
    for op in ops {
        if let Some(d) = op_dst(op) {
            w[d as usize] += 1;
        }
    }
    w
}

/// Folds one op whose operands are all known constants into its result
/// bits, reproducing `exec_phase` arithmetic exactly. Returns `None` for
/// non-foldable ops, unknown operands, and i32 `Div`/`Rem` cases that would
/// trap at runtime (those must keep trapping at their original site).
fn try_fold(op: &Op, constv: &[Option<u64>]) -> Option<(R, u64)> {
    let c = |r: R| constv[r as usize];
    match *op {
        Op::Mov { dst, src } => c(src).map(|v| (dst, v)),
        Op::Cast { dst, src, from, to } => c(src).map(|v| (dst, cast_bits(from, to, v))),
        Op::AsI64 { dst, src, from } => c(src).map(|v| (dst, bi64(to_i64(from, v)))),
        Op::I64ToI32 { dst, src } => c(src).map(|v| (dst, bi32(i64v(v) as i32))),
        Op::AddI64 { dst, a, b } => match (c(a), c(b)) {
            (Some(x), Some(y)) => Some((dst, bi64(i64v(x).wrapping_add(i64v(y))))),
            _ => None,
        },
        Op::Neg { dst, src, k } => c(src).map(|v| {
            let bits = match k {
                K::F32 => b32(-f32v(v)),
                K::F64 => b64(-f64v(v)),
                K::I32 => bi32(i32v(v).wrapping_neg()),
                K::Bool => bi32(((v != 0) as i32).wrapping_neg()),
            };
            (dst, bits)
        }),
        Op::Not { dst, src, k } => c(src).map(|v| (dst, bb(!truthy(k, v)))),
        Op::Bin { dst, a, b, op, k } => {
            let (x, y) = (c(a)?, c(b)?);
            if k == K::I32 && matches!(op, BinOp::Div | BinOp::Rem) {
                let (p, q) = (i32v(x), i32v(y));
                if q == 0 || (p == i32::MIN && q == -1) {
                    return None;
                }
            }
            Some((dst, bin_bits(op, k, x, y)))
        }
        Op::Logic { dst, a, b, ka, kb, or } => match (c(a), c(b)) {
            (Some(x), Some(y)) => {
                let (p, q) = (truthy(ka, x), truthy(kb, y));
                Some((dst, bb(if or { p || q } else { p && q })))
            }
            _ => None,
        },
        Op::MinMax { dst, a, b, k, max } => {
            if k == K::Bool {
                return None;
            }
            let (x, y) = (c(a)?, c(b)?);
            let bits = match k {
                K::F32 => {
                    let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                    b32((if max { p.max(q) } else { p.min(q) }) as f32)
                }
                K::F64 => {
                    let (p, q) = (f64v(x), f64v(y));
                    b64(if max { p.max(q) } else { p.min(q) })
                }
                K::I32 => {
                    let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                    bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                }
                K::Bool => unreachable!(),
            };
            Some((dst, bits))
        }
        Op::Intr1 { dst, src, intr, k } => c(src).map(|v| {
            let bits = match k {
                K::F32 => b32(intr1_f32(intr, f32v(v))),
                _ => b64(intr1_f64(intr, f64v(v))),
            };
            (dst, bits)
        }),
        Op::Sel { dst, cond, ck, t, f } => match (c(cond), c(t), c(f)) {
            (Some(cv), Some(tv), Some(fv)) => Some((dst, if truthy(ck, cv) { tv } else { fv })),
            _ => None,
        },
        _ => None,
    }
}

/// True for pure register ops that are safe to hoist into the per-warp
/// prelude when their operands are item-invariant. Conservatively excludes
/// i32 `Div`/`Rem` (may trap) and every id-dependent, memory, counter, or
/// control op.
fn hoistable(op: &Op) -> bool {
    match op {
        Op::Bin { op: b, k, .. } => !(*k == K::I32 && matches!(b, BinOp::Div | BinOp::Rem)),
        Op::Const { .. }
        | Op::Gsz { .. }
        | Op::Mov { .. }
        | Op::Cast { .. }
        | Op::AsI64 { .. }
        | Op::I64ToI32 { .. }
        | Op::AddI64 { .. }
        | Op::Neg { .. }
        | Op::Not { .. }
        | Op::Logic { .. }
        | Op::MinMax { .. }
        | Op::Intr1 { .. }
        | Op::Sel { .. } => true,
        _ => false,
    }
}

/// True for pure ops that may be deleted when their destination is never
/// read: no side effects, no counters, and cannot trap. The same criteria
/// make an op safe for the if-converter to *speculate* (execute on a path
/// the program would have branched around), so pass 0 reuses this
/// predicate for arm bodies.
fn removable(op: &Op) -> bool {
    match op {
        Op::Bin { op: b, k, .. } => !(*k == K::I32 && matches!(b, BinOp::Div | BinOp::Rem)),
        Op::Const { .. }
        | Op::Gid { .. }
        | Op::Gsz { .. }
        | Op::Lid { .. }
        | Op::Lsz { .. }
        | Op::Grp { .. }
        | Op::Mov { .. }
        | Op::Cast { .. }
        | Op::AsI64 { .. }
        | Op::I64ToI32 { .. }
        | Op::AddI64 { .. }
        | Op::Neg { .. }
        | Op::Not { .. }
        | Op::Logic { .. }
        | Op::MinMax { .. }
        | Op::Intr1 { .. }
        | Op::Sel { .. } => true,
        _ => false,
    }
}

/// Pass 0: if-conversion. Looks for the canonical diamond the compiler
/// emits for `If`/`Select` —
///
/// ```text
/// pc:         Jz cond → target
/// pc+1..m:    then-arm
/// m:          Jmp join            (m = target - 1)
/// target..j:  else-arm (possibly empty)
/// j:          join (the branch's immediate postdominator)
/// ```
///
/// — and flattens it when both arms are pure straight-line code
/// ([`removable`] ops: no memory, no `Flops`, no traps, no control flow).
/// Both arms then execute unconditionally, each live-out register's arm
/// write is redirected to a fresh temporary, and one [`Op::Sel`] per
/// live-out picks the taken side's bits. The freed `Jz`/`Jmp` slots become
/// `Jmp join` fillers, so the tape keeps its length and no other targets
/// move.
///
/// Bit-exactness: the speculated ops touch no counters, traces, or memory;
/// a register whose reads and writes all sit inside one arm is scratch
/// nothing else observes; every other written register gets exactly the
/// taken path's bits from its `Sel`. Diamonds where that argument does not
/// hold — an arm that traps, counts flops, re-reads a live-out, or writes
/// one twice — are skipped and stay real branches.
fn if_convert(c: &mut Compiled) {
    'fixpoint: loop {
        // Joins are recomputed after every conversion: a rewrite edits the
        // CFG (and can turn a nested-diamond arm pure, enabling its
        // parent), and tapes are small enough to re-scan.
        let joins = compute_joins(&c.ops);
        for pc in 0..c.ops.len() {
            if try_if_convert_at(c, &joins, pc) {
                c.optimized_ops += 2; // the deleted Jz and arm-ending Jmp
                continue 'fixpoint;
            }
        }
        return;
    }
}

/// Attempts the rewrite described on [`if_convert`] at `pc`; returns `true`
/// after mutating the tape in place.
fn try_if_convert_at(c: &mut Compiled, joins: &[u32], pc: usize) -> bool {
    let Op::Jz { cond, k: ck, target } = c.ops[pc] else { return false };
    if joins[pc] == NO_JOIN {
        return false;
    }
    let (j, target) = (joins[pc] as usize, target as usize);
    // Canonical shape: forward branch, then-arm ending in `Jmp j` right
    // before the else entry, whole diamond in [pc, j). The join is a real
    // op (`j < len`): a diamond converging at the tape end would have a
    // terminator inside an arm, which the purity check rejects anyway.
    if !(pc + 1 < target && target <= j && j < c.ops.len()) {
        return false;
    }
    if !matches!(c.ops[target - 1], Op::Jmp { target: t } if t as usize == j) {
        return false;
    }
    let then_arm = pc + 1..target - 1;
    let else_arm = target..j;
    if !c.ops[then_arm.clone()].iter().chain(&c.ops[else_arm.clone()]).all(removable) {
        return false;
    }
    // Single entry: nothing outside the diamond may jump into it (`pc`
    // itself is a fine target — it becomes the first rewritten op), and no
    // phase may start inside it.
    let inside = |t: usize| t > pc && t < j;
    for (i, op) in c.ops.iter().enumerate() {
        if (pc..j).contains(&i) {
            continue; // the Jz/Jmp being deleted; arms have no control flow
        }
        if let Op::Jmp { target: t } | Op::Jz { target: t, .. } | Op::JgeI64 { target: t, .. } = *op
        {
            if inside(t as usize) {
                return false;
            }
        }
    }
    if c.phase_starts.iter().any(|&s| inside(s as usize)) {
        return false;
    }

    // Classify every register the arms write. Pass 0 runs before hoisting,
    // so `pre`/`item_pre` are empty and the whole program is `c.ops`.
    let n = c.nregs;
    let (mut w_then, mut w_else) = (vec![0u32; n], vec![0u32; n]);
    let (mut r_then, mut r_else) = (vec![false; n], vec![false; n]);
    let (mut r_out, mut w_out) = (vec![false; n], vec![false; n]);
    for (i, op) in c.ops.iter().enumerate() {
        if then_arm.contains(&i) {
            if let Some(d) = op_dst(op) {
                w_then[d as usize] += 1;
            }
            visit_srcs(op, &mut |r| r_then[r as usize] = true);
        } else if else_arm.contains(&i) {
            if let Some(d) = op_dst(op) {
                w_else[d as usize] += 1;
            }
            visit_srcs(op, &mut |r| r_else[r as usize] = true);
        } else if i != pc {
            if let Some(d) = op_dst(op) {
                w_out[d as usize] = true;
            }
            visit_srcs(op, &mut |r| r_out[r as usize] = true);
        }
    }
    // The Sels read `cond` after both arms ran, so it must survive them.
    if w_then[cond as usize] + w_else[cond as usize] > 0 {
        return false;
    }
    // Live-outs to predicate: (register, written-by-then, written-by-else).
    let mut outs: Vec<(R, bool, bool)> = Vec::new();
    for r in 0..n {
        let (wt, we) = (w_then[r], w_else[r]);
        if wt == 0 && we == 0 {
            continue;
        }
        let one_arm_scratch = !r_out[r]
            && !w_out[r]
            && ((wt > 0 && we == 0 && !r_else[r]) || (we > 0 && wt == 0 && !r_then[r]));
        if one_arm_scratch {
            continue; // observed nowhere outside its arm: leave unrenamed
        }
        // Needs a `Sel`; keep the rewrite simple — exactly one write per
        // arm and no reads of the register anywhere inside the diamond.
        if wt > 1 || we > 1 || r_then[r] || r_else[r] {
            return false;
        }
        outs.push((r as R, wt == 1, we == 1));
    }
    // The deleted Jz + Jmp leave room for exactly two Sels.
    if outs.len() > 2 {
        return false;
    }

    // Allocate the fresh per-arm temporaries and build the Sels.
    let mut sels: Vec<Op> = Vec::with_capacity(outs.len());
    let mut ren_then: Vec<(R, R)> = Vec::new();
    let mut ren_else: Vec<(R, R)> = Vec::new();
    for &(r, wt, we) in &outs {
        let mut fresh = || {
            let f = c.nregs as R;
            c.nregs += 1;
            f
        };
        let tv = if wt {
            let f = fresh();
            ren_then.push((r, f));
            f
        } else {
            r
        };
        let fv = if we {
            let f = fresh();
            ren_else.push((r, f));
            f
        } else {
            r
        };
        sels.push(Op::Sel { dst: r, cond, ck, t: tv, f: fv });
    }

    // Rewrite in place: renamed then-arm, renamed else-arm, Sels, fillers.
    let mut repl: Vec<Op> = Vec::with_capacity(j - pc);
    for (arm, renames) in [(then_arm, ren_then), (else_arm, ren_else)] {
        for i in arm {
            let mut op = c.ops[i];
            if let Some(d) = op_dst_mut(&mut op) {
                if let Some(&(_, f)) = renames.iter().find(|&&(orig, _)| orig == *d) {
                    *d = f;
                }
            }
            repl.push(op);
        }
    }
    repl.extend(sels);
    while repl.len() < j - pc {
        repl.push(Op::Jmp { target: j as u32 });
    }
    c.ops[pc..j].copy_from_slice(&repl);
    true
}

/// Runs the peephole passes on a freshly compiled tape. `nslots` is
/// the number of scalar-slot registers (slots may be re-initialised per
/// item and are never treated as constants or hoist destinations).
// The passes walk `c.ops` by index while mutating the parallel `removed`
// mask and appending to `c.pre`/`c.item_pre`; iterator forms would need a
// second borrow of `c`.
#[allow(clippy::needless_range_loop)]
fn optimize(c: &mut Compiled, nslots: usize) {
    // Pass 0 first: it relies on codegen's fresh-temporary discipline
    // (before any other pass moves ops around) and the branches it deletes
    // unlock hoisting of the former arm bodies.
    if_convert(c);
    let writers = count_writers(&c.ops, c.nregs);
    let single_temp = |r: R| (r as usize) >= nslots && writers[r as usize] == 1;

    // Pass 1: constant folding to fixpoint. A register is constant when it
    // is a single-writer temporary whose writer is a `Const` op; codegen
    // guarantees such temporaries are written before every read.
    let mut constv: Vec<Option<u64>> = vec![None; c.nregs];
    loop {
        let mut changed = false;
        for i in 0..c.ops.len() {
            if let Some((dst, bits)) = try_fold(&c.ops[i], &constv) {
                c.ops[i] = Op::Const { dst, bits };
                c.optimized_ops += 1;
                changed = true;
            }
            if let Op::Const { dst, bits } = c.ops[i] {
                if single_temp(dst) && constv[dst as usize].is_none() {
                    constv[dst as usize] = Some(bits);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: hoist item-invariant ops into the prelude. An op qualifies
    // anywhere in the tape — even behind a branch or inside a loop — when
    // (a) it is pure and non-trapping (`hoistable`), (b) its destination is
    // a single-writer temporary (codegen guarantees write-before-read, so
    // no path observes the pre-hoist zero), and (c) every operand is
    // immutable over the whole launch: a never-written scalar slot (slots
    // are re-initialised to identical bits for every item) or the result of
    // an already-hoisted op. Running such an op once per register file in
    // the prelude therefore produces exactly the bits every reader saw
    // before. The prelude stays dependency-ordered for free: a register is
    // only marked invariant when its producer is pushed, so consumers always
    // land after their producers.
    let mut removed = vec![false; c.ops.len()];
    let mut invariant = vec![false; c.nregs];
    for (r, inv) in invariant.iter_mut().enumerate().take(nslots) {
        *inv = writers[r] == 0;
    }
    loop {
        let mut changed = false;
        for i in 0..c.ops.len() {
            if removed[i] {
                continue;
            }
            let op = c.ops[i];
            let dst = match op_dst(&op) {
                Some(d) if single_temp(d) => d,
                _ => continue,
            };
            if !hoistable(&op) {
                continue;
            }
            let mut ok = true;
            visit_srcs(&op, &mut |r| ok &= invariant[r as usize]);
            if !ok {
                continue;
            }
            c.pre.push(op);
            removed[i] = true;
            invariant[dst as usize] = true;
            c.optimized_ops += 1;
            changed = true;
        }
        if !changed {
            break;
        }
    }

    // Pass 2b: context-op CSE. `Gid`/`Lid`/`Lsz`/`Grp` read launch context
    // that is fixed for the duration of one work-item, so every occurrence
    // of the same (op, dim) writes identical bits wherever it sits — even
    // behind branches or inside loops. Codegen re-emits them at each use
    // site; here the first single-writer occurrence becomes canonical and
    // moves to `item_pre` (run once per item, before any phase), readers of
    // the duplicates are redirected to the canonical register, and all
    // in-tape occurrences are dropped. Canonical registers are never
    // written by the main tape afterwards, so the value persists across
    // phases of the same item.
    let mut redirect: Vec<Option<R>> = vec![None; c.nregs];
    let mut canon: std::collections::HashMap<(u8, u8), R> = std::collections::HashMap::new();
    for i in 0..c.ops.len() {
        if removed[i] {
            continue;
        }
        let (tag, dim, dst) = match c.ops[i] {
            Op::Gid { dst, dim } => (0u8, dim, dst),
            Op::Lid { dst, dim } => (1, dim, dst),
            Op::Lsz { dst, dim } => (2, dim, dst),
            Op::Grp { dst, dim } => (3, dim, dst),
            _ => continue,
        };
        if !single_temp(dst) {
            continue;
        }
        match canon.entry((tag, dim)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                redirect[dst as usize] = Some(*e.get());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(dst);
                c.item_pre.push(c.ops[i]);
            }
        }
        removed[i] = true;
        c.optimized_ops += 1;
    }
    if !canon.is_empty() {
        for (i, op) in c.ops.iter_mut().enumerate() {
            if !removed[i] {
                visit_srcs_mut(op, &mut |r| {
                    if let Some(n) = redirect[*r as usize] {
                        *r = n;
                    }
                });
            }
        }
    }

    // Pass 3: dead-register elimination to fixpoint. Reads from the prelude
    // count (they keep earlier prelude producers alive; main-tape producers
    // feeding a hoisted op were necessarily hoisted too).
    loop {
        let mut reads = vec![0u32; c.nregs];
        for (i, op) in c.ops.iter().enumerate() {
            if !removed[i] {
                visit_srcs(op, &mut |r| reads[r as usize] += 1);
            }
        }
        for op in &c.pre {
            visit_srcs(op, &mut |r| reads[r as usize] += 1);
        }
        let mut changed = false;
        for i in 0..c.ops.len() {
            if removed[i] || !removable(&c.ops[i]) {
                continue;
            }
            if let Some(d) = op_dst(&c.ops[i]) {
                if reads[d as usize] == 0 {
                    removed[i] = true;
                    c.optimized_ops += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // DCE may have erased the last reader of a canonical context register;
    // drop prelude entries nothing reads so items don't pay for them.
    {
        let mut reads = vec![0u32; c.nregs];
        for (i, op) in c.ops.iter().enumerate() {
            if !removed[i] {
                visit_srcs(op, &mut |r| reads[r as usize] += 1);
            }
        }
        for op in &c.pre {
            visit_srcs(op, &mut |r| reads[r as usize] += 1);
        }
        c.item_pre.retain(|op| op_dst(op).is_some_and(|d| reads[d as usize] > 0));
    }

    // Compaction: drop removed ops, remapping jump targets and phase entry
    // points. A target pointing at a removed op falls through to the next
    // retained one (the prefix count gives exactly that index).
    if removed.iter().any(|&r| r) {
        let mut newpos = Vec::with_capacity(c.ops.len() + 1);
        let mut n = 0u32;
        for &r in &removed {
            newpos.push(n);
            if !r {
                n += 1;
            }
        }
        newpos.push(n);
        let mut ops = Vec::with_capacity(n as usize);
        for (i, mut op) in c.ops.drain(..).enumerate() {
            if removed[i] {
                continue;
            }
            match &mut op {
                Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } => {
                    *target = newpos[*target as usize];
                }
                _ => {}
            }
            ops.push(op);
        }
        c.ops = ops;
        for s in c.phase_starts.iter_mut() {
            *s = newpos[*s as usize];
        }
    }
}

/// Executes the hoisted prelude once into a freshly initialised register
/// file (scalar slots must already hold their launch values). Contains only
/// pure register ops, so it touches no counters, traces, or memory.
/// Executes the per-item context prelude: one deduplicated `Gid`/`Lid`/
/// `Lsz`/`Grp` read per distinct (op, dim), mirroring the corresponding
/// [`exec_phase`] arms bit for bit. Run once per work-item, after slot
/// initialisation and before any phase.
pub(crate) fn exec_item_pre(
    c: &Compiled,
    regs: &mut [u64],
    gid: [usize; 3],
    lid: usize,
    lsize: usize,
    group: usize,
) {
    for op in &c.item_pre {
        match *op {
            Op::Gid { dst, dim } => regs[dst as usize] = bi32(gid[dim as usize] as i32),
            Op::Lid { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { lid as i32 } else { 0 })
            }
            Op::Lsz { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { lsize as i32 } else { 1 })
            }
            Op::Grp { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { group as i32 } else { 0 })
            }
            _ => unreachable!("non-context op in item prelude"),
        }
    }
}

pub(crate) fn exec_pre(c: &Compiled, regs: &mut [u64], gsize: [usize; 3]) {
    for op in &c.pre {
        match *op {
            Op::Const { dst, bits } => regs[dst as usize] = bits,
            Op::Gsz { dst, dim } => regs[dst as usize] = bi32(gsize[dim as usize] as i32),
            Op::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
            Op::Cast { dst, src, from, to } => {
                regs[dst as usize] = cast_bits(from, to, regs[src as usize])
            }
            Op::AsI64 { dst, src, from } => {
                regs[dst as usize] = bi64(to_i64(from, regs[src as usize]))
            }
            Op::I64ToI32 { dst, src } => regs[dst as usize] = bi32(i64v(regs[src as usize]) as i32),
            Op::AddI64 { dst, a, b } => {
                regs[dst as usize] = bi64(i64v(regs[a as usize]) + i64v(regs[b as usize]))
            }
            Op::Neg { dst, src, k } => {
                let s = regs[src as usize];
                regs[dst as usize] = match k {
                    K::F32 => b32(-f32v(s)),
                    K::F64 => b64(-f64v(s)),
                    K::I32 => bi32(-i32v(s)),
                    K::Bool => bi32(-((s != 0) as i32)),
                };
            }
            Op::Not { dst, src, k } => {
                regs[dst as usize] = bb(!truthy(k, regs[src as usize]));
            }
            Op::Bin { dst, a, b, op, k } => {
                regs[dst as usize] = bin_bits(op, k, regs[a as usize], regs[b as usize]);
            }
            Op::Logic { dst, a, b, ka, kb, or } => {
                let (x, y) = (truthy(ka, regs[a as usize]), truthy(kb, regs[b as usize]));
                regs[dst as usize] = bb(if or { x || y } else { x && y });
            }
            Op::MinMax { dst, a, b, k, max } => {
                let (x, y) = (regs[a as usize], regs[b as usize]);
                regs[dst as usize] = match k {
                    K::F32 => {
                        let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                        b32((if max { p.max(q) } else { p.min(q) }) as f32)
                    }
                    K::F64 => {
                        let (p, q) = (f64v(x), f64v(y));
                        b64(if max { p.max(q) } else { p.min(q) })
                    }
                    K::I32 => {
                        let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                        bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                    }
                    K::Bool => unreachable!("min/max never promotes to bool"),
                };
            }
            Op::Intr1 { dst, src, intr, k } => {
                let s = regs[src as usize];
                regs[dst as usize] = match k {
                    K::F32 => b32(intr1_f32(intr, f32v(s))),
                    _ => b64(intr1_f64(intr, f64v(s))),
                };
            }
            Op::Sel { dst, cond, ck, t, f } => {
                regs[dst as usize] =
                    regs[if truthy(ck, regs[cond as usize]) { t } else { f } as usize];
            }
            _ => unreachable!("non-hoistable op in prelude"),
        }
    }
}

/// Mutable per-item/per-launch state threaded through tape execution.
pub(crate) struct TapeCtx<'a> {
    pub bufs: &'a [Option<&'a SharedBuf>],
    pub gsize: [usize; 3],
    pub counters: &'a mut Counters,
    pub trace: &'a mut Vec<(u32, u32, u64)>,
    pub trace_on: bool,
    pub writes: &'a mut Vec<WriteRec>,
    pub race_on: bool,
    pub item: u64,
    pub gid: [usize; 3],
    pub lid: usize,
    pub group: usize,
    pub lsize: usize,
    /// Per-opcode time tally (`VGPU_PROFILE=op` only). `None` selects the
    /// unprofiled interpreter instantiation — the hot loop is unchanged.
    pub prof: Option<&'a mut OpProf>,
    /// Kernel identity for shadow-sanitizer findings (`None` when the
    /// sanitizer is off — the per-access cost is then one shadow test).
    pub san: Option<crate::sanitize::SanCtx<'a>>,
}

/// Closes a pending per-op attribution: charges `pending`'s opcode with the
/// time elapsed since its dispatch started. Called at every interpreter exit
/// point of a profiled (`PROF = true`) run.
#[inline]
fn flush_pending(prof: &mut Option<&mut OpProf>, pending: &mut Option<(usize, Instant)>) {
    if let (Some((idx, start)), Some(p)) = (pending.take(), prof.as_deref_mut()) {
        p.add(idx, start.elapsed());
    }
}

/// Executes one phase of a compiled tape for one work-item. Returns `true`
/// when the item executed `Ret` (early exit).
/// Unchecked register read. The tape passed [`validate`] at compile time
/// (every operand `< nregs`) and `exec_phase` asserts the register file is
/// at least `nregs` long, so the index is always in bounds.
#[inline(always)]
fn rg(regs: &[u64], r: R) -> u64 {
    debug_assert!((r as usize) < regs.len());
    // SAFETY: see doc comment — `validate` + the `exec_phase` entry assert.
    unsafe { *regs.get_unchecked(r as usize) }
}

/// Unchecked register write; same justification as [`rg`].
#[inline(always)]
fn wr(regs: &mut [u64], r: R, v: u64) {
    debug_assert!((r as usize) < regs.len());
    // SAFETY: see doc comment on `rg`.
    unsafe { *regs.get_unchecked_mut(r as usize) = v }
}

pub(crate) fn exec_phase(
    c: &Compiled,
    phase: usize,
    regs: &mut [u64],
    privs: &mut [Vec<u64>],
    locals: &mut [Vec<u64>],
    t: &mut TapeCtx<'_>,
) -> bool {
    exec_phase_from(c, c.phase_starts[phase] as usize, regs, privs, locals, t)
}

/// How a (possibly bounded) scalar tape run ended.
#[derive(PartialEq, Eq)]
enum ScalarRun {
    /// The item executed `Ret` (early exit).
    Ret,
    /// The item ran off the end of the phase (`Halt`).
    Halt,
    /// Bounded run only: the item reached the `until` pc without executing
    /// it — it is parked at a reconvergence point, not finished.
    Until,
}

/// [`exec_phase`] starting at an arbitrary instruction. The vectorized warp
/// interpreter uses this to continue individual lanes from a divergent
/// branch: the branch op itself re-evaluates its condition from the lane's
/// registers (a pure read), so resuming *at* the branch reproduces scalar
/// control flow exactly without duplicating any side effect.
pub(crate) fn exec_phase_from(
    c: &Compiled,
    entry: usize,
    regs: &mut [u64],
    privs: &mut [Vec<u64>],
    locals: &mut [Vec<u64>],
    t: &mut TapeCtx<'_>,
) -> bool {
    let run = if t.prof.is_some() {
        exec_scalar::<false, true>(c, entry, usize::MAX, regs, privs, locals, t)
    } else {
        exec_scalar::<false, false>(c, entry, usize::MAX, regs, privs, locals, t)
    };
    run == ScalarRun::Ret
}

/// The scalar interpreter loop. `BOUNDED` is a compile-time switch: `false`
/// instantiates the unbounded hot path (no per-op `until` compare), `true`
/// the warp interpreter's per-lane continuation, which stops *before*
/// executing the op at `until` so the lane can rejoin vectorized execution
/// there. `PROF` switches per-opcode time attribution on: like `BOUNDED` it
/// is a const generic, so the unprofiled instantiation carries no timing
/// code at all — the same licensing discipline structural validation uses
/// for unchecked register access.
#[inline(never)] // keep the two PROF instantiations from inlining side by side
fn exec_scalar<const BOUNDED: bool, const PROF: bool>(
    c: &Compiled,
    entry: usize,
    until: usize,
    regs: &mut [u64],
    privs: &mut [Vec<u64>],
    locals: &mut [Vec<u64>],
    t: &mut TapeCtx<'_>,
) -> ScalarRun {
    assert!(regs.len() >= c.nregs, "register file smaller than tape nregs");
    assert!(entry < c.ops.len(), "entry pc outside the tape");
    let ops = &c.ops[..];
    let mut pc = entry;
    // Pending per-op attribution: the opcode whose dispatch started at
    // `Instant`. One timer read per iteration both closes the previous op's
    // span and opens the next — control-flow ops are charged until their
    // target's first dispatch, which is exactly their interpretation cost.
    let mut pending: Option<(usize, Instant)> = None;
    loop {
        if BOUNDED && pc == until {
            if PROF {
                flush_pending(&mut t.prof, &mut pending);
            }
            return ScalarRun::Until;
        }
        if PROF {
            let now = Instant::now();
            if let (Some((idx, start)), Some(p)) = (pending.take(), t.prof.as_deref_mut()) {
                p.add(idx, now - start);
            }
            // SAFETY: as for the fetch below — `pc` is in bounds.
            pending = Some((op_index(unsafe { ops.get_unchecked(pc) }), now));
        }
        // SAFETY: `validate` checked that every jump target and phase entry
        // is inside the tape and that the tape ends in `Ret`/`Halt`, so by
        // induction `pc` stays in bounds (a non-terminator is never final,
        // hence `pc + 1` lands on an op; jumps land on validated targets).
        match *unsafe { ops.get_unchecked(pc) } {
            Op::Const { dst, bits } => wr(regs, dst, bits),
            Op::Gid { dst, dim } => wr(regs, dst, bi32(t.gid[dim as usize] as i32)),
            Op::Gsz { dst, dim } => wr(regs, dst, bi32(t.gsize[dim as usize] as i32)),
            Op::Lid { dst, dim } => wr(regs, dst, bi32(if dim == 0 { t.lid as i32 } else { 0 })),
            Op::Lsz { dst, dim } => wr(regs, dst, bi32(if dim == 0 { t.lsize as i32 } else { 1 })),
            Op::Grp { dst, dim } => wr(regs, dst, bi32(if dim == 0 { t.group as i32 } else { 0 })),
            Op::Mov { dst, src } => wr(regs, dst, rg(regs, src)),
            Op::Cast { dst, src, from, to } => wr(regs, dst, cast_bits(from, to, rg(regs, src))),
            Op::AsI64 { dst, src, from } => wr(regs, dst, bi64(to_i64(from, rg(regs, src)))),
            Op::MaxOne { dst } => {
                wr(regs, dst, bi64(i64v(rg(regs, dst)).max(1)));
            }
            Op::I64ToI32 { dst, src } => wr(regs, dst, bi32(i64v(rg(regs, src)) as i32)),
            Op::AddI64 { dst, a, b } => wr(regs, dst, bi64(i64v(rg(regs, a)) + i64v(rg(regs, b)))),
            Op::JgeI64 { a, b, target } => {
                if i64v(rg(regs, a)) >= i64v(rg(regs, b)) {
                    pc = target as usize;
                    continue;
                }
            }
            Op::Neg { dst, src, k } => {
                let s = rg(regs, src);
                let v = match k {
                    K::F32 => b32(-f32v(s)),
                    K::F64 => b64(-f64v(s)),
                    K::I32 => bi32(-i32v(s)),
                    K::Bool => bi32(-((s != 0) as i32)),
                };
                wr(regs, dst, v);
            }
            Op::Not { dst, src, k } => {
                wr(regs, dst, bb(!truthy(k, rg(regs, src))));
            }
            Op::Bin { dst, a, b, op, k } => {
                wr(regs, dst, bin_bits(op, k, rg(regs, a), rg(regs, b)));
            }
            Op::Logic { dst, a, b, ka, kb, or } => {
                let (x, y) = (truthy(ka, rg(regs, a)), truthy(kb, rg(regs, b)));
                wr(regs, dst, bb(if or { x || y } else { x && y }));
            }
            Op::MinMax { dst, a, b, k, max } => {
                let (x, y) = (rg(regs, a), rg(regs, b));
                let v = match k {
                    K::F32 => {
                        let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                        b32((if max { p.max(q) } else { p.min(q) }) as f32)
                    }
                    K::F64 => {
                        let (p, q) = (f64v(x), f64v(y));
                        b64(if max { p.max(q) } else { p.min(q) })
                    }
                    K::I32 => {
                        let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                        bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                    }
                    K::Bool => unreachable!("min/max never promotes to bool"),
                };
                wr(regs, dst, v);
            }
            Op::Intr1 { dst, src, intr, k } => {
                let s = rg(regs, src);
                let v = match k {
                    K::F32 => b32(intr1_f32(intr, f32v(s))),
                    _ => b64(intr1_f64(intr, f64v(s))),
                };
                wr(regs, dst, v);
            }
            Op::Sel { dst, cond, ck, t: tr, f: fr } => {
                let v = if truthy(ck, rg(regs, cond)) { rg(regs, tr) } else { rg(regs, fr) };
                wr(regs, dst, v);
            }
            Op::LdG { dst, buf, idx, site, constant } => {
                let i = i64v(rg(regs, idx));
                let b = t.bufs[buf as usize].expect("buffer bound");
                if constant {
                    t.counters.loads_constant += 1;
                } else {
                    let eb = b.elem_bytes() as u64;
                    t.counters.loads_global += 1;
                    t.counters.bytes_loaded += eb;
                    if t.trace_on {
                        t.trace.push((site, 0, ((buf as u64) << 40) | ((i as u64) * eb)));
                    }
                }
                debug_assert!(
                    i >= 0 && (i as usize) < b.len(),
                    "load out of bounds: param {buf}[{i}] (len {})",
                    b.len()
                );
                if let Some(sh) = b.shadow() {
                    if let Some(kind) = sh.classify_load(i as usize) {
                        crate::sanitize::report_load_fault(
                            kind,
                            t.san.as_ref(),
                            buf as usize,
                            site,
                            i as u64,
                            "tape",
                        );
                    }
                }
                // SAFETY: launch contract — no concurrent writer of this
                // element (same contract as the tree-walker).
                wr(regs, dst, unsafe { b.get_bits(i as usize) });
            }
            Op::StG { buf, idx, val, vk, site } => {
                let i = i64v(rg(regs, idx));
                let b = t.bufs[buf as usize].expect("buffer bound");
                let eb = b.elem_bytes() as u64;
                t.counters.stores_global += 1;
                t.counters.bytes_stored += eb;
                if t.trace_on {
                    t.trace.push((site, 0, ((buf as u64) << 40) | ((i as u64) * eb)));
                }
                if t.race_on {
                    t.writes.push((buf as u32, i as u64, t.item, site));
                }
                debug_assert!(
                    i >= 0 && (i as usize) < b.len(),
                    "store out of bounds: param {buf}[{i}] (len {})",
                    b.len()
                );
                if let Some(sh) = b.shadow() {
                    sh.note_store(i as usize);
                }
                // SAFETY: launch contract — element disjointness across
                // work-items (verified by race-check mode).
                unsafe { b.set(i as usize, bits_value(vk, rg(regs, val))) };
            }
            Op::LdP { dst, arr, idx } => {
                wr(regs, dst, privs[arr as usize][i64v(rg(regs, idx)) as usize]);
            }
            Op::StP { arr, idx, val, vk, k } => {
                let i = i64v(rg(regs, idx)) as usize;
                privs[arr as usize][i] = cast_bits(vk, k, rg(regs, val));
            }
            Op::LdL { dst, arr, idx } => {
                wr(regs, dst, locals[arr as usize][i64v(rg(regs, idx)) as usize]);
            }
            Op::StL { arr, idx, val, vk, k } => {
                let i = i64v(rg(regs, idx)) as usize;
                locals[arr as usize][i] = cast_bits(vk, k, rg(regs, val));
            }
            Op::DeclPriv { arr, len } => {
                let n = i64v(rg(regs, len)) as usize;
                let p = &mut privs[arr as usize];
                p.clear();
                p.resize(n, 0);
            }
            Op::DeclLocal { arr, len } => {
                let n = i64v(rg(regs, len)) as usize;
                let l = &mut locals[arr as usize];
                if l.len() != n {
                    l.clear();
                    l.resize(n, 0);
                }
            }
            Op::Flops { n } => t.counters.flops += n as u64,
            Op::Jmp { target } => {
                pc = target as usize;
                continue;
            }
            Op::Jz { cond, k, target } => {
                if !truthy(k, rg(regs, cond)) {
                    pc = target as usize;
                    continue;
                }
            }
            Op::Ret => {
                if PROF {
                    flush_pending(&mut t.prof, &mut pending);
                }
                return ScalarRun::Ret;
            }
            Op::Halt => {
                if PROF {
                    flush_pending(&mut t.prof, &mut pending);
                }
                return ScalarRun::Halt;
            }
        }
        pc += 1;
    }
}

// ---- warp-vectorized execution ----
//
// The scalar interpreter above re-dispatches every op once per work-item:
// 32 fetch/decode cycles per warp per op. The warp interpreter decodes each
// op *once* and applies it to the active lanes through a structure-of-arrays
// register file (`vregs[r * WARP + lane]`), the software analogue of SIMT
// instruction issue on the paper's GPUs. Lanes of one warp are consecutive
// work-items; the active set is a lane bitmask, initially the prefix
// `0..nact` (only the final warp of an NDRange is partial).
//
// Branches follow the hardware's reconvergence discipline. A branch whose
// active lanes agree takes a single jump. When lanes *diverge*, the
// interpreter executes both sides under complementary masks and reconverges
// at the branch's immediate postdominator (`Compiled::joins`, computed at
// compile time) — exactly the stack-based reconvergence real SIMT hardware
// performs, which keeps warps vectorized across the per-lane boundary
// conditions that dominate the acoustics kernels. Lanes that `Ret` inside a
// masked region simply drop out of the mask. Only when no join is usable (a
// branch whose paths never meet again, or reconvergence nested past
// `MAX_DIVERGE_DEPTH`) does a lane finish on the scalar interpreter — run
// *until the join*, so even that path rejoins vector execution. Divergence
// is therefore a performance event, never a correctness one, and
// `vgpu.warp.divergent` counts the warps that actually paid for it.

/// Unchecked SoA register read: lane `l` of register `r`. Same license as
/// [`rg`] — `validate` bounds every operand below `nregs`, and
/// [`exec_phase_warp`] asserts the SoA file holds `nregs * WARP` lanes with
/// `l < WARP`.
#[inline(always)]
fn vg(vregs: &[u64], r: R, l: usize) -> u64 {
    debug_assert!(r as usize * WARP + l < vregs.len());
    // SAFETY: see doc comment.
    unsafe { *vregs.get_unchecked(r as usize * WARP + l) }
}

/// Unchecked SoA register write; same justification as [`vg`].
#[inline(always)]
fn vs(vregs: &mut [u64], r: R, l: usize, v: u64) {
    debug_assert!(r as usize * WARP + l < vregs.len());
    // SAFETY: see doc comment on `vg`.
    unsafe { *vregs.get_unchecked_mut(r as usize * WARP + l) = v }
}

/// The mask with every lane of a full warp active.
const FULL_MASK: u32 = u32::MAX;

/// The active mask of a fresh warp: lanes `0..nact`.
#[inline(always)]
fn prefix_mask(nact: usize) -> u32 {
    debug_assert!((1..=WARP).contains(&nact));
    if nact == WARP {
        FULL_MASK
    } else {
        (1u32 << nact) - 1
    }
}

/// Runs `$body` with `$l` bound to each set lane of `$mask`, low to high.
macro_rules! for_lanes {
    ($mask:expr, $l:ident, $body:block) => {{
        let mut m: u32 = $mask;
        while m != 0 {
            let $l = m.trailing_zeros() as usize;
            m &= m - 1;
            $body
        }
    }};
}

/// The active lanes of `mask` as a dense range `lo..hi`, when the mask is
/// one contiguous run of set bits. Full warps, partial final warps, and the
/// divergence masks of boundary-condition branches (interior lanes vs. the
/// edge lanes of a stencil row) are all contiguous, so lane loops stay
/// dense — and autovectorizable — even while diverged.
#[inline(always)]
fn contiguous(mask: u32) -> Option<(usize, usize)> {
    let lo = mask.trailing_zeros();
    let run = mask >> lo;
    if run & run.wrapping_add(1) == 0 {
        Some((lo as usize, (lo + 32 - run.leading_zeros()) as usize))
    } else {
        None
    }
}

/// Runs `$body` with `$l` bound to each active lane of `$mask`: a fixed
/// 32-trip loop for full warps, a dense range for contiguous masks, a
/// bit-scan otherwise. The fused executor's lane loops all come through
/// here so the hot (uniform / contiguous) paths present LLVM with plain
/// counted loops over monomorphic bodies.
macro_rules! for_mask {
    ($mask:expr, $l:ident, $body:block) => {{
        let m: u32 = $mask;
        if m == FULL_MASK {
            for $l in 0..WARP {
                $body
            }
        } else if let Some((lo, hi)) = contiguous(m) {
            for $l in lo..hi {
                $body
            }
        } else {
            for_lanes!(m, $l, $body);
        }
    }};
}

/// Lane-wise unary register op over the active mask. Contiguous masks — the
/// overwhelmingly common case, see [`contiguous`] — get a dense loop that
/// LLVM can autovectorize.
#[inline(always)]
fn vmap1(vregs: &mut [u64], dst: R, src: R, mask: u32, f: impl Fn(u64) -> u64) {
    if mask == FULL_MASK {
        // Constant trip count: LLVM unrolls/vectorizes with no remainder.
        for l in 0..WARP {
            let x = vg(vregs, src, l);
            vs(vregs, dst, l, f(x));
        }
    } else if let Some((lo, hi)) = contiguous(mask) {
        for l in lo..hi {
            let x = vg(vregs, src, l);
            vs(vregs, dst, l, f(x));
        }
    } else {
        for_lanes!(mask, l, {
            let x = vg(vregs, src, l);
            vs(vregs, dst, l, f(x));
        });
    }
}

/// Lane-wise binary register op over the active mask; see [`vmap1`].
#[inline(always)]
fn vmap2(vregs: &mut [u64], dst: R, a: R, b: R, mask: u32, f: impl Fn(u64, u64) -> u64) {
    if mask == FULL_MASK {
        for l in 0..WARP {
            let x = vg(vregs, a, l);
            let y = vg(vregs, b, l);
            vs(vregs, dst, l, f(x, y));
        }
    } else if let Some((lo, hi)) = contiguous(mask) {
        for l in lo..hi {
            let x = vg(vregs, a, l);
            let y = vg(vregs, b, l);
            vs(vregs, dst, l, f(x, y));
        }
    } else {
        for_lanes!(mask, l, {
            let x = vg(vregs, a, l);
            let y = vg(vregs, b, l);
            vs(vregs, dst, l, f(x, y));
        });
    }
}

/// Lane-wise ternary register op over the active mask; see [`vmap1`].
#[inline(always)]
fn vmap3(vregs: &mut [u64], dst: R, a: R, b: R, c: R, mask: u32, f: impl Fn(u64, u64, u64) -> u64) {
    for_mask!(mask, l, {
        let x = vg(vregs, a, l);
        let y = vg(vregs, b, l);
        let z = vg(vregs, c, l);
        vs(vregs, dst, l, f(x, y, z));
    });
}

/// Registers the flat vector dispatcher must broadcast into every lane of a
/// warp register file, split by lifetime:
///
/// - `.0` — broadcast **once per register-file allocation**: scalar slots
///   the main tape never writes (zero or launch-argument bits, like the
///   scalar path's `regs.fill(0)` + slot init) and the destinations of the
///   hoisted prelude (single-writer: their only writer moved to `pre`).
///   Nothing overwrites these lanes, so one fill serves every warp the
///   file is reused for.
/// - `.1` — broadcast **per warp**: slots the tape itself writes; the next
///   warp must see the launch-initial bits again.
///
/// `item_pre` destinations need no broadcast at all — [`exec_item_pre_warp`]
/// rewrites every active lane each warp, and masked execution never reads
/// an inactive lane. Every other register is written before it is read
/// within one item — the same single-writer/write-before-read property the
/// optimizer's hoisting pass relies on — so its lanes may start as garbage.
pub(crate) fn warp_init_regs(c: &Compiled, nslots: usize) -> (Vec<R>, Vec<R>) {
    let mut written = vec![false; c.nregs];
    for op in &c.ops {
        if let Some(d) = op_dst(op) {
            written[d as usize] = true;
        }
    }
    let (mut once, mut per_warp): (Vec<R>, Vec<R>) = (Vec::new(), Vec::new());
    for s in 0..nslots as R {
        if written[s as usize] {
            per_warp.push(s);
        } else {
            once.push(s);
        }
    }
    for op in &c.pre {
        if let Some(d) = op_dst(op) {
            once.push(d);
        }
    }
    once.sort_unstable();
    once.dedup();
    (once, per_warp)
}

/// Vectorized [`exec_item_pre`]: one deduplicated context read per distinct
/// (op, dim), written to every active lane. Flat dispatch passes `lid = 0`,
/// `lsize = 1` and per-lane groups, exactly as the scalar path does.
pub(crate) fn exec_item_pre_warp(
    c: &Compiled,
    vregs: &mut [u64],
    nact: usize,
    gids: &[[usize; 3]],
    items: &[u64],
) {
    for op in &c.item_pre {
        match *op {
            Op::Gid { dst, dim } => {
                for (l, gid) in gids.iter().enumerate().take(nact) {
                    vs(vregs, dst, l, bi32(gid[dim as usize] as i32));
                }
            }
            Op::Lid { dst, .. } => {
                for l in 0..nact {
                    vs(vregs, dst, l, bi32(0));
                }
            }
            Op::Lsz { dst, .. } => {
                for l in 0..nact {
                    vs(vregs, dst, l, bi32(1));
                }
            }
            Op::Grp { dst, dim } => {
                for (l, item) in items.iter().enumerate().take(nact) {
                    let g = if dim == 0 { (item / WARP as u64) as i32 } else { 0 };
                    vs(vregs, dst, l, bi32(g));
                }
            }
            _ => unreachable!("non-context op in item prelude"),
        }
    }
}

/// Reconvergence recursion bound: one level per simultaneously-open masked
/// region (nested `If`s, or one level per divergent loop-exit event — at
/// most one per lane). Far above anything structured kernels produce; past
/// it the affected lanes finish on the bounded scalar interpreter, which is
/// a performance valve, not a correctness limit.
const MAX_DIVERGE_DEPTH: u32 = 64;

/// Per-warp launch state threaded through [`exec_phase_warp`]. Counters and
/// race records are shared across lanes (bulk-added per op); transaction
/// traces stay per-lane so the existing warp coalescing model
/// (`warp_transaction_bytes`) sees the same per-item access sequences the
/// scalar interpreter produces.
pub(crate) struct WarpCtx<'a> {
    /// Buffer bindings (by parameter index).
    pub bufs: &'a [Option<&'a SharedBuf>],
    /// Shared operation counters.
    pub counters: &'a mut Counters,
    /// Per-lane transaction traces (`traces[l]` belongs to lane `l`).
    pub traces: &'a mut [Vec<(u32, u32, u64)>],
    /// Record load/store addresses into `traces`.
    pub trace_on: bool,
    /// Shared global-store records for the race detector.
    pub writes: &'a mut Vec<WriteRec>,
    /// Record stores into `writes`.
    pub race_on: bool,
    /// Per-lane linear work-item ids.
    pub items: &'a [u64],
    /// Per-lane global ids.
    pub gids: &'a [[usize; 3]],
    /// Global NDRange sizes.
    pub gsize: [usize; 3],
    /// Per-opcode time tally (`VGPU_PROFILE=op` only); `None` selects the
    /// unprofiled warp-interpreter instantiation.
    pub prof: Option<&'a mut OpProf>,
    /// Kernel identity for shadow-sanitizer findings (`None` when the
    /// sanitizer is off).
    pub san: Option<crate::sanitize::SanCtx<'a>>,
}

/// Executes one phase of a compiled tape for a whole warp at once: `nact`
/// active lanes (initially a prefix; the last warp of an NDRange may be
/// partial) advance through the tape in lockstep over the SoA register file
/// `vregs`, diverging and reconverging per the SIMT mask discipline in the
/// section comment above. Arithmetic reuses the exact bit-level helpers of
/// the scalar interpreter ([`bin_bits`], [`cast_bits`],
/// [`intr1_f32`]/[`intr1_f64`]), so results are bit-identical lane for
/// lane. Returns `true` when any branch diverged — the warp still ran to
/// completion; the flag feeds `vgpu.warp.divergent`.
pub(crate) fn exec_phase_warp(
    c: &Compiled,
    phase: usize,
    nact: usize,
    vregs: &mut [u64],
    lane_privs: &mut [Vec<Vec<u64>>],
    w: &mut WarpCtx<'_>,
) -> bool {
    assert!(vregs.len() >= c.nregs * WARP, "SoA register file smaller than tape nregs");
    assert!((1..=WARP).contains(&nact), "active lanes out of range");
    assert!(lane_privs.len() >= nact && w.items.len() >= nact && w.gids.len() >= nact);
    assert_eq!(c.joins.len(), c.ops.len(), "tape compiled without join metadata");
    let prof_on = w.prof.is_some();
    let mut ex =
        WarpExec { c, vregs, lane_privs, w, scratch: Vec::new(), diverged: false, pending: None };
    let (entry, end, mask) = (c.phase_starts[phase] as usize, c.ops.len(), prefix_mask(nact));
    if prof_on {
        ex.run::<true>(entry, end, mask, 0);
        // Close the final op's span (the `Ret`/`Halt` that ended the phase).
        ex.flush_pending();
    } else {
        ex.run::<false>(entry, end, mask, 0);
    }
    ex.diverged
}

// ---- fused-block executor (the compiled engine's inner loop) ----
//
// `exec_fused_warp` is the compiled counterpart of `exec_phase_warp`: it
// walks superinstruction basic blocks instead of decoding one op at a time,
// under a lane mask. Uniform terminators just pick the next block.
// Divergent terminators resolve in place where the block graph allows it:
// a halt-only successor (an early-return guard) retires its lanes from the
// mask, and single-block diamond/triangle arms run if-converted under
// complementary masks before reconverging at the join. Only shapes outside
// those patterns — divergent loop trip counts, multi-block arms — hand the
// warp to the vector interpreter at the terminator's original tape pc
// (`exec_warp_from`), whose general reconvergence machinery finishes the
// phase. Conditions are pure register reads, so re-evaluating them after
// the hand-off neither skips nor doubles any effect. All lane loops go
// through `for_mask!`, which presents LLVM with constant-trip (full warp)
// or dense-range (contiguous mask) counted loops over monomorphic bodies.
//
// Bounds discipline: the executor receives a per-site `checked` table
// (true ⇒ keep the dynamic check). Sites the static verifier proved in
// bounds for every work-item run raw unchecked pointer accesses
// ([`BufPtr`]) — the proof-licensed elision the compiled engine exists
// for, audited by a debug-build assert pass; POTENTIAL sites keep a
// release-mode `assert!` and fail with a clean panic instead of undefined
// behaviour.

/// Resumes the vector interpreter at tape pc `pc` under the given active
/// mask and runs the phase to completion. Divergence-delegation entry for
/// the compiled engine — the fallback for control-flow shapes the masked
/// fused executor does not handle in place (divergent loop trip counts,
/// multi-block diamond arms).
fn exec_warp_from(
    c: &Compiled,
    pc: usize,
    mask: u32,
    vregs: &mut [u64],
    lane_privs: &mut [Vec<Vec<u64>>],
    w: &mut WarpCtx<'_>,
) {
    let prof_on = w.prof.is_some();
    let mut ex =
        WarpExec { c, vregs, lane_privs, w, scratch: Vec::new(), diverged: false, pending: None };
    let end = c.ops.len();
    if prof_on {
        ex.run::<true>(pc, end, mask, 0);
        ex.flush_pending();
    } else {
        ex.run::<false>(pc, end, mask, 0);
    }
}

/// Executes one phase of a fused tape for a whole warp: the active lanes
/// advance block by block under a lane mask. Divergent branches are
/// resolved in place where the block graph allows it — early-return guards
/// retire their lanes from the mask, and single-block diamond/triangle
/// arms run if-converted under complementary masks — so the monomorphic
/// superinstruction loops keep running; only shapes outside those patterns
/// (divergent loop trips, nested arms) delegate the warp to the vector
/// interpreter. Returns `true` when the warp diverged — the same condition
/// ([`WarpExec::branch`]'s lanes-disagree test) the vector engine reports,
/// so `vgpu.warp.divergent` stays bit-identical across engine legs. The
/// caller must have tracing and race recording off; those modes run the
/// vector engine wholesale instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_fused_warp(
    f: &Fused,
    c: &Compiled,
    phase: usize,
    nact: usize,
    vregs: &mut [u64],
    lane_privs: &mut [Vec<Vec<u64>>],
    w: &mut WarpCtx<'_>,
    checked: &[bool],
) -> bool {
    assert!(vregs.len() >= c.nregs * WARP, "SoA register file smaller than tape nregs");
    assert!((1..=WARP).contains(&nact), "active lanes out of range");
    assert!(lane_privs.len() >= nact && w.items.len() >= nact && w.gids.len() >= nact);
    debug_assert!(!w.trace_on && !w.race_on, "tracing/race modes run the vector engine");
    if w.prof.is_some() {
        run_fused::<true>(f, c, phase, nact, vregs, lane_privs, w, checked)
    } else {
        run_fused::<false>(f, c, phase, nact, vregs, lane_privs, w, checked)
    }
}

/// True for a block that only retires its lanes: no ops, `Halt` terminator.
/// The early-return guards of the acoustics kernels branch to exactly this
/// shape, so a divergent guard just masks the returning lanes out.
#[inline(always)]
fn halt_only(b: &FBlock) -> bool {
    b.ops.is_empty() && matches!(b.term, FTerm::Halt)
}

/// The block `b` jumps to unconditionally, if its terminator is a `Jmp`.
#[inline(always)]
fn jmp_exit(f: &Fused, b: u32) -> Option<u32> {
    match f.blocks[b as usize].term {
        FTerm::Jmp { block } => Some(block),
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_fused<const PROF: bool>(
    f: &Fused,
    c: &Compiled,
    phase: usize,
    nact: usize,
    vregs: &mut [u64],
    lane_privs: &mut [Vec<Vec<u64>>],
    w: &mut WarpCtx<'_>,
    checked: &[bool],
) -> bool {
    let mut mask = prefix_mask(nact);
    let mut diverged = false;
    let mut bi = f.entries[phase] as usize;
    loop {
        let blk = &f.blocks[bi];
        exec_block_ops::<PROF>(&blk.ops, mask, vregs, lane_privs, w, checked);
        let t0 = if PROF { Some(Instant::now()) } else { None };
        // `zmask` collects the active lanes taking the `on_zero` side.
        let (zmask, on_zero, on_nonzero, orig_pc, prof_idx) = match blk.term {
            FTerm::Halt => return diverged,
            FTerm::Jmp { block } => {
                bi = block as usize;
                continue;
            }
            FTerm::Jz { cond, k, on_zero, on_nonzero, orig_pc } => {
                let mut zm = 0u32;
                for_mask!(mask, l, {
                    if !truthy(k, vg(vregs, cond, l)) {
                        zm |= 1 << l;
                    }
                });
                (zm, on_zero, on_nonzero, orig_pc, 30usize)
            }
            FTerm::CmpJz { a, b, op, k, on_zero, on_nonzero, orig_pc } => {
                let mut zm = 0u32;
                match (k, op) {
                    (K::I32, BinOp::Ge) => for_mask!(mask, l, {
                        if i32v(vg(vregs, a, l)) < i32v(vg(vregs, b, l)) {
                            zm |= 1 << l;
                        }
                    }),
                    (K::I32, BinOp::Lt) => for_mask!(mask, l, {
                        if i32v(vg(vregs, a, l)) >= i32v(vg(vregs, b, l)) {
                            zm |= 1 << l;
                        }
                    }),
                    (K::I32, BinOp::Eq) => for_mask!(mask, l, {
                        if i32v(vg(vregs, a, l)) != i32v(vg(vregs, b, l)) {
                            zm |= 1 << l;
                        }
                    }),
                    (K::I32, BinOp::Ne) => for_mask!(mask, l, {
                        if i32v(vg(vregs, a, l)) == i32v(vg(vregs, b, l)) {
                            zm |= 1 << l;
                        }
                    }),
                    _ => for_mask!(mask, l, {
                        if !truthy(K::Bool, bin_bits(op, k, vg(vregs, a, l), vg(vregs, b, l))) {
                            zm |= 1 << l;
                        }
                    }),
                }
                (zm, on_zero, on_nonzero, orig_pc, NOPCODES + FOP_CMPJZ)
            }
            FTerm::JgeI64 { a, b, on_ge, on_lt, orig_pc } => {
                let mut zm = 0u32;
                for_mask!(mask, l, {
                    if i64v(vg(vregs, a, l)) < i64v(vg(vregs, b, l)) {
                        zm |= 1 << l;
                    }
                });
                (zm, on_lt, on_ge, orig_pc, 12usize)
            }
        };
        if PROF {
            if let Some(p) = w.prof.as_deref_mut() {
                p.add(prof_idx, t0.expect("prof start").elapsed());
            }
        }
        let m1 = mask & !zmask;
        bi = if zmask == 0 {
            on_nonzero as usize
        } else if m1 == 0 {
            on_zero as usize
        } else {
            // The lanes disagree — the exact condition [`WarpExec::branch`]
            // reports as divergence, so flag it identically, then resolve
            // the split in place when the block shape allows.
            diverged = true;
            if halt_only(&f.blocks[on_zero as usize]) {
                mask = m1;
                on_nonzero as usize
            } else if halt_only(&f.blocks[on_nonzero as usize]) {
                mask = zmask;
                on_zero as usize
            } else {
                let ez = jmp_exit(f, on_zero);
                let enz = jmp_exit(f, on_nonzero);
                if enz == Some(on_zero) {
                    // Triangle: the nonzero side is a single-block arm
                    // rejoining at `on_zero`.
                    exec_block_ops::<PROF>(
                        &f.blocks[on_nonzero as usize].ops,
                        m1,
                        vregs,
                        lane_privs,
                        w,
                        checked,
                    );
                    on_zero as usize
                } else if ez == Some(on_nonzero) {
                    exec_block_ops::<PROF>(
                        &f.blocks[on_zero as usize].ops,
                        zmask,
                        vregs,
                        lane_privs,
                        w,
                        checked,
                    );
                    on_nonzero as usize
                } else if let Some(join) = ez.filter(|&j| enz == Some(j)) {
                    // Diamond: both arms are single blocks jumping to one
                    // join. Run each under its side's mask (fall-through
                    // side first, like the interpreter) and reconverge.
                    // Writes are per-lane and work-items are disjoint, so
                    // arm order cannot change any observable result.
                    exec_block_ops::<PROF>(
                        &f.blocks[on_nonzero as usize].ops,
                        m1,
                        vregs,
                        lane_privs,
                        w,
                        checked,
                    );
                    exec_block_ops::<PROF>(
                        &f.blocks[on_zero as usize].ops,
                        zmask,
                        vregs,
                        lane_privs,
                        w,
                        checked,
                    );
                    join as usize
                } else {
                    exec_warp_from(c, orig_pc as usize, mask, vregs, lane_privs, w);
                    return true;
                }
            }
        };
    }
}

/// Executes a block's superinstructions under `mask`, attributing per-op
/// time when `PROF` (fused kinds tally in their `F.*` slots, `Base` ops
/// under their inner opcode).
fn exec_block_ops<const PROF: bool>(
    ops: &[FOp],
    mask: u32,
    vregs: &mut [u64],
    lane_privs: &mut [Vec<Vec<u64>>],
    w: &mut WarpCtx<'_>,
    checked: &[bool],
) {
    for fop in ops {
        if PROF {
            let t0 = Instant::now();
            exec_fop(fop, mask, vregs, lane_privs, w, checked);
            let idx = match fop_index(fop) {
                Some(i) => NOPCODES + i,
                None => match fop {
                    FOp::Base(op) => op_index(op),
                    _ => unreachable!(),
                },
            };
            if let Some(p) = w.prof.as_deref_mut() {
                p.add(idx, t0.elapsed());
            }
        } else {
            exec_fop(fop, mask, vregs, lane_privs, w, checked);
        }
    }
}

/// Gathers `b[idx[l]]` for the active lanes into `vals` as raw register
/// bits, through the buffer's typed base pointer: the element-kind dispatch
/// happens once per superinstruction and each lane-loop body is a plain
/// indexed load LLVM can vectorize.
///
/// The caller must have established bounds for every active index — by the
/// site's release-mode assert, or by the static verifier's PROVEN verdict
/// (audited by a debug-build assert pass).
#[inline(always)]
fn gather_lanes(b: &SharedBuf, idx: &[i64; WARP], mask: u32, vals: &mut [u64; WARP]) {
    // SAFETY (all arms): index in bounds per the function contract; reads
    // race only with disjoint writes per the launch contract.
    match b.ptr() {
        BufPtr::F32(p) => for_mask!(mask, l, {
            vals[l] = unsafe { (*p.add(idx[l] as usize)).to_bits() as u64 };
        }),
        BufPtr::F64(p) => for_mask!(mask, l, {
            vals[l] = unsafe { (*p.add(idx[l] as usize)).to_bits() };
        }),
        BufPtr::I32(p) => for_mask!(mask, l, {
            vals[l] = unsafe { *p.add(idx[l] as usize) as u32 as u64 };
        }),
    }
}

/// Scatters register `val` (kind `vk`) to `b[idx[l]]` for the active lanes.
/// The matched-kind arms replicate [`crate::buffer::BufData::set`]'s cast
/// exactly (identity for same-kind stores); mixed kinds — which the
/// acoustics kernels never emit — keep the generic per-element path. Same
/// bounds contract as [`gather_lanes`], plus write disjointness.
#[inline(always)]
fn scatter_lanes(b: &SharedBuf, vk: K, idx: &[i64; WARP], mask: u32, vregs: &[u64], val: R) {
    // SAFETY (all arms): index in bounds per the function contract; the
    // launch contract gives element disjointness across work-items.
    match (b.ptr(), vk) {
        (BufPtr::F32(p), K::F32) => for_mask!(mask, l, {
            unsafe { *p.add(idx[l] as usize) = f32v(vg(vregs, val, l)) };
        }),
        (BufPtr::F64(p), K::F64) => for_mask!(mask, l, {
            unsafe { *p.add(idx[l] as usize) = f64v(vg(vregs, val, l)) };
        }),
        (BufPtr::I32(p), K::I32) => for_mask!(mask, l, {
            unsafe { *p.add(idx[l] as usize) = i32v(vg(vregs, val, l)) };
        }),
        _ => for_mask!(mask, l, {
            unsafe { b.set(idx[l] as usize, bits_value(vk, vg(vregs, val, l))) };
        }),
    }
}

/// Shadow-sanitizer check for a warp gather: classifies every active lane's
/// element and reports findings with the warp's kernel context. One shadow
/// test and branch when the sanitizer is off.
#[inline(always)]
fn shadow_gather(
    b: &SharedBuf,
    idx: &[i64; WARP],
    mask: u32,
    san: &Option<crate::sanitize::SanCtx<'_>>,
    buf: usize,
    site: u32,
    engine: &'static str,
) {
    if let Some(sh) = b.shadow() {
        for_mask!(mask, l, {
            if let Some(kind) = sh.classify_load(idx[l] as usize) {
                crate::sanitize::report_load_fault(
                    kind,
                    san.as_ref(),
                    buf,
                    site,
                    idx[l] as u64,
                    engine,
                );
            }
        });
    }
}

/// Shadow-sanitizer update for a warp scatter: marks every active lane's
/// element initialized.
#[inline(always)]
fn shadow_scatter(b: &SharedBuf, idx: &[i64; WARP], mask: u32) {
    if let Some(sh) = b.shadow() {
        for_mask!(mask, l, {
            sh.note_store(idx[l] as usize);
        });
    }
}

/// Executes one superinstruction over the active lanes of `mask`. Counter
/// bumps and arithmetic are bit-identical to the op sequence the fused op
/// replaced, minus the register writes of fused-away single-use
/// intermediates (which nothing else ever reads). The fused kinds dispatch
/// on their operand kind **once** and run monomorphic lane loops — the
/// scalar-helper compositions below reproduce [`bin_bits`]'s arms exactly,
/// operand order included (float addition is not bitwise-commutative around
/// NaN payloads).
fn exec_fop(
    fop: &FOp,
    mask: u32,
    vregs: &mut [u64],
    lane_privs: &mut [Vec<Vec<u64>>],
    w: &mut WarpCtx<'_>,
    checked: &[bool],
) {
    match *fop {
        FOp::Base(ref op) => exec_base_dense(op, mask, vregs, lane_privs, w, checked),
        FOp::MulAdd { dst, a, b, c, k, sub, rev } => {
            macro_rules! fma {
                ($v:ident, $bk:ident) => {
                    match (sub, rev) {
                        (false, false) => {
                            vmap3(vregs, dst, a, b, c, mask, |x, y, z| $bk($v(x) * $v(y) + $v(z)))
                        }
                        (false, true) => {
                            vmap3(vregs, dst, a, b, c, mask, |x, y, z| $bk($v(z) + $v(x) * $v(y)))
                        }
                        (true, false) => {
                            vmap3(vregs, dst, a, b, c, mask, |x, y, z| $bk($v(x) * $v(y) - $v(z)))
                        }
                        (true, true) => {
                            vmap3(vregs, dst, a, b, c, mask, |x, y, z| $bk($v(z) - $v(x) * $v(y)))
                        }
                    }
                };
            }
            match k {
                K::F32 => fma!(f32v, b32),
                K::F64 => fma!(f64v, b64),
                K::I32 => match (sub, rev) {
                    (false, false) => vmap3(vregs, dst, a, b, c, mask, |x, y, z| {
                        bi32(i32v(x).wrapping_mul(i32v(y)).wrapping_add(i32v(z)))
                    }),
                    (false, true) => vmap3(vregs, dst, a, b, c, mask, |x, y, z| {
                        bi32(i32v(z).wrapping_add(i32v(x).wrapping_mul(i32v(y))))
                    }),
                    (true, false) => vmap3(vregs, dst, a, b, c, mask, |x, y, z| {
                        bi32(i32v(x).wrapping_mul(i32v(y)).wrapping_sub(i32v(z)))
                    }),
                    (true, true) => vmap3(vregs, dst, a, b, c, mask, |x, y, z| {
                        bi32(i32v(z).wrapping_sub(i32v(x).wrapping_mul(i32v(y))))
                    }),
                },
                K::Bool => unreachable!("mul/add never fuses at bool kind"),
            }
        }
        FOp::CmpSel { dst, a, b, op, k, tr, fl } => {
            macro_rules! cmpsel {
                ($v:ident, $cmp:tt) => {
                    for_mask!(mask, l, {
                        let pick = if $v(vg(vregs, a, l)) $cmp $v(vg(vregs, b, l)) {
                            tr
                        } else {
                            fl
                        };
                        vs(vregs, dst, l, vg(vregs, pick, l));
                    })
                };
            }
            match (k, op) {
                (K::F32, BinOp::Lt) => cmpsel!(f32v, <),
                (K::F32, BinOp::Le) => cmpsel!(f32v, <=),
                (K::F32, BinOp::Gt) => cmpsel!(f32v, >),
                (K::F32, BinOp::Ge) => cmpsel!(f32v, >=),
                (K::F32, BinOp::Eq) => cmpsel!(f32v, ==),
                (K::F32, BinOp::Ne) => cmpsel!(f32v, !=),
                (K::F64, BinOp::Lt) => cmpsel!(f64v, <),
                (K::F64, BinOp::Le) => cmpsel!(f64v, <=),
                (K::F64, BinOp::Gt) => cmpsel!(f64v, >),
                (K::F64, BinOp::Ge) => cmpsel!(f64v, >=),
                (K::F64, BinOp::Eq) => cmpsel!(f64v, ==),
                (K::F64, BinOp::Ne) => cmpsel!(f64v, !=),
                (K::I32, BinOp::Lt) => cmpsel!(i32v, <),
                (K::I32, BinOp::Le) => cmpsel!(i32v, <=),
                (K::I32, BinOp::Gt) => cmpsel!(i32v, >),
                (K::I32, BinOp::Ge) => cmpsel!(i32v, >=),
                (K::I32, BinOp::Eq) => cmpsel!(i32v, ==),
                (K::I32, BinOp::Ne) => cmpsel!(i32v, !=),
                _ => for_mask!(mask, l, {
                    let t = truthy(K::Bool, bin_bits(op, k, vg(vregs, a, l), vg(vregs, b, l)));
                    let pick = if t { tr } else { fl };
                    vs(vregs, dst, l, vg(vregs, pick, l));
                }),
            }
        }
        FOp::LdGFused { dst, buf, base, off, acc, site, constant } => {
            let b = w.bufs[buf as usize].expect("buffer bound");
            let n = mask.count_ones() as u64;
            let eb = b.elem_bytes() as u64;
            if constant {
                w.counters.loads_constant += n;
            } else {
                w.counters.loads_global += n;
                w.counters.bytes_loaded += eb * n;
            }
            let check = checked.get(site as usize).copied().unwrap_or(true);
            let len = b.len();
            let mut idx = [0i64; WARP];
            match off {
                Some((o, false)) => for_mask!(mask, l, {
                    idx[l] = i32v(vg(vregs, base, l)).wrapping_add(i32v(vg(vregs, o, l))) as i64;
                }),
                Some((o, true)) => for_mask!(mask, l, {
                    idx[l] = i32v(vg(vregs, base, l)).wrapping_sub(i32v(vg(vregs, o, l))) as i64;
                }),
                None => for_mask!(mask, l, {
                    idx[l] = i32v(vg(vregs, base, l)) as i64;
                }),
            }
            if check || cfg!(debug_assertions) {
                for_mask!(mask, l, {
                    let i = idx[l];
                    assert!(
                        i >= 0 && (i as usize) < len,
                        "load out of bounds: param {buf}[{i}] (len {len})"
                    );
                });
            }
            shadow_gather(b, &idx, mask, &w.san, buf as usize, site, "compiled");
            let mut vals = [0u64; WARP];
            gather_lanes(b, &idx, mask, &mut vals);
            match acc {
                Some(Acc { dst: ad, src, k, sub, rev }) => {
                    macro_rules! accw {
                        ($v:ident, $bk:ident) => {
                            match (sub, rev) {
                                (false, false) => for_mask!(mask, l, {
                                    let s = vg(vregs, src, l);
                                    vs(vregs, ad, l, $bk($v(s) + $v(vals[l])));
                                }),
                                (false, true) => for_mask!(mask, l, {
                                    let s = vg(vregs, src, l);
                                    vs(vregs, ad, l, $bk($v(vals[l]) + $v(s)));
                                }),
                                (true, false) => for_mask!(mask, l, {
                                    let s = vg(vregs, src, l);
                                    vs(vregs, ad, l, $bk($v(s) - $v(vals[l])));
                                }),
                                (true, true) => for_mask!(mask, l, {
                                    let s = vg(vregs, src, l);
                                    vs(vregs, ad, l, $bk($v(vals[l]) - $v(s)));
                                }),
                            }
                        };
                    }
                    match k {
                        K::F32 => accw!(f32v, b32),
                        K::F64 => accw!(f64v, b64),
                        K::I32 => {
                            let op2 = if sub { BinOp::Sub } else { BinOp::Add };
                            for_mask!(mask, l, {
                                let s = vg(vregs, src, l);
                                let r = if rev {
                                    bin_bits(op2, k, vals[l], s)
                                } else {
                                    bin_bits(op2, k, s, vals[l])
                                };
                                vs(vregs, ad, l, r);
                            });
                        }
                        K::Bool => unreachable!("load accumulate never fuses at bool kind"),
                    }
                }
                None => for_mask!(mask, l, {
                    vs(vregs, dst, l, vals[l]);
                }),
            }
        }
        FOp::StGAt { buf, base, val, vk, site } => {
            let b = w.bufs[buf as usize].expect("buffer bound");
            let eb = b.elem_bytes() as u64;
            let n = mask.count_ones() as u64;
            w.counters.stores_global += n;
            w.counters.bytes_stored += eb * n;
            let check = checked.get(site as usize).copied().unwrap_or(true);
            let len = b.len();
            let mut idx = [0i64; WARP];
            for_mask!(mask, l, {
                idx[l] = i32v(vg(vregs, base, l)) as i64;
            });
            if check || cfg!(debug_assertions) {
                for_mask!(mask, l, {
                    let i = idx[l];
                    assert!(
                        i >= 0 && (i as usize) < len,
                        "store out of bounds: param {buf}[{i}] (len {len})"
                    );
                });
            }
            shadow_scatter(b, &idx, mask);
            scatter_lanes(b, vk, &idx, mask, vregs, val);
        }
    }
}

/// Masked execution of an unfused op: the vector interpreter's arms under
/// the fused executor's lane mask, plus the compiled engine's per-site
/// bounds discipline on `LdG`/`StG`. The hot arms of the acoustics tapes
/// (i32 index arithmetic, comparisons, `AsI64` from i32, bool logic/select)
/// are monomorphised so the lane loops carry no per-lane kind dispatch.
/// Control-flow ops never appear here — they are block terminators.
fn exec_base_dense(
    op: &Op,
    mask: u32,
    vregs: &mut [u64],
    lane_privs: &mut [Vec<Vec<u64>>],
    w: &mut WarpCtx<'_>,
    checked: &[bool],
) {
    match *op {
        Op::Const { dst, bits } => {
            for_mask!(mask, l, {
                vs(vregs, dst, l, bits);
            });
        }
        Op::Gid { dst, dim } => {
            for_mask!(mask, l, {
                vs(vregs, dst, l, bi32(w.gids[l][dim as usize] as i32));
            });
        }
        Op::Gsz { dst, dim } => {
            let bits = bi32(w.gsize[dim as usize] as i32);
            for_mask!(mask, l, {
                vs(vregs, dst, l, bits);
            });
        }
        Op::Lid { dst, .. } => {
            for_mask!(mask, l, {
                vs(vregs, dst, l, bi32(0));
            });
        }
        Op::Lsz { dst, .. } => {
            for_mask!(mask, l, {
                vs(vregs, dst, l, bi32(1));
            });
        }
        Op::Grp { dst, dim } => {
            for_mask!(mask, l, {
                let g = if dim == 0 { (w.items[l] / WARP as u64) as i32 } else { 0 };
                vs(vregs, dst, l, bi32(g));
            });
        }
        Op::Mov { dst, src } => vmap1(vregs, dst, src, mask, |x| x),
        Op::Cast { dst, src, from, to } => vmap1(vregs, dst, src, mask, |x| cast_bits(from, to, x)),
        Op::AsI64 { dst, src, from } => match from {
            K::I32 => vmap1(vregs, dst, src, mask, |x| bi64(i32v(x) as i64)),
            _ => vmap1(vregs, dst, src, mask, |x| bi64(to_i64(from, x))),
        },
        Op::MaxOne { dst } => vmap1(vregs, dst, dst, mask, |x| bi64(i64v(x).max(1))),
        Op::I64ToI32 { dst, src } => vmap1(vregs, dst, src, mask, |x| bi32(i64v(x) as i32)),
        Op::AddI64 { dst, a, b } => vmap2(vregs, dst, a, b, mask, |x, y| bi64(i64v(x) + i64v(y))),
        Op::Neg { dst, src, k } => match k {
            K::F32 => vmap1(vregs, dst, src, mask, |x| b32(-f32v(x))),
            K::F64 => vmap1(vregs, dst, src, mask, |x| b64(-f64v(x))),
            K::I32 => vmap1(vregs, dst, src, mask, |x| bi32(-i32v(x))),
            K::Bool => vmap1(vregs, dst, src, mask, |x| bi32(-((x != 0) as i32))),
        },
        Op::Not { dst, src, k } => vmap1(vregs, dst, src, mask, |x| bb(!truthy(k, x))),
        Op::Bin { dst, a, b, op, k } => match (k, op) {
            (K::F32, BinOp::Add) => vmap2(vregs, dst, a, b, mask, |x, y| b32(f32v(x) + f32v(y))),
            (K::F32, BinOp::Sub) => vmap2(vregs, dst, a, b, mask, |x, y| b32(f32v(x) - f32v(y))),
            (K::F32, BinOp::Mul) => vmap2(vregs, dst, a, b, mask, |x, y| b32(f32v(x) * f32v(y))),
            (K::F64, BinOp::Add) => vmap2(vregs, dst, a, b, mask, |x, y| b64(f64v(x) + f64v(y))),
            (K::F64, BinOp::Sub) => vmap2(vregs, dst, a, b, mask, |x, y| b64(f64v(x) - f64v(y))),
            (K::F64, BinOp::Mul) => vmap2(vregs, dst, a, b, mask, |x, y| b64(f64v(x) * f64v(y))),
            (K::I32, BinOp::Add) => {
                vmap2(vregs, dst, a, b, mask, |x, y| bi32(i32v(x).wrapping_add(i32v(y))))
            }
            (K::I32, BinOp::Sub) => {
                vmap2(vregs, dst, a, b, mask, |x, y| bi32(i32v(x).wrapping_sub(i32v(y))))
            }
            (K::I32, BinOp::Mul) => {
                vmap2(vregs, dst, a, b, mask, |x, y| bi32(i32v(x).wrapping_mul(i32v(y))))
            }
            (K::I32, BinOp::Lt) => vmap2(vregs, dst, a, b, mask, |x, y| bb(i32v(x) < i32v(y))),
            (K::I32, BinOp::Le) => vmap2(vregs, dst, a, b, mask, |x, y| bb(i32v(x) <= i32v(y))),
            (K::I32, BinOp::Gt) => vmap2(vregs, dst, a, b, mask, |x, y| bb(i32v(x) > i32v(y))),
            (K::I32, BinOp::Ge) => vmap2(vregs, dst, a, b, mask, |x, y| bb(i32v(x) >= i32v(y))),
            (K::I32, BinOp::Eq) => vmap2(vregs, dst, a, b, mask, |x, y| bb(i32v(x) == i32v(y))),
            (K::I32, BinOp::Ne) => vmap2(vregs, dst, a, b, mask, |x, y| bb(i32v(x) != i32v(y))),
            (K::F32, BinOp::Lt) => vmap2(vregs, dst, a, b, mask, |x, y| bb(f32v(x) < f32v(y))),
            (K::F32, BinOp::Le) => vmap2(vregs, dst, a, b, mask, |x, y| bb(f32v(x) <= f32v(y))),
            (K::F32, BinOp::Gt) => vmap2(vregs, dst, a, b, mask, |x, y| bb(f32v(x) > f32v(y))),
            (K::F32, BinOp::Ge) => vmap2(vregs, dst, a, b, mask, |x, y| bb(f32v(x) >= f32v(y))),
            _ => vmap2(vregs, dst, a, b, mask, |x, y| bin_bits(op, k, x, y)),
        },
        Op::Logic { dst, a, b, ka, kb, or } => match (ka, kb, or) {
            (K::Bool, K::Bool, false) => vmap2(vregs, dst, a, b, mask, |x, y| bb(x != 0 && y != 0)),
            (K::Bool, K::Bool, true) => vmap2(vregs, dst, a, b, mask, |x, y| bb(x != 0 || y != 0)),
            _ => vmap2(vregs, dst, a, b, mask, |x, y| {
                let (p, q) = (truthy(ka, x), truthy(kb, y));
                bb(if or { p || q } else { p && q })
            }),
        },
        Op::MinMax { dst, a, b, k, max } => match k {
            K::F32 => vmap2(vregs, dst, a, b, mask, |x, y| {
                let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                b32((if max { p.max(q) } else { p.min(q) }) as f32)
            }),
            K::F64 => vmap2(vregs, dst, a, b, mask, |x, y| {
                let (p, q) = (f64v(x), f64v(y));
                b64(if max { p.max(q) } else { p.min(q) })
            }),
            K::I32 => vmap2(vregs, dst, a, b, mask, |x, y| {
                let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                bi32((if max { p.max(q) } else { p.min(q) }) as i32)
            }),
            K::Bool => unreachable!("min/max never promotes to bool"),
        },
        Op::Intr1 { dst, src, intr, k } => match k {
            K::F32 => vmap1(vregs, dst, src, mask, |x| b32(intr1_f32(intr, f32v(x)))),
            _ => vmap1(vregs, dst, src, mask, |x| b64(intr1_f64(intr, f64v(x)))),
        },
        Op::Sel { dst, cond, ck, t, f } => match ck {
            K::Bool => for_mask!(mask, l, {
                let pick = if vg(vregs, cond, l) != 0 { t } else { f };
                vs(vregs, dst, l, vg(vregs, pick, l));
            }),
            _ => for_mask!(mask, l, {
                let pick = if truthy(ck, vg(vregs, cond, l)) { t } else { f };
                vs(vregs, dst, l, vg(vregs, pick, l));
            }),
        },
        Op::LdG { dst, buf, idx, site, constant } => {
            let b = w.bufs[buf as usize].expect("buffer bound");
            let n = mask.count_ones() as u64;
            let eb = b.elem_bytes() as u64;
            if constant {
                w.counters.loads_constant += n;
            } else {
                w.counters.loads_global += n;
                w.counters.bytes_loaded += eb * n;
            }
            let check = checked.get(site as usize).copied().unwrap_or(true);
            let len = b.len();
            let mut ixs = [0i64; WARP];
            for_mask!(mask, l, {
                ixs[l] = i64v(vg(vregs, idx, l));
            });
            if check || cfg!(debug_assertions) {
                for_mask!(mask, l, {
                    let i = ixs[l];
                    assert!(
                        i >= 0 && (i as usize) < len,
                        "load out of bounds: param {buf}[{i}] (len {len})"
                    );
                });
            }
            shadow_gather(b, &ixs, mask, &w.san, buf as usize, site, "vector");
            let mut vals = [0u64; WARP];
            gather_lanes(b, &ixs, mask, &mut vals);
            for_mask!(mask, l, {
                vs(vregs, dst, l, vals[l]);
            });
        }
        Op::StG { buf, idx, val, vk, site } => {
            let b = w.bufs[buf as usize].expect("buffer bound");
            let eb = b.elem_bytes() as u64;
            let n = mask.count_ones() as u64;
            w.counters.stores_global += n;
            w.counters.bytes_stored += eb * n;
            let check = checked.get(site as usize).copied().unwrap_or(true);
            let len = b.len();
            let mut ixs = [0i64; WARP];
            for_mask!(mask, l, {
                ixs[l] = i64v(vg(vregs, idx, l));
            });
            if check || cfg!(debug_assertions) {
                for_mask!(mask, l, {
                    let i = ixs[l];
                    assert!(
                        i >= 0 && (i as usize) < len,
                        "store out of bounds: param {buf}[{i}] (len {len})"
                    );
                });
            }
            shadow_scatter(b, &ixs, mask);
            scatter_lanes(b, vk, &ixs, mask, vregs, val);
        }
        Op::LdP { dst, arr, idx } => {
            for_mask!(mask, l, {
                let i = i64v(vg(vregs, idx, l)) as usize;
                vs(vregs, dst, l, lane_privs[l][arr as usize][i]);
            });
        }
        Op::StP { arr, idx, val, vk, k } => {
            for_mask!(mask, l, {
                let i = i64v(vg(vregs, idx, l)) as usize;
                lane_privs[l][arr as usize][i] = cast_bits(vk, k, vg(vregs, val, l));
            });
        }
        Op::DeclPriv { arr, len } => {
            for_mask!(mask, l, {
                let n = i64v(vg(vregs, len, l)) as usize;
                let p = &mut lane_privs[l][arr as usize];
                p.clear();
                p.resize(n, 0);
            });
        }
        Op::Flops { n } => {
            w.counters.flops += n as u64 * mask.count_ones() as u64;
        }
        Op::LdL { .. } | Op::StL { .. } | Op::DeclLocal { .. } => {
            unreachable!("local-memory tapes never lower to fused form")
        }
        Op::Jmp { .. } | Op::Jz { .. } | Op::JgeI64 { .. } | Op::Ret | Op::Halt => {
            unreachable!("control flow is a block terminator, never a block op")
        }
    }
}

/// Outcome of resolving a conditional branch for the active mask.
enum Branch {
    /// Continue vectorized execution at this pc with this mask.
    Goto(usize, u32),
    /// The enclosing region is finished: this mask of lanes (possibly
    /// empty) is parked at its `until` pc; the rest returned.
    Reached(u32),
}

/// One warp's execution state: the pieces [`WarpExec::run`] threads through
/// its reconvergence recursion.
struct WarpExec<'e, 'w> {
    c: &'e Compiled,
    vregs: &'e mut [u64],
    lane_privs: &'e mut [Vec<Vec<u64>>],
    w: &'e mut WarpCtx<'w>,
    /// Scalar register file for the per-lane bailout; sized on first use.
    scratch: Vec<u64>,
    diverged: bool,
    /// Profiled runs only: the opcode whose warp-wide dispatch is open and
    /// its start time. A *field* (not a `run` local) so reconvergence
    /// recursion attributes seamlessly: a child region's first iteration
    /// closes the parent's branch-op span, and nothing is double-counted.
    pending: Option<(usize, Instant)>,
}

impl WarpExec<'_, '_> {
    /// Closes the open per-op attribution span, if any (profiled runs).
    #[inline]
    fn flush_pending(&mut self) {
        flush_pending(&mut self.w.prof, &mut self.pending);
    }

    /// Executes ops from `pc` until the active lanes reach the
    /// reconvergence pc `until` (`c.ops.len()` means "run to `Ret`/`Halt`").
    /// Returns the mask of lanes parked at `until`, without executing it;
    /// lanes that hit `Ret`/`Halt` first are dropped. `mask` starts
    /// non-empty. `PROF` compiles per-opcode time attribution in; see
    /// [`exec_scalar`].
    fn run<const PROF: bool>(
        &mut self,
        mut pc: usize,
        until: usize,
        mut mask: u32,
        depth: u32,
    ) -> u32 {
        let ops = &self.c.ops[..];
        loop {
            if pc == until {
                return mask;
            }
            if PROF {
                let now = Instant::now();
                if let (Some((idx, start)), Some(p)) =
                    (self.pending.take(), self.w.prof.as_deref_mut())
                {
                    p.add(idx, now - start);
                }
                // SAFETY: as for the fetch below — `pc` is in bounds.
                self.pending = Some((op_index(unsafe { ops.get_unchecked(pc) }), now));
            }
            let vregs = &mut *self.vregs;
            // SAFETY: same induction as `exec_phase` — `validate` bounds
            // every jump target and guarantees a trailing terminator, and
            // `until` is checked before the fetch.
            match *unsafe { ops.get_unchecked(pc) } {
                Op::Const { dst, bits } => {
                    for_lanes!(mask, l, {
                        vs(vregs, dst, l, bits);
                    });
                }
                Op::Gid { dst, dim } => {
                    for_lanes!(mask, l, {
                        vs(vregs, dst, l, bi32(self.w.gids[l][dim as usize] as i32));
                    });
                }
                Op::Gsz { dst, dim } => {
                    let bits = bi32(self.w.gsize[dim as usize] as i32);
                    for_lanes!(mask, l, {
                        vs(vregs, dst, l, bits);
                    });
                }
                // Flat dispatch: local id 0, local size 1, group = warp id.
                Op::Lid { dst, .. } => {
                    for_lanes!(mask, l, {
                        vs(vregs, dst, l, bi32(0));
                    });
                }
                Op::Lsz { dst, .. } => {
                    for_lanes!(mask, l, {
                        vs(vregs, dst, l, bi32(1));
                    });
                }
                Op::Grp { dst, dim } => {
                    for_lanes!(mask, l, {
                        let g = if dim == 0 { (self.w.items[l] / WARP as u64) as i32 } else { 0 };
                        vs(vregs, dst, l, bi32(g));
                    });
                }
                Op::Mov { dst, src } => vmap1(vregs, dst, src, mask, |x| x),
                Op::Cast { dst, src, from, to } => {
                    vmap1(vregs, dst, src, mask, |x| cast_bits(from, to, x))
                }
                Op::AsI64 { dst, src, from } => {
                    vmap1(vregs, dst, src, mask, |x| bi64(to_i64(from, x)))
                }
                Op::MaxOne { dst } => vmap1(vregs, dst, dst, mask, |x| bi64(i64v(x).max(1))),
                Op::I64ToI32 { dst, src } => vmap1(vregs, dst, src, mask, |x| bi32(i64v(x) as i32)),
                Op::AddI64 { dst, a, b } => {
                    vmap2(vregs, dst, a, b, mask, |x, y| bi64(i64v(x) + i64v(y)))
                }
                Op::JgeI64 { a, b, target } => {
                    let mut jmask = 0u32;
                    for_lanes!(mask, l, {
                        if i64v(vg(vregs, a, l)) >= i64v(vg(vregs, b, l)) {
                            jmask |= 1 << l;
                        }
                    });
                    match self.branch::<PROF>(pc, target as usize, jmask, mask, until, depth) {
                        Branch::Goto(p, m) => {
                            pc = p;
                            mask = m;
                            continue;
                        }
                        Branch::Reached(m) => return m,
                    }
                }
                Op::Neg { dst, src, k } => match k {
                    K::F32 => vmap1(vregs, dst, src, mask, |x| b32(-f32v(x))),
                    K::F64 => vmap1(vregs, dst, src, mask, |x| b64(-f64v(x))),
                    K::I32 => vmap1(vregs, dst, src, mask, |x| bi32(-i32v(x))),
                    K::Bool => vmap1(vregs, dst, src, mask, |x| bi32(-((x != 0) as i32))),
                },
                Op::Not { dst, src, k } => vmap1(vregs, dst, src, mask, |x| bb(!truthy(k, x))),
                // The hot acoustics arithmetic gets dedicated lane loops
                // (simple enough for LLVM to autovectorize); everything else
                // goes through the shared scalar helper with (op, k)
                // loop-invariant.
                Op::Bin { dst, a, b, op, k } => match (k, op) {
                    (K::F32, BinOp::Add) => {
                        vmap2(vregs, dst, a, b, mask, |x, y| b32(f32v(x) + f32v(y)))
                    }
                    (K::F32, BinOp::Sub) => {
                        vmap2(vregs, dst, a, b, mask, |x, y| b32(f32v(x) - f32v(y)))
                    }
                    (K::F32, BinOp::Mul) => {
                        vmap2(vregs, dst, a, b, mask, |x, y| b32(f32v(x) * f32v(y)))
                    }
                    (K::F64, BinOp::Add) => {
                        vmap2(vregs, dst, a, b, mask, |x, y| b64(f64v(x) + f64v(y)))
                    }
                    (K::F64, BinOp::Sub) => {
                        vmap2(vregs, dst, a, b, mask, |x, y| b64(f64v(x) - f64v(y)))
                    }
                    (K::F64, BinOp::Mul) => {
                        vmap2(vregs, dst, a, b, mask, |x, y| b64(f64v(x) * f64v(y)))
                    }
                    _ => vmap2(vregs, dst, a, b, mask, |x, y| bin_bits(op, k, x, y)),
                },
                Op::Logic { dst, a, b, ka, kb, or } => vmap2(vregs, dst, a, b, mask, |x, y| {
                    let (p, q) = (truthy(ka, x), truthy(kb, y));
                    bb(if or { p || q } else { p && q })
                }),
                Op::MinMax { dst, a, b, k, max } => match k {
                    K::F32 => vmap2(vregs, dst, a, b, mask, |x, y| {
                        let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                        b32((if max { p.max(q) } else { p.min(q) }) as f32)
                    }),
                    K::F64 => vmap2(vregs, dst, a, b, mask, |x, y| {
                        let (p, q) = (f64v(x), f64v(y));
                        b64(if max { p.max(q) } else { p.min(q) })
                    }),
                    K::I32 => vmap2(vregs, dst, a, b, mask, |x, y| {
                        let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                        bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                    }),
                    K::Bool => unreachable!("min/max never promotes to bool"),
                },
                Op::Intr1 { dst, src, intr, k } => match k {
                    K::F32 => vmap1(vregs, dst, src, mask, |x| b32(intr1_f32(intr, f32v(x)))),
                    _ => vmap1(vregs, dst, src, mask, |x| b64(intr1_f64(intr, f64v(x)))),
                },
                Op::Sel { dst, cond, ck, t, f } => {
                    if mask == FULL_MASK {
                        for l in 0..WARP {
                            let pick = if truthy(ck, vg(vregs, cond, l)) { t } else { f };
                            vs(vregs, dst, l, vg(vregs, pick, l));
                        }
                    } else if let Some((lo, hi)) = contiguous(mask) {
                        for l in lo..hi {
                            let pick = if truthy(ck, vg(vregs, cond, l)) { t } else { f };
                            vs(vregs, dst, l, vg(vregs, pick, l));
                        }
                    } else {
                        for_lanes!(mask, l, {
                            let pick = if truthy(ck, vg(vregs, cond, l)) { t } else { f };
                            vs(vregs, dst, l, vg(vregs, pick, l));
                        });
                    }
                }
                Op::LdG { dst, buf, idx, site, constant } => {
                    let b = self.w.bufs[buf as usize].expect("buffer bound");
                    let n = mask.count_ones() as u64;
                    let eb = b.elem_bytes() as u64;
                    if constant {
                        self.w.counters.loads_constant += n;
                    } else {
                        self.w.counters.loads_global += n;
                        self.w.counters.bytes_loaded += eb * n;
                    }
                    let push_trace = self.w.trace_on && !constant;
                    if let Some(sh) = b.shadow() {
                        for_lanes!(mask, l, {
                            let i = i64v(vg(vregs, idx, l));
                            if let Some(kind) = sh.classify_load(i as usize) {
                                crate::sanitize::report_load_fault(
                                    kind,
                                    self.w.san.as_ref(),
                                    buf as usize,
                                    site,
                                    i as u64,
                                    "vector",
                                );
                            }
                        });
                    }
                    // SAFETY (both loops): launch contract — no concurrent
                    // writer of this element (same contract as the scalar
                    // interpreters).
                    if let (false, Some((lo, hi))) = (push_trace, contiguous(mask)) {
                        for l in lo..hi {
                            let i = i64v(vg(vregs, idx, l));
                            debug_assert!(
                                i >= 0 && (i as usize) < b.len(),
                                "load out of bounds: param {buf}[{i}] (len {})",
                                b.len()
                            );
                            vs(vregs, dst, l, unsafe { b.get_bits(i as usize) });
                        }
                    } else {
                        for_lanes!(mask, l, {
                            let i = i64v(vg(vregs, idx, l));
                            if push_trace {
                                self.w.traces[l].push((
                                    site,
                                    0,
                                    ((buf as u64) << 40) | ((i as u64) * eb),
                                ));
                            }
                            debug_assert!(
                                i >= 0 && (i as usize) < b.len(),
                                "load out of bounds: param {buf}[{i}] (len {})",
                                b.len()
                            );
                            vs(vregs, dst, l, unsafe { b.get_bits(i as usize) });
                        });
                    }
                }
                Op::StG { buf, idx, val, vk, site } => {
                    let b = self.w.bufs[buf as usize].expect("buffer bound");
                    let eb = b.elem_bytes() as u64;
                    let n = mask.count_ones() as u64;
                    self.w.counters.stores_global += n;
                    self.w.counters.bytes_stored += eb * n;
                    if let Some(sh) = b.shadow() {
                        for_lanes!(mask, l, {
                            sh.note_store(i64v(vg(vregs, idx, l)) as usize);
                        });
                    }
                    // SAFETY (both loops): launch contract — element
                    // disjointness across work-items (verified by
                    // race-check mode).
                    if let (false, false, Some((lo, hi))) =
                        (self.w.trace_on, self.w.race_on, contiguous(mask))
                    {
                        for l in lo..hi {
                            let i = i64v(vg(vregs, idx, l));
                            debug_assert!(
                                i >= 0 && (i as usize) < b.len(),
                                "store out of bounds: param {buf}[{i}] (len {})",
                                b.len()
                            );
                            unsafe { b.set(i as usize, bits_value(vk, vg(vregs, val, l))) };
                        }
                    } else {
                        for_lanes!(mask, l, {
                            let i = i64v(vg(vregs, idx, l));
                            if self.w.trace_on {
                                self.w.traces[l].push((
                                    site,
                                    0,
                                    ((buf as u64) << 40) | ((i as u64) * eb),
                                ));
                            }
                            if self.w.race_on {
                                self.w.writes.push((buf as u32, i as u64, self.w.items[l], site));
                            }
                            debug_assert!(
                                i >= 0 && (i as usize) < b.len(),
                                "store out of bounds: param {buf}[{i}] (len {})",
                                b.len()
                            );
                            unsafe { b.set(i as usize, bits_value(vk, vg(vregs, val, l))) };
                        });
                    }
                }
                Op::LdP { dst, arr, idx } => {
                    for_lanes!(mask, l, {
                        let i = i64v(vg(vregs, idx, l)) as usize;
                        vs(vregs, dst, l, self.lane_privs[l][arr as usize][i]);
                    });
                }
                Op::StP { arr, idx, val, vk, k } => {
                    for_lanes!(mask, l, {
                        let i = i64v(vg(vregs, idx, l)) as usize;
                        self.lane_privs[l][arr as usize][i] = cast_bits(vk, k, vg(vregs, val, l));
                    });
                }
                Op::LdL { .. } | Op::StL { .. } | Op::DeclLocal { .. } => {
                    unreachable!(
                        "local-memory op in flat vector dispatch (grouped launches fall back)"
                    )
                }
                Op::DeclPriv { arr, len } => {
                    for_lanes!(mask, l, {
                        let n = i64v(vg(vregs, len, l)) as usize;
                        let p = &mut self.lane_privs[l][arr as usize];
                        p.clear();
                        p.resize(n, 0);
                    });
                }
                Op::Flops { n } => {
                    self.w.counters.flops += n as u64 * mask.count_ones() as u64;
                }
                Op::Jmp { target } => {
                    pc = target as usize;
                    continue;
                }
                Op::Jz { cond, k, target } => {
                    let mut jmask = 0u32;
                    for_lanes!(mask, l, {
                        if !truthy(k, vg(vregs, cond, l)) {
                            jmask |= 1 << l;
                        }
                    });
                    match self.branch::<PROF>(pc, target as usize, jmask, mask, until, depth) {
                        Branch::Goto(p, m) => {
                            pc = p;
                            mask = m;
                            continue;
                        }
                        Branch::Reached(m) => return m,
                    }
                }
                Op::Ret | Op::Halt => return 0,
            }
            pc += 1;
        }
    }

    /// Resolves the conditional branch at `pc`: `jmask` (⊆ `mask`) holds the
    /// lanes that take the jump to `target`. Uniform masks are a single
    /// jump. Divergent masks execute both sides under complementary masks
    /// and reconverge at the branch's join (its immediate postdominator);
    /// when no join is usable the lanes finish on the bounded scalar
    /// interpreter instead, parked at the enclosing region's `until`.
    fn branch<const PROF: bool>(
        &mut self,
        pc: usize,
        target: usize,
        jmask: u32,
        mask: u32,
        until: usize,
        depth: u32,
    ) -> Branch {
        if jmask == 0 {
            return Branch::Goto(pc + 1, mask);
        }
        if jmask == mask {
            return Branch::Goto(target, mask);
        }
        self.diverged = true;
        let join = self.c.joins[pc];
        if join != NO_JOIN && depth < MAX_DIVERGE_DEPTH {
            let j = join as usize;
            let fell = self.run::<PROF>(pc + 1, j, mask & !jmask, depth + 1);
            let jumped = self.run::<PROF>(target, j, jmask, depth + 1);
            let m = fell | jumped;
            // The join may lie past `until` when one arm returns early (the
            // sides then ran to `Ret` inside the recursion): no lane is left
            // to park.
            if m == 0 {
                return Branch::Reached(0);
            }
            return Branch::Goto(j, m);
        }
        if PROF {
            // The scalar bailout attributes per op itself; close the branch
            // op's span first so its time is not double-counted.
            self.flush_pending();
        }
        Branch::Reached(self.scalar_lanes(pc, until, mask))
    }

    /// Performance valve for branches without a usable join: finishes each
    /// lane of `mask` on the bounded scalar interpreter, resumed *at* the
    /// divergent branch (whose condition re-reads lane registers — a pure
    /// operation, so nothing is skipped or doubled) and stopped at `until`.
    /// Returns the lanes that reached `until`; their register columns are
    /// copied back so vectorized execution resumes seamlessly.
    fn scalar_lanes(&mut self, pc: usize, until: usize, mask: u32) -> u32 {
        let WarpExec { c, vregs, lane_privs, w, scratch, .. } = self;
        let nregs = c.nregs;
        if scratch.len() < nregs {
            scratch.resize(nregs, 0);
        }
        let mut reached = 0u32;
        for_lanes!(mask, l, {
            for r in 0..nregs {
                scratch[r] = vregs[r * WARP + l];
            }
            let no_locals: &mut [Vec<u64>] = &mut [];
            let mut t = TapeCtx {
                bufs: w.bufs,
                gsize: w.gsize,
                counters: &mut *w.counters,
                trace: &mut w.traces[l],
                trace_on: w.trace_on,
                writes: &mut *w.writes,
                race_on: w.race_on,
                item: w.items[l],
                gid: w.gids[l],
                lid: 0,
                group: (w.items[l] / WARP as u64) as usize,
                lsize: 1,
                prof: w.prof.as_deref_mut(),
                san: w.san,
            };
            let lane_run = if t.prof.is_some() {
                exec_scalar::<true, true>(
                    c,
                    pc,
                    until,
                    scratch,
                    &mut lane_privs[l],
                    no_locals,
                    &mut t,
                )
            } else {
                exec_scalar::<true, false>(
                    c,
                    pc,
                    until,
                    scratch,
                    &mut lane_privs[l],
                    no_locals,
                    &mut t,
                )
            };
            if lane_run == ScalarRun::Until {
                reached |= 1 << l;
                for r in 0..nregs {
                    vregs[r * WARP + l] = scratch[r];
                }
            }
        });
        reached
    }
}

#[inline(always)]
fn intr1_f32(i: Intrinsic, x: f32) -> f32 {
    match i {
        Intrinsic::Sqrt => x.sqrt(),
        Intrinsic::Fabs => x.abs(),
        Intrinsic::Exp => x.exp(),
        Intrinsic::Log => x.ln(),
        Intrinsic::Sin => x.sin(),
        Intrinsic::Cos => x.cos(),
        _ => unreachable!("not a unary intrinsic"),
    }
}

#[inline(always)]
fn intr1_f64(i: Intrinsic, x: f64) -> f64 {
    match i {
        Intrinsic::Sqrt => x.sqrt(),
        Intrinsic::Fabs => x.abs(),
        Intrinsic::Exp => x.exp(),
        Intrinsic::Log => x.ln(),
        Intrinsic::Sin => x.sin(),
        Intrinsic::Cos => x.cos(),
        _ => unreachable!("not a unary intrinsic"),
    }
}

#[inline(always)]
fn bin_bits(op: BinOp, k: K, x: u64, y: u64) -> u64 {
    match k {
        K::F32 => {
            let (a, b) = (f32v(x), f32v(y));
            match op {
                BinOp::Add => b32(a + b),
                BinOp::Sub => b32(a - b),
                BinOp::Mul => b32(a * b),
                BinOp::Div => b32(a / b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::Rem | BinOp::And | BinOp::Or => unreachable!("not monomorphised to f32"),
            }
        }
        K::F64 => {
            let (a, b) = (f64v(x), f64v(y));
            match op {
                BinOp::Add => b64(a + b),
                BinOp::Sub => b64(a - b),
                BinOp::Mul => b64(a * b),
                BinOp::Div => b64(a / b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::Rem | BinOp::And | BinOp::Or => unreachable!("not monomorphised to f64"),
            }
        }
        K::I32 => {
            let (a, b) = (i32v(x), i32v(y));
            match op {
                BinOp::Add => bi32(a.wrapping_add(b)),
                BinOp::Sub => bi32(a.wrapping_sub(b)),
                BinOp::Mul => bi32(a.wrapping_mul(b)),
                BinOp::Div => bi32(a / b),
                BinOp::Rem => bi32(a % b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::And | BinOp::Or => unreachable!("logic ops use Op::Logic"),
            }
        }
        K::Bool => unreachable!("binary ops never monomorphise to bool"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufData;
    use crate::buffer::SharedBuf;
    use crate::exec::{launch_wg_engine, prepare, ArgBind, Engine, ExecMode};
    use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};

    /// out[gid] = x[gid] * scale + bias-ish expression, with `expr` as the
    /// stored value; single f32 input/output pair plus one scalar `a`.
    fn unary_kernel(name: &str, expr: KExpr) -> Kernel {
        Kernel {
            name: name.into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("a", ScalarKind::F32),
            ],
            body: vec![KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: expr,
            }],
            work_dim: 1,
        }
        .resolve_real(ScalarKind::F32)
    }

    /// Launches on the differential engine (tree vs tape bit-equality is
    /// asserted inside) and returns the output buffer.
    fn run_diff(k: &Kernel, n: usize, a: f32) -> Vec<f64> {
        let prep = prepare(k).unwrap();
        assert!(prep.has_tape(), "kernel should compile to a tape");
        let x = SharedBuf::new(BufData::from((0..n).map(|i| i as f32).collect::<Vec<_>>()));
        let out = SharedBuf::new(BufData::from(vec![0.0f32; n]));
        launch_wg_engine(
            &prep,
            &[ArgBind::Buf(&x), ArgBind::Buf(&out), ArgBind::Val(Value::F32(a))],
            &[n],
            None,
            ExecMode::Model { sample_stride: 1 },
            true,
            128,
            Engine::Differential,
        )
        .unwrap();
        out.data().to_f64_vec()
    }

    fn tape_of(k: &Kernel) -> Compiled {
        prepare(k).unwrap().tape.take().expect("tape")
    }

    #[test]
    fn constant_expressions_fold_to_a_single_const() {
        // (2 + 3) is constant: the Add folds, and the folded constant (an
        // operand-free Const) is then hoisted into the warp prelude.
        let k = unary_kernel(
            "fold5",
            KExpr::load(MemRef::Param(0), KExpr::GlobalId(0))
                * (KExpr::real(2.0) + KExpr::real(3.0)),
        );
        let t = tape_of(&k);
        assert!(t.optimized_ops > 0);
        let five = (5.0f32).to_bits() as u64;
        assert!(
            t.pre.iter().any(|op| matches!(op, Op::Const { bits, .. } if *bits == five)),
            "folded 5.0 should sit in the prelude: {:?}",
            t.pre
        );
        let out = run_diff(&k, 64, 0.0);
        assert_eq!(out[7], 7.0 * 5.0);
    }

    #[test]
    fn scalar_invariant_ops_hoist_into_the_prelude() {
        // a*a depends only on a never-written scalar slot: computed once
        // per register file instead of once per item, even though it sits
        // in the middle of the per-item expression.
        let k = unary_kernel(
            "hoistsq",
            KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) + KExpr::var("a") * KExpr::var("a"),
        );
        let t = tape_of(&k);
        assert!(
            t.pre.iter().any(|op| matches!(op, Op::Bin { op: BinOp::Mul, .. })),
            "a*a should be hoisted: {:?}",
            t.pre
        );
        let out = run_diff(&k, 64, 3.0);
        assert_eq!(out[11], 11.0 + 9.0);
    }

    #[test]
    fn repeated_gid_reads_dedupe_into_the_item_prelude() {
        // GlobalId(0) appears three times; codegen re-emits the read at
        // each use site, the context-CSE pass leaves exactly one copy,
        // executed once per item.
        let k = unary_kernel(
            "gidcse",
            KExpr::load(MemRef::Param(0), KExpr::GlobalId(0))
                + KExpr::Cast(
                    ScalarKind::F32,
                    Box::new(KExpr::GlobalId(0) * KExpr::int(2) + KExpr::GlobalId(0)),
                ),
        );
        let t = tape_of(&k);
        let in_item_pre = t.item_pre.iter().filter(|op| matches!(op, Op::Gid { .. })).count();
        let in_tape = t.ops.iter().filter(|op| matches!(op, Op::Gid { .. })).count();
        assert_eq!(in_item_pre, 1, "one canonical Gid: {:?}", t.item_pre);
        assert_eq!(in_tape, 0, "all in-tape Gid reads deduped");
        let out = run_diff(&k, 64, 0.0);
        assert_eq!(out[9], 9.0 + (9 * 2 + 9) as f64);
    }

    #[test]
    fn optimizer_preserves_counters_and_transactions() {
        // The differential engine compares values, counters, and modeled
        // transaction bytes bit-for-bit between the optimized tape and the
        // unoptimized tree-walker — on a kernel exercising fold + hoist +
        // context CSE together.
        let k = unary_kernel(
            "alltogether",
            (KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) + KExpr::var("a") * KExpr::var("a"))
                * (KExpr::real(1.0) + KExpr::real(0.5))
                + KExpr::Cast(ScalarKind::F32, Box::new(KExpr::GlobalId(0))),
        );
        let out = run_diff(&k, 200, 2.0);
        assert_eq!(out[13], (13.0 + 4.0) * 1.5 + 13.0);
    }

    #[test]
    fn validated_tapes_keep_terminators_and_bounds() {
        let k = unary_kernel("vcheck", KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)));
        let t = tape_of(&k);
        assert!(validate(&t), "fresh tapes must pass validation");
        let mut broken = t;
        broken.ops.push(Op::Mov { dst: broken.nregs as R, src: 0 });
        assert!(!validate(&broken), "out-of-range register must be rejected");
    }

    /// `s = 0.5; if (gid % 2 == 0) s = 2 else s = 3; out[gid] = x[gid] * s`
    /// — a branch diamond whose arms are pure constant assigns, the shape
    /// the FI kernel's `one_if` selects compile to.
    fn select_kernel(name: &str) -> Kernel {
        Kernel {
            name: name.into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("a", ScalarKind::F32),
            ],
            body: vec![
                KStmt::DeclScalar {
                    name: "s".into(),
                    kind: ScalarKind::F32,
                    init: Some(KExpr::real(0.5)),
                },
                KStmt::If {
                    cond: KExpr::bin(
                        BinOp::Eq,
                        KExpr::bin(BinOp::Rem, KExpr::GlobalId(0), KExpr::int(2)),
                        KExpr::int(0),
                    ),
                    then_: vec![KStmt::Assign { name: "s".into(), value: KExpr::real(2.0) }],
                    else_: vec![KStmt::Assign { name: "s".into(), value: KExpr::real(3.0) }],
                },
                KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::var("s"),
                },
            ],
            work_dim: 1,
        }
        .resolve_real(ScalarKind::F32)
    }

    #[test]
    fn pure_branch_arms_if_convert_to_selects() {
        let k = select_kernel("ifconv");
        let t = tape_of(&k);
        let jumps = t.ops.iter().filter(|op| matches!(op, Op::Jz { .. })).count();
        let sels =
            t.ops.iter().chain(t.item_pre.iter()).filter(|op| matches!(op, Op::Sel { .. })).count();
        assert_eq!(jumps, 0, "pure diamond must lose its branch: {:?}", t.ops);
        assert!(sels >= 1, "live-out must be selected: {:?}", t.ops);
        // The converted tape stays bit-identical to the tree oracle...
        let out = run_diff(&k, 64, 0.0);
        assert_eq!(out[8], 8.0 * 2.0);
        assert_eq!(out[9], 9.0 * 3.0);
        // ...and the lane-dependent condition no longer diverges warps.
        let prep = prepare(&k).unwrap();
        let x = SharedBuf::new(BufData::from(vec![1.0f32; 64]));
        let out = SharedBuf::new(BufData::from(vec![0.0f32; 64]));
        let stats = launch_wg_engine(
            &prep,
            &[ArgBind::Buf(&x), ArgBind::Buf(&out), ArgBind::Val(Value::F32(0.0))],
            &[64],
            None,
            ExecMode::Fast,
            true,
            128,
            Engine::Vector,
        )
        .unwrap();
        assert_eq!(stats.divergent_warps, 0, "selects execute fully converged");
    }

    #[test]
    fn store_bearing_branch_arms_keep_their_jumps() {
        // Same diamond shape, but the arms store to global memory: stores
        // are not speculatable, so the branch must survive if-conversion.
        let k = Kernel {
            name: "ifkeep".into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("a", ScalarKind::F32),
            ],
            body: vec![KStmt::If {
                cond: KExpr::bin(
                    BinOp::Eq,
                    KExpr::bin(BinOp::Rem, KExpr::GlobalId(0), KExpr::int(2)),
                    KExpr::int(0),
                ),
                then_: vec![KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)),
                }],
                else_: vec![KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::var("a"),
                }],
            }],
            work_dim: 1,
        }
        .resolve_real(ScalarKind::F32);
        let t = tape_of(&k);
        let jumps = t.ops.iter().filter(|op| matches!(op, Op::Jz { .. })).count();
        assert!(jumps >= 1, "memory arms must keep the branch: {:?}", t.ops);
        let out = run_diff(&k, 64, 7.0);
        assert_eq!(out[6], 6.0);
        assert_eq!(out[7], 7.0);
    }
}

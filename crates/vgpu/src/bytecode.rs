//! Flat bytecode compilation of prepared kernels.
//!
//! The tree-walking interpreter in [`crate::exec`] dispatches on boxed
//! [`PExpr`] nodes and `Value` enums for every operation of every work-item.
//! This module flattens a [`Prepared`] kernel once, at compile time, into a
//! linear tape of register-register [`Op`]s:
//!
//! * **Dense registers** — scalar slots map to the first `nslots` registers;
//!   expression temporaries extend the file. Registers hold raw 64-bit
//!   patterns whose interpretation ([`K`]) is fixed statically, so the inner
//!   loop never unwraps a `Value`.
//! * **Monomorphised arithmetic** — C-style promotion (`f64 > f32 > i32`,
//!   bool → i32) is resolved during compilation; every `Bin` op carries its
//!   promoted kind and operands are pre-cast by explicit `Cast` ops. The
//!   arithmetic therefore reproduces the tree-walker (and a native OpenCL
//!   kernel) bit for bit.
//! * **Static load/store sites** — `LdG`/`StG` ops carry the same site ids
//!   the tree-walker assigns, feeding the identical warp transaction model,
//!   counters, and race-check bookkeeping.
//! * **Static flop accounting** — flop counts are summed per basic block and
//!   materialised as single `Flops` ops, preserving the tree-walker's
//!   data-dependent totals (branches carry their own counts).
//!
//! Compilation is best-effort: kernels whose scalar kinds cannot be inferred
//! statically (e.g. a variable re-declared with a different kind on one
//! branch only) are rejected with an error and the launch falls back to the
//! tree-walker, which remains the reference oracle (see
//! [`crate::exec::Engine`]).

use crate::buffer::SharedBuf;
use crate::exec::{Counters, PExpr, PMem, PStmt, Prepared, WriteRec};
use lift::kast::MemSpace;
use lift::prelude::{BinOp, Intrinsic, ScalarKind, UnOp, Value};

/// Register index.
type R = u32;

/// Statically-known register kind (the bit-pattern interpretation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum K {
    /// f32 bits in the low 32.
    F32,
    /// f64 bits.
    F64,
    /// i32 bits in the low 32 (zero-extended).
    I32,
    /// 0 or 1.
    Bool,
}

impl K {
    fn is_float(self) -> bool {
        matches!(self, K::F32 | K::F64)
    }
}

fn kk(k: ScalarKind) -> Result<K, String> {
    match k {
        ScalarKind::F32 => Ok(K::F32),
        ScalarKind::F64 => Ok(K::F64),
        ScalarKind::I32 => Ok(K::I32),
        ScalarKind::Bool => Ok(K::Bool),
        ScalarKind::Real => Err("unresolved Real kind".into()),
    }
}

// ---- bit-pattern helpers (the register encoding) ----

#[inline(always)]
fn b32(x: f32) -> u64 {
    x.to_bits() as u64
}
#[inline(always)]
fn f32v(b: u64) -> f32 {
    f32::from_bits(b as u32)
}
#[inline(always)]
fn b64(x: f64) -> u64 {
    x.to_bits()
}
#[inline(always)]
fn f64v(b: u64) -> f64 {
    f64::from_bits(b)
}
#[inline(always)]
fn bi32(x: i32) -> u64 {
    x as u32 as u64
}
#[inline(always)]
fn i32v(b: u64) -> i32 {
    b as u32 as i32
}
#[inline(always)]
fn bi64(x: i64) -> u64 {
    x as u64
}
#[inline(always)]
fn i64v(b: u64) -> i64 {
    b as i64
}
#[inline(always)]
fn bb(x: bool) -> u64 {
    x as u64
}

/// `Value::as_f64` on a register.
#[inline(always)]
fn to_f64(k: K, b: u64) -> f64 {
    match k {
        K::F32 => f32v(b) as f64,
        K::F64 => f64v(b),
        K::I32 => i32v(b) as f64,
        K::Bool => (b != 0) as i32 as f64,
    }
}

/// `Value::as_i64` on a register.
#[inline(always)]
fn to_i64(k: K, b: u64) -> i64 {
    match k {
        K::F32 => f32v(b) as i64,
        K::F64 => f64v(b) as i64,
        K::I32 => i32v(b) as i64,
        K::Bool => b as i64,
    }
}

/// `Value::truthy` on a register.
#[inline(always)]
fn truthy(k: K, b: u64) -> bool {
    match k {
        K::F32 => f32v(b) != 0.0,
        K::F64 => f64v(b) != 0.0,
        K::I32 => i32v(b) != 0,
        K::Bool => b != 0,
    }
}

/// `Value::cast` on a register (C conversion semantics).
#[inline(always)]
fn cast_bits(from: K, to: K, b: u64) -> u64 {
    match to {
        K::F32 => b32(to_f64(from, b) as f32),
        K::F64 => b64(to_f64(from, b)),
        K::I32 => bi32(to_i64(from, b) as i32),
        K::Bool => bb(truthy(from, b)),
    }
}

fn value_bits(v: Value) -> (K, u64) {
    match v {
        Value::F32(x) => (K::F32, b32(x)),
        Value::F64(x) => (K::F64, b64(x)),
        Value::I32(x) => (K::I32, bi32(x)),
        Value::Bool(x) => (K::Bool, bb(x)),
    }
}

pub(crate) fn bits_of_value(v: Value) -> u64 {
    value_bits(v).1
}

fn bits_value(k: K, b: u64) -> Value {
    match k {
        K::F32 => Value::F32(f32v(b)),
        K::F64 => Value::F64(f64v(b)),
        K::I32 => Value::I32(i32v(b)),
        K::Bool => Value::Bool(b != 0),
    }
}

/// One tape instruction. Loop counters and load/store indices are internal
/// i64 registers (`AsI64` truncates like `Value::as_i64`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// dst = bits.
    Const { dst: R, bits: u64 },
    /// dst = get_global_id(dim) as i32 bits.
    Gid { dst: R, dim: u8 },
    /// dst = get_global_size(dim).
    Gsz { dst: R, dim: u8 },
    /// dst = get_local_id(dim).
    Lid { dst: R, dim: u8 },
    /// dst = get_local_size(dim).
    Lsz { dst: R, dim: u8 },
    /// dst = get_group_id(dim).
    Grp { dst: R, dim: u8 },
    /// dst = src.
    Mov { dst: R, src: R },
    /// dst = cast(src) with C semantics.
    Cast { dst: R, src: R, from: K, to: K },
    /// dst = as_i64(src) (i64 register).
    AsI64 { dst: R, src: R, from: K },
    /// dst = max(dst, 1) on an i64 register (loop step clamping).
    MaxOne { dst: R },
    /// dst = src as i32 (loop variable materialisation).
    I64ToI32 { dst: R, src: R },
    /// dst = a + b on i64 registers.
    AddI64 { dst: R, a: R, b: R },
    /// Jump when a >= b (i64 registers; loop exit test).
    JgeI64 { a: R, b: R, target: u32 },
    /// Monomorphised negation.
    Neg { dst: R, src: R, k: K },
    /// Logical not (truthiness).
    Not { dst: R, src: R, k: K },
    /// Binary op on two operands pre-cast to the promoted kind `k`.
    Bin { dst: R, a: R, b: R, op: BinOp, k: K },
    /// Non-short-circuit `&&` / `||` on raw operands.
    Logic { dst: R, a: R, b: R, ka: K, kb: K, or: bool },
    /// min/max on operands pre-cast to `k` (f32 computes through f64 like
    /// the tree-walker).
    MinMax { dst: R, a: R, b: R, k: K, max: bool },
    /// Unary float intrinsic at fixed precision.
    Intr1 { dst: R, src: R, intr: Intrinsic, k: K },
    /// Global/constant-space load. `idx` is an i64 register.
    LdG { dst: R, buf: u16, idx: R, site: u32, constant: bool },
    /// Global-space store; `vk` is the value register's kind (the buffer
    /// casts on write, as the tree-walker does).
    StG { buf: u16, idx: R, val: R, vk: K, site: u32 },
    /// Private-array load.
    LdP { dst: R, arr: u16, idx: R },
    /// Private-array store (casts `vk` → the array kind `k`).
    StP { arr: u16, idx: R, val: R, vk: K, k: K },
    /// Workgroup-local load.
    LdL { dst: R, arr: u16, idx: R },
    /// Workgroup-local store.
    StL { arr: u16, idx: R, val: R, vk: K, k: K },
    /// (Re)allocate a private array, zero-filled.
    DeclPriv { arr: u16, len: R },
    /// Allocate a local array once per group.
    DeclLocal { arr: u16, len: R },
    /// Add `n` to the flop counter (one per basic block).
    Flops { n: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Jump when the condition is falsy.
    Jz { cond: R, k: K, target: u32 },
    /// Work-item early exit.
    Ret,
    /// End of phase.
    Halt,
}

/// A compiled kernel tape: one instruction stream with an entry point per
/// barrier-delimited phase.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub(crate) ops: Vec<Op>,
    pub(crate) phase_starts: Vec<u32>,
    pub(crate) nregs: usize,
}

impl Compiled {
    /// Number of barrier-delimited phases.
    pub(crate) fn phases(&self) -> usize {
        self.phase_starts.len()
    }
}

/// Static kind state of a scalar slot during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sk {
    Unset,
    Known(K),
    Conflict,
}

fn merge_sk(a: Sk, b: Sk) -> Sk {
    if a == b {
        a
    } else {
        Sk::Conflict
    }
}

struct Cc<'a> {
    prep: &'a Prepared,
    ops: Vec<Op>,
    nregs: u32,
    slots: Vec<Sk>,
    flops: u32,
}

impl<'a> Cc<'a> {
    fn temp(&mut self) -> R {
        let r = self.nregs;
        self.nregs += 1;
        r
    }

    fn flush(&mut self) {
        if self.flops > 0 {
            let n = self.flops;
            self.ops.push(Op::Flops { n });
            self.flops = 0;
        }
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: u32, t: u32) {
        match &mut self.ops[at as usize] {
            Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } => *target = t,
            _ => unreachable!("patch target is not a jump"),
        }
    }

    fn cast(&mut self, r: R, from: K, to: K) -> R {
        if from == to {
            return r;
        }
        let dst = self.temp();
        self.ops.push(Op::Cast { dst, src: r, from, to });
        dst
    }

    fn as_i64(&mut self, r: R, from: K) -> R {
        let dst = self.temp();
        self.ops.push(Op::AsI64 { dst, src: r, from });
        dst
    }

    /// Promoted kind under C's usual arithmetic conversions.
    fn promote_k(ka: K, kb: K) -> K {
        if ka == K::F64 || kb == K::F64 {
            K::F64
        } else if ka == K::F32 || kb == K::F32 {
            K::F32
        } else {
            K::I32
        }
    }

    fn expr(&mut self, e: &PExpr) -> Result<(R, K), String> {
        Ok(match e {
            PExpr::Lit(v) => {
                let (k, bits) = value_bits(*v);
                let dst = self.temp();
                self.ops.push(Op::Const { dst, bits });
                (dst, k)
            }
            PExpr::Var(s) => match self.slots[*s] {
                Sk::Known(k) => (*s as R, k),
                Sk::Unset => return Err(format!("slot {s} read before any declaration")),
                Sk::Conflict => {
                    return Err(format!("slot {s} has branch-dependent kind at a read"))
                }
            },
            PExpr::GlobalId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Gid { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::GlobalSize(d) => {
                let dst = self.temp();
                self.ops.push(Op::Gsz { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::LocalId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Lid { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::LocalSize(d) => {
                let dst = self.temp();
                self.ops.push(Op::Lsz { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::GroupId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Grp { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::Load { mem, idx, site, space } => {
                let (ri, ki) = self.expr(idx)?;
                let ri = self.as_i64(ri, ki);
                let dst = self.temp();
                match mem {
                    PMem::Param(p) => {
                        let k = kk(self.prep.params[*p].kind)?;
                        let constant = matches!(space, MemSpace::Constant);
                        self.ops.push(Op::LdG {
                            dst,
                            buf: *p as u16,
                            idx: ri,
                            site: *site,
                            constant,
                        });
                        (dst, k)
                    }
                    PMem::Priv(a) => {
                        let k = kk(self.prep.priv_kinds[*a])?;
                        self.ops.push(Op::LdP { dst, arr: *a as u16, idx: ri });
                        (dst, k)
                    }
                    PMem::Local(a) => {
                        let k = kk(self.prep.local_kinds[*a])?;
                        self.ops.push(Op::LdL { dst, arr: *a as u16, idx: ri });
                        (dst, k)
                    }
                }
            }
            PExpr::Bin(op, a, b) => {
                let (ra, ka) = self.expr(a)?;
                let (rb, kb) = self.expr(b)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        let dst = self.temp();
                        self.ops.push(Op::Logic {
                            dst,
                            a: ra,
                            b: rb,
                            ka,
                            kb,
                            or: matches!(op, BinOp::Or),
                        });
                        (dst, K::Bool)
                    }
                    BinOp::Rem => {
                        let k = Self::promote_k(ka, kb);
                        if k != K::I32 {
                            return Err("% on float operands".into());
                        }
                        let ra = self.cast(ra, ka, k);
                        let rb = self.cast(rb, kb, k);
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: ra, b: rb, op: *op, k });
                        (dst, k)
                    }
                    _ => {
                        let k = Self::promote_k(ka, kb);
                        let ra = self.cast(ra, ka, k);
                        let rb = self.cast(rb, kb, k);
                        if op.is_flop() && (ka.is_float() || kb.is_float()) {
                            self.flops += 1;
                        }
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: ra, b: rb, op: *op, k });
                        (dst, if op.is_predicate() { K::Bool } else { k })
                    }
                }
            }
            PExpr::Un(op, a) => {
                let (ra, ka) = self.expr(a)?;
                let dst = self.temp();
                match op {
                    UnOp::Neg => {
                        self.ops.push(Op::Neg { dst, src: ra, k: ka });
                        (dst, if ka == K::Bool { K::I32 } else { ka })
                    }
                    UnOp::Not => {
                        self.ops.push(Op::Not { dst, src: ra, k: ka });
                        (dst, K::Bool)
                    }
                }
            }
            PExpr::Select(c, t, f) => {
                let (rc, kc) = self.expr(c)?;
                self.flush();
                let dst = self.temp();
                let jz = self.here();
                self.ops.push(Op::Jz { cond: rc, k: kc, target: 0 });
                let (rt, kt) = self.expr(t)?;
                self.flush();
                self.ops.push(Op::Mov { dst, src: rt });
                let jmp = self.here();
                self.ops.push(Op::Jmp { target: 0 });
                let else_at = self.here();
                self.patch(jz, else_at);
                let (rf, kf) = self.expr(f)?;
                self.flush();
                self.ops.push(Op::Mov { dst, src: rf });
                let end = self.here();
                self.patch(jmp, end);
                if kt != kf {
                    return Err("select branches have different kinds".into());
                }
                (dst, kt)
            }
            PExpr::Call(intr, args) => {
                let mut rs = Vec::with_capacity(args.len());
                for a in args {
                    rs.push(self.expr(a)?);
                }
                match intr {
                    Intrinsic::Sqrt
                    | Intrinsic::Fabs
                    | Intrinsic::Exp
                    | Intrinsic::Log
                    | Intrinsic::Sin
                    | Intrinsic::Cos => {
                        let (r0, k0) = rs[0];
                        self.flops += match intr {
                            Intrinsic::Fabs => 0,
                            _ => 4,
                        };
                        let (src, k) = if k0 == K::F32 {
                            (r0, K::F32)
                        } else {
                            (self.cast(r0, k0, K::F64), K::F64)
                        };
                        let dst = self.temp();
                        self.ops.push(Op::Intr1 { dst, src, intr: *intr, k });
                        (dst, k)
                    }
                    Intrinsic::Min | Intrinsic::Max => {
                        let (r0, k0) = rs[0];
                        let (r1, k1) = rs[1];
                        if k0.is_float() {
                            self.flops += 1;
                        }
                        let k = Self::promote_k(k0, k1);
                        let a = self.cast(r0, k0, k);
                        let b = self.cast(r1, k1, k);
                        let dst = self.temp();
                        self.ops.push(Op::MinMax {
                            dst,
                            a,
                            b,
                            k,
                            max: matches!(intr, Intrinsic::Max),
                        });
                        (dst, k)
                    }
                    Intrinsic::Fma => {
                        // Unfused a*b + c in the promoted precision of (a, b):
                        // f32 when both promote to f32, otherwise f64 — the
                        // tree-walker's exact arm structure. Two flops.
                        let (r0, k0) = rs[0];
                        let (r1, k1) = rs[1];
                        let (r2, k2) = rs[2];
                        self.flops += 2;
                        let k = if Self::promote_k(k0, k1) == K::F32 { K::F32 } else { K::F64 };
                        let a = self.cast(r0, k0, k);
                        let b = self.cast(r1, k1, k);
                        let c = self.cast(r2, k2, k);
                        let t = self.temp();
                        self.ops.push(Op::Bin { dst: t, a, b, op: BinOp::Mul, k });
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: t, b: c, op: BinOp::Add, k });
                        (dst, k)
                    }
                }
            }
            PExpr::Cast(kind, a) => {
                let (ra, ka) = self.expr(a)?;
                let k = kk(*kind)?;
                (self.cast(ra, ka, k), k)
            }
        })
    }

    fn stmts(&mut self, stmts: &[PStmt]) -> Result<(), String> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &PStmt) -> Result<(), String> {
        match s {
            PStmt::DeclScalar { slot, kind, init } => {
                let k = kk(*kind)?;
                match init {
                    Some(e) => {
                        let (r, ke) = self.expr(e)?;
                        let r = self.cast(r, ke, k);
                        self.ops.push(Op::Mov { dst: *slot as R, src: r });
                    }
                    None => {
                        self.ops.push(Op::Const { dst: *slot as R, bits: 0 });
                    }
                }
                self.slots[*slot] = Sk::Known(k);
            }
            PStmt::Assign { slot, value, .. } => {
                let k = match self.slots[*slot] {
                    Sk::Known(k) => k,
                    _ => return Err(format!("assignment to slot {slot} of unknown kind")),
                };
                let (r, ke) = self.expr(value)?;
                let r = self.cast(r, ke, k);
                self.ops.push(Op::Mov { dst: *slot as R, src: r });
            }
            PStmt::DeclPriv { arr, len, .. } => {
                let (rl, kl) = self.expr(len)?;
                let rl = self.as_i64(rl, kl);
                self.ops.push(Op::DeclPriv { arr: *arr as u16, len: rl });
            }
            PStmt::DeclLocal { arr, len, .. } => {
                let (rl, kl) = self.expr(len)?;
                let rl = self.as_i64(rl, kl);
                self.ops.push(Op::DeclLocal { arr: *arr as u16, len: rl });
            }
            PStmt::Store { mem, idx, value, site, space: _ } => {
                let (ri, ki) = self.expr(idx)?;
                let ri = self.as_i64(ri, ki);
                let (rv, kv) = self.expr(value)?;
                match mem {
                    PMem::Param(p) => {
                        self.ops.push(Op::StG {
                            buf: *p as u16,
                            idx: ri,
                            val: rv,
                            vk: kv,
                            site: *site,
                        });
                    }
                    PMem::Priv(a) => {
                        let k = kk(self.prep.priv_kinds[*a])?;
                        self.ops.push(Op::StP { arr: *a as u16, idx: ri, val: rv, vk: kv, k });
                    }
                    PMem::Local(a) => {
                        let k = kk(self.prep.local_kinds[*a])?;
                        self.ops.push(Op::StL { arr: *a as u16, idx: ri, val: rv, vk: kv, k });
                    }
                }
            }
            PStmt::For { slot, begin, end, step, body } => {
                let (rb, kb) = self.expr(begin)?;
                let rb = self.as_i64(rb, kb);
                let (re, ke) = self.expr(end)?;
                let re = self.as_i64(re, ke);
                let (rs, ks) = self.expr(step)?;
                let rs = self.as_i64(rs, ks);
                self.ops.push(Op::MaxOne { dst: rs });
                let ri = self.temp();
                self.ops.push(Op::Mov { dst: ri, src: rb });
                self.flush();
                let head = self.here();
                self.ops.push(Op::JgeI64 { a: ri, b: re, target: 0 });
                self.ops.push(Op::I64ToI32 { dst: *slot as R, src: ri });
                let pre = self.slots.clone();
                self.slots[*slot] = Sk::Known(K::I32);
                let entry = self.slots.clone();
                self.stmts(body)?;
                self.flush();
                self.ops.push(Op::AddI64 { dst: ri, a: ri, b: rs });
                self.ops.push(Op::Jmp { target: head });
                let end_at = self.here();
                self.patch(head, end_at);
                // A later iteration re-enters the body with the kinds the
                // previous one left behind; reject kernels where they differ
                // from the kinds the emitted ops assumed.
                for s in 0..self.slots.len() {
                    if let (Sk::Known(k1), Sk::Known(k2)) = (entry[s], self.slots[s]) {
                        if k1 != k2 {
                            return Err(format!("loop body changes kind of slot {s}"));
                        }
                    }
                    self.slots[s] = merge_sk(pre[s], self.slots[s]);
                }
            }
            PStmt::If { cond, then_, else_ } => {
                // Constant conditions (e.g. lowered comments) take one branch
                // statically; the tree-walker's Lit eval has no side effects.
                if let PExpr::Lit(v) = cond {
                    return self.stmts(if v.truthy() { then_ } else { else_ });
                }
                let (rc, kc) = self.expr(cond)?;
                self.flush();
                let jz = self.here();
                self.ops.push(Op::Jz { cond: rc, k: kc, target: 0 });
                let saved = self.slots.clone();
                self.stmts(then_)?;
                self.flush();
                let jmp = self.here();
                self.ops.push(Op::Jmp { target: 0 });
                let else_at = self.here();
                self.patch(jz, else_at);
                let after_then = std::mem::replace(&mut self.slots, saved);
                self.stmts(else_)?;
                self.flush();
                let end = self.here();
                self.patch(jmp, end);
                for (slot, &then_sk) in self.slots.iter_mut().zip(&after_then) {
                    *slot = merge_sk(then_sk, *slot);
                }
            }
            PStmt::Return => {
                self.flush();
                self.ops.push(Op::Ret);
            }
            PStmt::Barrier => return Err("barrier inside a phase".into()),
        }
        Ok(())
    }
}

/// Compiles a prepared kernel into a tape, or explains why it cannot be
/// compiled (the caller then falls back to the tree-walker).
pub(crate) fn compile(prep: &Prepared) -> Result<Compiled, String> {
    let mut slots = vec![Sk::Unset; prep.nslots];
    for (p, s) in prep.params.iter().zip(&prep.scalar_slots) {
        if let Some(slot) = s {
            slots[*slot] = Sk::Known(kk(p.kind)?);
        }
    }
    let mut cc = Cc { prep, ops: Vec::new(), nregs: prep.nslots as u32, slots, flops: 0 };
    let mut phase_starts = Vec::with_capacity(prep.phases.len());
    for phase in &prep.phases {
        phase_starts.push(cc.here());
        cc.stmts(phase)?;
        cc.flush();
        cc.ops.push(Op::Halt);
    }
    if cc.nregs > u32::MAX / 2 {
        return Err("register file overflow".into());
    }
    Ok(Compiled { ops: cc.ops, phase_starts, nregs: cc.nregs as usize })
}

/// Mutable per-item/per-launch state threaded through tape execution.
pub(crate) struct TapeCtx<'a> {
    pub bufs: &'a [Option<&'a SharedBuf>],
    pub gsize: [usize; 3],
    pub counters: &'a mut Counters,
    pub trace: &'a mut Vec<(u32, u32, u64)>,
    pub trace_on: bool,
    pub writes: &'a mut Vec<WriteRec>,
    pub race_on: bool,
    pub item: u64,
    pub gid: [usize; 3],
    pub lid: usize,
    pub group: usize,
    pub lsize: usize,
}

/// Executes one phase of a compiled tape for one work-item. Returns `true`
/// when the item executed `Ret` (early exit).
pub(crate) fn exec_phase(
    c: &Compiled,
    phase: usize,
    regs: &mut [u64],
    privs: &mut [Vec<u64>],
    locals: &mut [Vec<u64>],
    t: &mut TapeCtx<'_>,
) -> bool {
    let ops = &c.ops[..];
    let mut pc = c.phase_starts[phase] as usize;
    loop {
        match ops[pc] {
            Op::Const { dst, bits } => regs[dst as usize] = bits,
            Op::Gid { dst, dim } => regs[dst as usize] = bi32(t.gid[dim as usize] as i32),
            Op::Gsz { dst, dim } => regs[dst as usize] = bi32(t.gsize[dim as usize] as i32),
            Op::Lid { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { t.lid as i32 } else { 0 })
            }
            Op::Lsz { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { t.lsize as i32 } else { 1 })
            }
            Op::Grp { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { t.group as i32 } else { 0 })
            }
            Op::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
            Op::Cast { dst, src, from, to } => {
                regs[dst as usize] = cast_bits(from, to, regs[src as usize])
            }
            Op::AsI64 { dst, src, from } => {
                regs[dst as usize] = bi64(to_i64(from, regs[src as usize]))
            }
            Op::MaxOne { dst } => {
                regs[dst as usize] = bi64(i64v(regs[dst as usize]).max(1));
            }
            Op::I64ToI32 { dst, src } => regs[dst as usize] = bi32(i64v(regs[src as usize]) as i32),
            Op::AddI64 { dst, a, b } => {
                regs[dst as usize] = bi64(i64v(regs[a as usize]) + i64v(regs[b as usize]))
            }
            Op::JgeI64 { a, b, target } => {
                if i64v(regs[a as usize]) >= i64v(regs[b as usize]) {
                    pc = target as usize;
                    continue;
                }
            }
            Op::Neg { dst, src, k } => {
                let s = regs[src as usize];
                regs[dst as usize] = match k {
                    K::F32 => b32(-f32v(s)),
                    K::F64 => b64(-f64v(s)),
                    K::I32 => bi32(-i32v(s)),
                    K::Bool => bi32(-((s != 0) as i32)),
                };
            }
            Op::Not { dst, src, k } => {
                regs[dst as usize] = bb(!truthy(k, regs[src as usize]));
            }
            Op::Bin { dst, a, b, op, k } => {
                regs[dst as usize] = bin_bits(op, k, regs[a as usize], regs[b as usize]);
            }
            Op::Logic { dst, a, b, ka, kb, or } => {
                let (x, y) = (truthy(ka, regs[a as usize]), truthy(kb, regs[b as usize]));
                regs[dst as usize] = bb(if or { x || y } else { x && y });
            }
            Op::MinMax { dst, a, b, k, max } => {
                let (x, y) = (regs[a as usize], regs[b as usize]);
                regs[dst as usize] = match k {
                    K::F32 => {
                        let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                        b32((if max { p.max(q) } else { p.min(q) }) as f32)
                    }
                    K::F64 => {
                        let (p, q) = (f64v(x), f64v(y));
                        b64(if max { p.max(q) } else { p.min(q) })
                    }
                    K::I32 => {
                        let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                        bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                    }
                    K::Bool => unreachable!("min/max never promotes to bool"),
                };
            }
            Op::Intr1 { dst, src, intr, k } => {
                let s = regs[src as usize];
                regs[dst as usize] = match k {
                    K::F32 => b32(intr1_f32(intr, f32v(s))),
                    _ => b64(intr1_f64(intr, f64v(s))),
                };
            }
            Op::LdG { dst, buf, idx, site, constant } => {
                let i = i64v(regs[idx as usize]);
                let b = t.bufs[buf as usize].expect("buffer bound");
                if constant {
                    t.counters.loads_constant += 1;
                } else {
                    let eb = b.elem_bytes() as u64;
                    t.counters.loads_global += 1;
                    t.counters.bytes_loaded += eb;
                    if t.trace_on {
                        t.trace.push((site, 0, ((buf as u64) << 40) | ((i as u64) * eb)));
                    }
                }
                debug_assert!(
                    i >= 0 && (i as usize) < b.len(),
                    "load out of bounds: param {buf}[{i}] (len {})",
                    b.len()
                );
                // SAFETY: launch contract — no concurrent writer of this
                // element (same contract as the tree-walker).
                regs[dst as usize] = bits_of_value(unsafe { b.get(i as usize) });
            }
            Op::StG { buf, idx, val, vk, site } => {
                let i = i64v(regs[idx as usize]);
                let b = t.bufs[buf as usize].expect("buffer bound");
                let eb = b.elem_bytes() as u64;
                t.counters.stores_global += 1;
                t.counters.bytes_stored += eb;
                if t.trace_on {
                    t.trace.push((site, 0, ((buf as u64) << 40) | ((i as u64) * eb)));
                }
                if t.race_on {
                    t.writes.push((buf as u32, i as u64, t.item, site));
                }
                debug_assert!(
                    i >= 0 && (i as usize) < b.len(),
                    "store out of bounds: param {buf}[{i}] (len {})",
                    b.len()
                );
                // SAFETY: launch contract — element disjointness across
                // work-items (verified by race-check mode).
                unsafe { b.set(i as usize, bits_value(vk, regs[val as usize])) };
            }
            Op::LdP { dst, arr, idx } => {
                regs[dst as usize] = privs[arr as usize][i64v(regs[idx as usize]) as usize];
            }
            Op::StP { arr, idx, val, vk, k } => {
                let i = i64v(regs[idx as usize]) as usize;
                privs[arr as usize][i] = cast_bits(vk, k, regs[val as usize]);
            }
            Op::LdL { dst, arr, idx } => {
                regs[dst as usize] = locals[arr as usize][i64v(regs[idx as usize]) as usize];
            }
            Op::StL { arr, idx, val, vk, k } => {
                let i = i64v(regs[idx as usize]) as usize;
                locals[arr as usize][i] = cast_bits(vk, k, regs[val as usize]);
            }
            Op::DeclPriv { arr, len } => {
                let n = i64v(regs[len as usize]) as usize;
                let p = &mut privs[arr as usize];
                p.clear();
                p.resize(n, 0);
            }
            Op::DeclLocal { arr, len } => {
                let n = i64v(regs[len as usize]) as usize;
                let l = &mut locals[arr as usize];
                if l.len() != n {
                    l.clear();
                    l.resize(n, 0);
                }
            }
            Op::Flops { n } => t.counters.flops += n as u64,
            Op::Jmp { target } => {
                pc = target as usize;
                continue;
            }
            Op::Jz { cond, k, target } => {
                if !truthy(k, regs[cond as usize]) {
                    pc = target as usize;
                    continue;
                }
            }
            Op::Ret => return true,
            Op::Halt => return false,
        }
        pc += 1;
    }
}

#[inline(always)]
fn intr1_f32(i: Intrinsic, x: f32) -> f32 {
    match i {
        Intrinsic::Sqrt => x.sqrt(),
        Intrinsic::Fabs => x.abs(),
        Intrinsic::Exp => x.exp(),
        Intrinsic::Log => x.ln(),
        Intrinsic::Sin => x.sin(),
        Intrinsic::Cos => x.cos(),
        _ => unreachable!("not a unary intrinsic"),
    }
}

#[inline(always)]
fn intr1_f64(i: Intrinsic, x: f64) -> f64 {
    match i {
        Intrinsic::Sqrt => x.sqrt(),
        Intrinsic::Fabs => x.abs(),
        Intrinsic::Exp => x.exp(),
        Intrinsic::Log => x.ln(),
        Intrinsic::Sin => x.sin(),
        Intrinsic::Cos => x.cos(),
        _ => unreachable!("not a unary intrinsic"),
    }
}

#[inline(always)]
fn bin_bits(op: BinOp, k: K, x: u64, y: u64) -> u64 {
    match k {
        K::F32 => {
            let (a, b) = (f32v(x), f32v(y));
            match op {
                BinOp::Add => b32(a + b),
                BinOp::Sub => b32(a - b),
                BinOp::Mul => b32(a * b),
                BinOp::Div => b32(a / b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::Rem | BinOp::And | BinOp::Or => unreachable!("not monomorphised to f32"),
            }
        }
        K::F64 => {
            let (a, b) = (f64v(x), f64v(y));
            match op {
                BinOp::Add => b64(a + b),
                BinOp::Sub => b64(a - b),
                BinOp::Mul => b64(a * b),
                BinOp::Div => b64(a / b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::Rem | BinOp::And | BinOp::Or => unreachable!("not monomorphised to f64"),
            }
        }
        K::I32 => {
            let (a, b) = (i32v(x), i32v(y));
            match op {
                BinOp::Add => bi32(a.wrapping_add(b)),
                BinOp::Sub => bi32(a.wrapping_sub(b)),
                BinOp::Mul => bi32(a.wrapping_mul(b)),
                BinOp::Div => bi32(a / b),
                BinOp::Rem => bi32(a % b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::And | BinOp::Or => unreachable!("logic ops use Op::Logic"),
            }
        }
        K::Bool => unreachable!("binary ops never monomorphise to bool"),
    }
}

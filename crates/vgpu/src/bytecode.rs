//! Flat bytecode compilation of prepared kernels.
//!
//! The tree-walking interpreter in [`crate::exec`] dispatches on boxed
//! [`PExpr`] nodes and `Value` enums for every operation of every work-item.
//! This module flattens a [`Prepared`] kernel once, at compile time, into a
//! linear tape of register-register [`Op`]s:
//!
//! * **Dense registers** — scalar slots map to the first `nslots` registers;
//!   expression temporaries extend the file. Registers hold raw 64-bit
//!   patterns whose interpretation ([`K`]) is fixed statically, so the inner
//!   loop never unwraps a `Value`.
//! * **Monomorphised arithmetic** — C-style promotion (`f64 > f32 > i32`,
//!   bool → i32) is resolved during compilation; every `Bin` op carries its
//!   promoted kind and operands are pre-cast by explicit `Cast` ops. The
//!   arithmetic therefore reproduces the tree-walker (and a native OpenCL
//!   kernel) bit for bit.
//! * **Static load/store sites** — `LdG`/`StG` ops carry the same site ids
//!   the tree-walker assigns, feeding the identical warp transaction model,
//!   counters, and race-check bookkeeping.
//! * **Static flop accounting** — flop counts are summed per basic block and
//!   materialised as single `Flops` ops, preserving the tree-walker's
//!   data-dependent totals (branches carry their own counts).
//!
//! Compilation is best-effort: kernels whose scalar kinds cannot be inferred
//! statically (e.g. a variable re-declared with a different kind on one
//! branch only) are rejected with an error and the launch falls back to the
//! tree-walker, which remains the reference oracle (see
//! [`crate::exec::Engine`]).

use crate::buffer::SharedBuf;
use crate::exec::{Counters, PExpr, PMem, PStmt, Prepared, WriteRec};
use lift::kast::MemSpace;
use lift::prelude::{BinOp, Intrinsic, ScalarKind, UnOp, Value};

/// Register index.
type R = u32;

/// Statically-known register kind (the bit-pattern interpretation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum K {
    /// f32 bits in the low 32.
    F32,
    /// f64 bits.
    F64,
    /// i32 bits in the low 32 (zero-extended).
    I32,
    /// 0 or 1.
    Bool,
}

impl K {
    fn is_float(self) -> bool {
        matches!(self, K::F32 | K::F64)
    }
}

fn kk(k: ScalarKind) -> Result<K, String> {
    match k {
        ScalarKind::F32 => Ok(K::F32),
        ScalarKind::F64 => Ok(K::F64),
        ScalarKind::I32 => Ok(K::I32),
        ScalarKind::Bool => Ok(K::Bool),
        ScalarKind::Real => Err("unresolved Real kind".into()),
    }
}

// ---- bit-pattern helpers (the register encoding) ----

#[inline(always)]
fn b32(x: f32) -> u64 {
    x.to_bits() as u64
}
#[inline(always)]
fn f32v(b: u64) -> f32 {
    f32::from_bits(b as u32)
}
#[inline(always)]
fn b64(x: f64) -> u64 {
    x.to_bits()
}
#[inline(always)]
fn f64v(b: u64) -> f64 {
    f64::from_bits(b)
}
#[inline(always)]
fn bi32(x: i32) -> u64 {
    x as u32 as u64
}
#[inline(always)]
fn i32v(b: u64) -> i32 {
    b as u32 as i32
}
#[inline(always)]
fn bi64(x: i64) -> u64 {
    x as u64
}
#[inline(always)]
fn i64v(b: u64) -> i64 {
    b as i64
}
#[inline(always)]
fn bb(x: bool) -> u64 {
    x as u64
}

/// `Value::as_f64` on a register.
#[inline(always)]
fn to_f64(k: K, b: u64) -> f64 {
    match k {
        K::F32 => f32v(b) as f64,
        K::F64 => f64v(b),
        K::I32 => i32v(b) as f64,
        K::Bool => (b != 0) as i32 as f64,
    }
}

/// `Value::as_i64` on a register.
#[inline(always)]
fn to_i64(k: K, b: u64) -> i64 {
    match k {
        K::F32 => f32v(b) as i64,
        K::F64 => f64v(b) as i64,
        K::I32 => i32v(b) as i64,
        K::Bool => b as i64,
    }
}

/// `Value::truthy` on a register.
#[inline(always)]
fn truthy(k: K, b: u64) -> bool {
    match k {
        K::F32 => f32v(b) != 0.0,
        K::F64 => f64v(b) != 0.0,
        K::I32 => i32v(b) != 0,
        K::Bool => b != 0,
    }
}

/// `Value::cast` on a register (C conversion semantics).
#[inline(always)]
fn cast_bits(from: K, to: K, b: u64) -> u64 {
    match to {
        K::F32 => b32(to_f64(from, b) as f32),
        K::F64 => b64(to_f64(from, b)),
        K::I32 => bi32(to_i64(from, b) as i32),
        K::Bool => bb(truthy(from, b)),
    }
}

fn value_bits(v: Value) -> (K, u64) {
    match v {
        Value::F32(x) => (K::F32, b32(x)),
        Value::F64(x) => (K::F64, b64(x)),
        Value::I32(x) => (K::I32, bi32(x)),
        Value::Bool(x) => (K::Bool, bb(x)),
    }
}

pub(crate) fn bits_of_value(v: Value) -> u64 {
    value_bits(v).1
}

fn bits_value(k: K, b: u64) -> Value {
    match k {
        K::F32 => Value::F32(f32v(b)),
        K::F64 => Value::F64(f64v(b)),
        K::I32 => Value::I32(i32v(b)),
        K::Bool => Value::Bool(b != 0),
    }
}

/// One tape instruction. Loop counters and load/store indices are internal
/// i64 registers (`AsI64` truncates like `Value::as_i64`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// dst = bits.
    Const { dst: R, bits: u64 },
    /// dst = get_global_id(dim) as i32 bits.
    Gid { dst: R, dim: u8 },
    /// dst = get_global_size(dim).
    Gsz { dst: R, dim: u8 },
    /// dst = get_local_id(dim).
    Lid { dst: R, dim: u8 },
    /// dst = get_local_size(dim).
    Lsz { dst: R, dim: u8 },
    /// dst = get_group_id(dim).
    Grp { dst: R, dim: u8 },
    /// dst = src.
    Mov { dst: R, src: R },
    /// dst = cast(src) with C semantics.
    Cast { dst: R, src: R, from: K, to: K },
    /// dst = as_i64(src) (i64 register).
    AsI64 { dst: R, src: R, from: K },
    /// dst = max(dst, 1) on an i64 register (loop step clamping).
    MaxOne { dst: R },
    /// dst = src as i32 (loop variable materialisation).
    I64ToI32 { dst: R, src: R },
    /// dst = a + b on i64 registers.
    AddI64 { dst: R, a: R, b: R },
    /// Jump when a >= b (i64 registers; loop exit test).
    JgeI64 { a: R, b: R, target: u32 },
    /// Monomorphised negation.
    Neg { dst: R, src: R, k: K },
    /// Logical not (truthiness).
    Not { dst: R, src: R, k: K },
    /// Binary op on two operands pre-cast to the promoted kind `k`.
    Bin { dst: R, a: R, b: R, op: BinOp, k: K },
    /// Non-short-circuit `&&` / `||` on raw operands.
    Logic { dst: R, a: R, b: R, ka: K, kb: K, or: bool },
    /// min/max on operands pre-cast to `k` (f32 computes through f64 like
    /// the tree-walker).
    MinMax { dst: R, a: R, b: R, k: K, max: bool },
    /// Unary float intrinsic at fixed precision.
    Intr1 { dst: R, src: R, intr: Intrinsic, k: K },
    /// Global/constant-space load. `idx` is an i64 register.
    LdG { dst: R, buf: u16, idx: R, site: u32, constant: bool },
    /// Global-space store; `vk` is the value register's kind (the buffer
    /// casts on write, as the tree-walker does).
    StG { buf: u16, idx: R, val: R, vk: K, site: u32 },
    /// Private-array load.
    LdP { dst: R, arr: u16, idx: R },
    /// Private-array store (casts `vk` → the array kind `k`).
    StP { arr: u16, idx: R, val: R, vk: K, k: K },
    /// Workgroup-local load.
    LdL { dst: R, arr: u16, idx: R },
    /// Workgroup-local store.
    StL { arr: u16, idx: R, val: R, vk: K, k: K },
    /// (Re)allocate a private array, zero-filled.
    DeclPriv { arr: u16, len: R },
    /// Allocate a local array once per group.
    DeclLocal { arr: u16, len: R },
    /// Add `n` to the flop counter (one per basic block).
    Flops { n: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Jump when the condition is falsy.
    Jz { cond: R, k: K, target: u32 },
    /// Work-item early exit.
    Ret,
    /// End of phase.
    Halt,
}

/// A compiled kernel tape: one instruction stream with an entry point per
/// barrier-delimited phase, plus a launch-invariant prelude hoisted out of
/// the per-item path by [`optimize`].
#[derive(Debug, Clone)]
pub struct Compiled {
    pub(crate) ops: Vec<Op>,
    pub(crate) phase_starts: Vec<u32>,
    pub(crate) nregs: usize,
    /// Item-invariant ops hoisted out of the per-item stream; executed once
    /// per register file by [`exec_pre`] (after scalar-slot initialisation,
    /// before any phase). Contains only pure register ops — never loads,
    /// stores, `Flops`, or control flow — so counters and the transaction
    /// model are unaffected.
    pub(crate) pre: Vec<Op>,
    /// Deduplicated launch-context reads (`Gid`/`Lid`/`Lsz`/`Grp`), one per
    /// distinct (op, dim): executed once per work-item by [`exec_item_pre`]
    /// instead of at every use site. Pure register writes only.
    pub(crate) item_pre: Vec<Op>,
    /// Ops eliminated by the peephole optimizer: constant folds, dead ops
    /// removed, and ops hoisted into `pre`. Feeds `vgpu.tape.optimized_ops`.
    pub(crate) optimized_ops: u32,
}

impl Compiled {
    /// Number of barrier-delimited phases.
    pub(crate) fn phases(&self) -> usize {
        self.phase_starts.len()
    }
}

/// Static kind state of a scalar slot during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sk {
    Unset,
    Known(K),
    Conflict,
}

fn merge_sk(a: Sk, b: Sk) -> Sk {
    if a == b {
        a
    } else {
        Sk::Conflict
    }
}

struct Cc<'a> {
    prep: &'a Prepared,
    ops: Vec<Op>,
    nregs: u32,
    slots: Vec<Sk>,
    flops: u32,
}

impl<'a> Cc<'a> {
    fn temp(&mut self) -> R {
        let r = self.nregs;
        self.nregs += 1;
        r
    }

    fn flush(&mut self) {
        if self.flops > 0 {
            let n = self.flops;
            self.ops.push(Op::Flops { n });
            self.flops = 0;
        }
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: u32, t: u32) {
        match &mut self.ops[at as usize] {
            Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } => *target = t,
            _ => unreachable!("patch target is not a jump"),
        }
    }

    fn cast(&mut self, r: R, from: K, to: K) -> R {
        if from == to {
            return r;
        }
        let dst = self.temp();
        self.ops.push(Op::Cast { dst, src: r, from, to });
        dst
    }

    fn as_i64(&mut self, r: R, from: K) -> R {
        let dst = self.temp();
        self.ops.push(Op::AsI64 { dst, src: r, from });
        dst
    }

    /// Promoted kind under C's usual arithmetic conversions.
    fn promote_k(ka: K, kb: K) -> K {
        if ka == K::F64 || kb == K::F64 {
            K::F64
        } else if ka == K::F32 || kb == K::F32 {
            K::F32
        } else {
            K::I32
        }
    }

    fn expr(&mut self, e: &PExpr) -> Result<(R, K), String> {
        Ok(match e {
            PExpr::Lit(v) => {
                let (k, bits) = value_bits(*v);
                let dst = self.temp();
                self.ops.push(Op::Const { dst, bits });
                (dst, k)
            }
            PExpr::Var(s) => match self.slots[*s] {
                Sk::Known(k) => (*s as R, k),
                Sk::Unset => return Err(format!("slot {s} read before any declaration")),
                Sk::Conflict => {
                    return Err(format!("slot {s} has branch-dependent kind at a read"))
                }
            },
            PExpr::GlobalId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Gid { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::GlobalSize(d) => {
                let dst = self.temp();
                self.ops.push(Op::Gsz { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::LocalId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Lid { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::LocalSize(d) => {
                let dst = self.temp();
                self.ops.push(Op::Lsz { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::GroupId(d) => {
                let dst = self.temp();
                self.ops.push(Op::Grp { dst, dim: *d });
                (dst, K::I32)
            }
            PExpr::Load { mem, idx, site, space } => {
                let (ri, ki) = self.expr(idx)?;
                let ri = self.as_i64(ri, ki);
                let dst = self.temp();
                match mem {
                    PMem::Param(p) => {
                        let k = kk(self.prep.params[*p].kind)?;
                        let constant = matches!(space, MemSpace::Constant);
                        self.ops.push(Op::LdG {
                            dst,
                            buf: *p as u16,
                            idx: ri,
                            site: *site,
                            constant,
                        });
                        (dst, k)
                    }
                    PMem::Priv(a) => {
                        let k = kk(self.prep.priv_kinds[*a])?;
                        self.ops.push(Op::LdP { dst, arr: *a as u16, idx: ri });
                        (dst, k)
                    }
                    PMem::Local(a) => {
                        let k = kk(self.prep.local_kinds[*a])?;
                        self.ops.push(Op::LdL { dst, arr: *a as u16, idx: ri });
                        (dst, k)
                    }
                }
            }
            PExpr::Bin(op, a, b) => {
                let (ra, ka) = self.expr(a)?;
                let (rb, kb) = self.expr(b)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        let dst = self.temp();
                        self.ops.push(Op::Logic {
                            dst,
                            a: ra,
                            b: rb,
                            ka,
                            kb,
                            or: matches!(op, BinOp::Or),
                        });
                        (dst, K::Bool)
                    }
                    BinOp::Rem => {
                        let k = Self::promote_k(ka, kb);
                        if k != K::I32 {
                            return Err("% on float operands".into());
                        }
                        let ra = self.cast(ra, ka, k);
                        let rb = self.cast(rb, kb, k);
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: ra, b: rb, op: *op, k });
                        (dst, k)
                    }
                    _ => {
                        let k = Self::promote_k(ka, kb);
                        let ra = self.cast(ra, ka, k);
                        let rb = self.cast(rb, kb, k);
                        if op.is_flop() && (ka.is_float() || kb.is_float()) {
                            self.flops += 1;
                        }
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: ra, b: rb, op: *op, k });
                        (dst, if op.is_predicate() { K::Bool } else { k })
                    }
                }
            }
            PExpr::Un(op, a) => {
                let (ra, ka) = self.expr(a)?;
                let dst = self.temp();
                match op {
                    UnOp::Neg => {
                        self.ops.push(Op::Neg { dst, src: ra, k: ka });
                        (dst, if ka == K::Bool { K::I32 } else { ka })
                    }
                    UnOp::Not => {
                        self.ops.push(Op::Not { dst, src: ra, k: ka });
                        (dst, K::Bool)
                    }
                }
            }
            PExpr::Select(c, t, f) => {
                let (rc, kc) = self.expr(c)?;
                self.flush();
                let dst = self.temp();
                let jz = self.here();
                self.ops.push(Op::Jz { cond: rc, k: kc, target: 0 });
                let (rt, kt) = self.expr(t)?;
                self.flush();
                self.ops.push(Op::Mov { dst, src: rt });
                let jmp = self.here();
                self.ops.push(Op::Jmp { target: 0 });
                let else_at = self.here();
                self.patch(jz, else_at);
                let (rf, kf) = self.expr(f)?;
                self.flush();
                self.ops.push(Op::Mov { dst, src: rf });
                let end = self.here();
                self.patch(jmp, end);
                if kt != kf {
                    return Err("select branches have different kinds".into());
                }
                (dst, kt)
            }
            PExpr::Call(intr, args) => {
                let mut rs = Vec::with_capacity(args.len());
                for a in args {
                    rs.push(self.expr(a)?);
                }
                match intr {
                    Intrinsic::Sqrt
                    | Intrinsic::Fabs
                    | Intrinsic::Exp
                    | Intrinsic::Log
                    | Intrinsic::Sin
                    | Intrinsic::Cos => {
                        let (r0, k0) = rs[0];
                        self.flops += match intr {
                            Intrinsic::Fabs => 0,
                            _ => 4,
                        };
                        let (src, k) = if k0 == K::F32 {
                            (r0, K::F32)
                        } else {
                            (self.cast(r0, k0, K::F64), K::F64)
                        };
                        let dst = self.temp();
                        self.ops.push(Op::Intr1 { dst, src, intr: *intr, k });
                        (dst, k)
                    }
                    Intrinsic::Min | Intrinsic::Max => {
                        let (r0, k0) = rs[0];
                        let (r1, k1) = rs[1];
                        if k0.is_float() {
                            self.flops += 1;
                        }
                        let k = Self::promote_k(k0, k1);
                        let a = self.cast(r0, k0, k);
                        let b = self.cast(r1, k1, k);
                        let dst = self.temp();
                        self.ops.push(Op::MinMax {
                            dst,
                            a,
                            b,
                            k,
                            max: matches!(intr, Intrinsic::Max),
                        });
                        (dst, k)
                    }
                    Intrinsic::Fma => {
                        // Unfused a*b + c in the promoted precision of (a, b):
                        // f32 when both promote to f32, otherwise f64 — the
                        // tree-walker's exact arm structure. Two flops.
                        let (r0, k0) = rs[0];
                        let (r1, k1) = rs[1];
                        let (r2, k2) = rs[2];
                        self.flops += 2;
                        let k = if Self::promote_k(k0, k1) == K::F32 { K::F32 } else { K::F64 };
                        let a = self.cast(r0, k0, k);
                        let b = self.cast(r1, k1, k);
                        let c = self.cast(r2, k2, k);
                        let t = self.temp();
                        self.ops.push(Op::Bin { dst: t, a, b, op: BinOp::Mul, k });
                        let dst = self.temp();
                        self.ops.push(Op::Bin { dst, a: t, b: c, op: BinOp::Add, k });
                        (dst, k)
                    }
                }
            }
            PExpr::Cast(kind, a) => {
                let (ra, ka) = self.expr(a)?;
                let k = kk(*kind)?;
                (self.cast(ra, ka, k), k)
            }
        })
    }

    fn stmts(&mut self, stmts: &[PStmt]) -> Result<(), String> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &PStmt) -> Result<(), String> {
        match s {
            PStmt::DeclScalar { slot, kind, init } => {
                let k = kk(*kind)?;
                match init {
                    Some(e) => {
                        let (r, ke) = self.expr(e)?;
                        let r = self.cast(r, ke, k);
                        self.ops.push(Op::Mov { dst: *slot as R, src: r });
                    }
                    None => {
                        self.ops.push(Op::Const { dst: *slot as R, bits: 0 });
                    }
                }
                self.slots[*slot] = Sk::Known(k);
            }
            PStmt::Assign { slot, value, .. } => {
                let k = match self.slots[*slot] {
                    Sk::Known(k) => k,
                    _ => return Err(format!("assignment to slot {slot} of unknown kind")),
                };
                let (r, ke) = self.expr(value)?;
                let r = self.cast(r, ke, k);
                self.ops.push(Op::Mov { dst: *slot as R, src: r });
            }
            PStmt::DeclPriv { arr, len, .. } => {
                let (rl, kl) = self.expr(len)?;
                let rl = self.as_i64(rl, kl);
                self.ops.push(Op::DeclPriv { arr: *arr as u16, len: rl });
            }
            PStmt::DeclLocal { arr, len, .. } => {
                let (rl, kl) = self.expr(len)?;
                let rl = self.as_i64(rl, kl);
                self.ops.push(Op::DeclLocal { arr: *arr as u16, len: rl });
            }
            PStmt::Store { mem, idx, value, site, space: _ } => {
                let (ri, ki) = self.expr(idx)?;
                let ri = self.as_i64(ri, ki);
                let (rv, kv) = self.expr(value)?;
                match mem {
                    PMem::Param(p) => {
                        self.ops.push(Op::StG {
                            buf: *p as u16,
                            idx: ri,
                            val: rv,
                            vk: kv,
                            site: *site,
                        });
                    }
                    PMem::Priv(a) => {
                        let k = kk(self.prep.priv_kinds[*a])?;
                        self.ops.push(Op::StP { arr: *a as u16, idx: ri, val: rv, vk: kv, k });
                    }
                    PMem::Local(a) => {
                        let k = kk(self.prep.local_kinds[*a])?;
                        self.ops.push(Op::StL { arr: *a as u16, idx: ri, val: rv, vk: kv, k });
                    }
                }
            }
            PStmt::For { slot, begin, end, step, body } => {
                let (rb, kb) = self.expr(begin)?;
                let rb = self.as_i64(rb, kb);
                let (re, ke) = self.expr(end)?;
                let re = self.as_i64(re, ke);
                let (rs, ks) = self.expr(step)?;
                let rs = self.as_i64(rs, ks);
                self.ops.push(Op::MaxOne { dst: rs });
                let ri = self.temp();
                self.ops.push(Op::Mov { dst: ri, src: rb });
                self.flush();
                let head = self.here();
                self.ops.push(Op::JgeI64 { a: ri, b: re, target: 0 });
                self.ops.push(Op::I64ToI32 { dst: *slot as R, src: ri });
                let pre = self.slots.clone();
                self.slots[*slot] = Sk::Known(K::I32);
                let entry = self.slots.clone();
                self.stmts(body)?;
                self.flush();
                self.ops.push(Op::AddI64 { dst: ri, a: ri, b: rs });
                self.ops.push(Op::Jmp { target: head });
                let end_at = self.here();
                self.patch(head, end_at);
                // A later iteration re-enters the body with the kinds the
                // previous one left behind; reject kernels where they differ
                // from the kinds the emitted ops assumed.
                for s in 0..self.slots.len() {
                    if let (Sk::Known(k1), Sk::Known(k2)) = (entry[s], self.slots[s]) {
                        if k1 != k2 {
                            return Err(format!("loop body changes kind of slot {s}"));
                        }
                    }
                    self.slots[s] = merge_sk(pre[s], self.slots[s]);
                }
            }
            PStmt::If { cond, then_, else_ } => {
                // Constant conditions (e.g. lowered comments) take one branch
                // statically; the tree-walker's Lit eval has no side effects.
                if let PExpr::Lit(v) = cond {
                    return self.stmts(if v.truthy() { then_ } else { else_ });
                }
                let (rc, kc) = self.expr(cond)?;
                self.flush();
                let jz = self.here();
                self.ops.push(Op::Jz { cond: rc, k: kc, target: 0 });
                let saved = self.slots.clone();
                self.stmts(then_)?;
                self.flush();
                let jmp = self.here();
                self.ops.push(Op::Jmp { target: 0 });
                let else_at = self.here();
                self.patch(jz, else_at);
                let after_then = std::mem::replace(&mut self.slots, saved);
                self.stmts(else_)?;
                self.flush();
                let end = self.here();
                self.patch(jmp, end);
                for (slot, &then_sk) in self.slots.iter_mut().zip(&after_then) {
                    *slot = merge_sk(then_sk, *slot);
                }
            }
            PStmt::Return => {
                self.flush();
                self.ops.push(Op::Ret);
            }
            PStmt::Barrier => return Err("barrier inside a phase".into()),
        }
        Ok(())
    }
}

/// Compiles a prepared kernel into a tape, or explains why it cannot be
/// compiled (the caller then falls back to the tree-walker).
pub(crate) fn compile(prep: &Prepared) -> Result<Compiled, String> {
    let mut slots = vec![Sk::Unset; prep.nslots];
    for (p, s) in prep.params.iter().zip(&prep.scalar_slots) {
        if let Some(slot) = s {
            slots[*slot] = Sk::Known(kk(p.kind)?);
        }
    }
    let mut cc = Cc { prep, ops: Vec::new(), nregs: prep.nslots as u32, slots, flops: 0 };
    let mut phase_starts = Vec::with_capacity(prep.phases.len());
    for phase in &prep.phases {
        phase_starts.push(cc.here());
        cc.stmts(phase)?;
        cc.flush();
        cc.ops.push(Op::Halt);
    }
    if cc.nregs > u32::MAX / 2 {
        return Err("register file overflow".into());
    }
    let mut c = Compiled {
        ops: cc.ops,
        phase_starts,
        nregs: cc.nregs as usize,
        pre: Vec::new(),
        item_pre: Vec::new(),
        optimized_ops: 0,
    };
    optimize(&mut c, prep.nslots);
    if !validate(&c) {
        // Never expected: the compiler allocated every operand itself. The
        // fallback keeps the launch on the (fully bounds-checked) tree
        // engine rather than trusting a tape the check rejected.
        return Err("tape validation failed".into());
    }
    Ok(c)
}

/// One-time structural check run at compile time: every register operand in
/// the main tape and the prelude is below `nregs`, every jump target and
/// phase entry is inside the tape, and the tape is non-empty. `exec_phase`
/// relies on this to elide per-access register bounds checks.
fn validate(c: &Compiled) -> bool {
    // The tape must end in a terminator: `pc` only moves past non-final ops
    // (a fall-through at the final op would run off the end) or to a
    // validated jump target, so the program counter can never leave the
    // tape. `exec_phase` elides the fetch bounds check on this basis.
    let mut ok = matches!(c.ops.last(), Some(Op::Ret | Op::Halt));
    for op in c.ops.iter().chain(&c.pre).chain(&c.item_pre) {
        if let Some(d) = op_dst(op) {
            ok &= (d as usize) < c.nregs;
        }
        visit_srcs(op, &mut |r| ok &= (r as usize) < c.nregs);
        if let Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } = *op {
            ok &= (target as usize) < c.ops.len();
        }
    }
    for &s in &c.phase_starts {
        ok &= (s as usize) < c.ops.len();
    }
    ok
}

// ---- peephole optimizer ----
//
// Three passes over the compiled tape, run once at compile time:
//
// 1. **Constant folding** — pure register ops whose operands are all
//    compile-time constants are rewritten to `Const`.
// 2. **Hoisting** — pure ops in a phase's entry block (before any control
//    flow) whose operands are item-invariant move to `Compiled::pre` and
//    execute once per register file instead of once per work-item.
// 3. **Dead-register elimination** — pure ops whose destination is never
//    read are removed and jump targets/phase entries are remapped.
//
// The passes never touch loads, stores, `Flops`, declarations, or control
// flow, so the observable semantics — buffer bits, all counters, the
// transaction trace, and race records — are identical to the unoptimized
// tape. `Engine::Differential` enforces this against the tree-walker.

/// The destination register an op writes, if any. `MaxOne` both reads and
/// writes its `dst`; callers that need read sets must also consult
/// [`visit_srcs`].
fn op_dst(op: &Op) -> Option<R> {
    match *op {
        Op::Const { dst, .. }
        | Op::Gid { dst, .. }
        | Op::Gsz { dst, .. }
        | Op::Lid { dst, .. }
        | Op::Lsz { dst, .. }
        | Op::Grp { dst, .. }
        | Op::Mov { dst, .. }
        | Op::Cast { dst, .. }
        | Op::AsI64 { dst, .. }
        | Op::MaxOne { dst }
        | Op::I64ToI32 { dst, .. }
        | Op::AddI64 { dst, .. }
        | Op::Neg { dst, .. }
        | Op::Not { dst, .. }
        | Op::Bin { dst, .. }
        | Op::Logic { dst, .. }
        | Op::MinMax { dst, .. }
        | Op::Intr1 { dst, .. }
        | Op::LdG { dst, .. }
        | Op::LdP { dst, .. }
        | Op::LdL { dst, .. } => Some(dst),
        Op::StG { .. }
        | Op::StP { .. }
        | Op::StL { .. }
        | Op::DeclPriv { .. }
        | Op::DeclLocal { .. }
        | Op::Flops { .. }
        | Op::Jmp { .. }
        | Op::JgeI64 { .. }
        | Op::Jz { .. }
        | Op::Ret
        | Op::Halt => None,
    }
}

/// Visits every register an op reads.
fn visit_srcs(op: &Op, f: &mut impl FnMut(R)) {
    match *op {
        Op::Mov { src, .. }
        | Op::Cast { src, .. }
        | Op::AsI64 { src, .. }
        | Op::I64ToI32 { src, .. }
        | Op::Neg { src, .. }
        | Op::Not { src, .. }
        | Op::Intr1 { src, .. } => f(src),
        Op::MaxOne { dst } => f(dst),
        Op::AddI64 { a, b, .. }
        | Op::JgeI64 { a, b, .. }
        | Op::Bin { a, b, .. }
        | Op::Logic { a, b, .. }
        | Op::MinMax { a, b, .. } => {
            f(a);
            f(b);
        }
        Op::LdG { idx, .. } | Op::LdP { idx, .. } | Op::LdL { idx, .. } => f(idx),
        Op::StG { idx, val, .. } | Op::StP { idx, val, .. } | Op::StL { idx, val, .. } => {
            f(idx);
            f(val);
        }
        Op::DeclPriv { len, .. } | Op::DeclLocal { len, .. } => f(len),
        Op::Jz { cond, .. } => f(cond),
        Op::Const { .. }
        | Op::Gid { .. }
        | Op::Gsz { .. }
        | Op::Lid { .. }
        | Op::Lsz { .. }
        | Op::Grp { .. }
        | Op::Flops { .. }
        | Op::Jmp { .. }
        | Op::Ret
        | Op::Halt => {}
    }
}

/// Mutable twin of [`visit_srcs`]: offers every source-register field for
/// in-place rewriting (the context-CSE pass redirects reads of duplicate
/// context registers to the canonical one).
fn visit_srcs_mut(op: &mut Op, f: &mut impl FnMut(&mut R)) {
    match op {
        Op::Mov { src, .. }
        | Op::Cast { src, .. }
        | Op::AsI64 { src, .. }
        | Op::I64ToI32 { src, .. }
        | Op::Neg { src, .. }
        | Op::Not { src, .. }
        | Op::Intr1 { src, .. } => f(src),
        Op::MaxOne { dst } => f(dst),
        Op::AddI64 { a, b, .. }
        | Op::JgeI64 { a, b, .. }
        | Op::Bin { a, b, .. }
        | Op::Logic { a, b, .. }
        | Op::MinMax { a, b, .. } => {
            f(a);
            f(b);
        }
        Op::LdG { idx, .. } | Op::LdP { idx, .. } | Op::LdL { idx, .. } => f(idx),
        Op::StG { idx, val, .. } | Op::StP { idx, val, .. } | Op::StL { idx, val, .. } => {
            f(idx);
            f(val);
        }
        Op::DeclPriv { len, .. } | Op::DeclLocal { len, .. } => f(len),
        Op::Jz { cond, .. } => f(cond),
        Op::Const { .. }
        | Op::Gid { .. }
        | Op::Gsz { .. }
        | Op::Lid { .. }
        | Op::Lsz { .. }
        | Op::Grp { .. }
        | Op::Flops { .. }
        | Op::Jmp { .. }
        | Op::Ret
        | Op::Halt => {}
    }
}

/// Number of writers of each register across the whole tape.
fn count_writers(ops: &[Op], nregs: usize) -> Vec<u32> {
    let mut w = vec![0u32; nregs];
    for op in ops {
        if let Some(d) = op_dst(op) {
            w[d as usize] += 1;
        }
    }
    w
}

/// Folds one op whose operands are all known constants into its result
/// bits, reproducing `exec_phase` arithmetic exactly. Returns `None` for
/// non-foldable ops, unknown operands, and i32 `Div`/`Rem` cases that would
/// trap at runtime (those must keep trapping at their original site).
fn try_fold(op: &Op, constv: &[Option<u64>]) -> Option<(R, u64)> {
    let c = |r: R| constv[r as usize];
    match *op {
        Op::Mov { dst, src } => c(src).map(|v| (dst, v)),
        Op::Cast { dst, src, from, to } => c(src).map(|v| (dst, cast_bits(from, to, v))),
        Op::AsI64 { dst, src, from } => c(src).map(|v| (dst, bi64(to_i64(from, v)))),
        Op::I64ToI32 { dst, src } => c(src).map(|v| (dst, bi32(i64v(v) as i32))),
        Op::AddI64 { dst, a, b } => match (c(a), c(b)) {
            (Some(x), Some(y)) => Some((dst, bi64(i64v(x).wrapping_add(i64v(y))))),
            _ => None,
        },
        Op::Neg { dst, src, k } => c(src).map(|v| {
            let bits = match k {
                K::F32 => b32(-f32v(v)),
                K::F64 => b64(-f64v(v)),
                K::I32 => bi32(i32v(v).wrapping_neg()),
                K::Bool => bi32(((v != 0) as i32).wrapping_neg()),
            };
            (dst, bits)
        }),
        Op::Not { dst, src, k } => c(src).map(|v| (dst, bb(!truthy(k, v)))),
        Op::Bin { dst, a, b, op, k } => {
            let (x, y) = (c(a)?, c(b)?);
            if k == K::I32 && matches!(op, BinOp::Div | BinOp::Rem) {
                let (p, q) = (i32v(x), i32v(y));
                if q == 0 || (p == i32::MIN && q == -1) {
                    return None;
                }
            }
            Some((dst, bin_bits(op, k, x, y)))
        }
        Op::Logic { dst, a, b, ka, kb, or } => match (c(a), c(b)) {
            (Some(x), Some(y)) => {
                let (p, q) = (truthy(ka, x), truthy(kb, y));
                Some((dst, bb(if or { p || q } else { p && q })))
            }
            _ => None,
        },
        Op::MinMax { dst, a, b, k, max } => {
            if k == K::Bool {
                return None;
            }
            let (x, y) = (c(a)?, c(b)?);
            let bits = match k {
                K::F32 => {
                    let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                    b32((if max { p.max(q) } else { p.min(q) }) as f32)
                }
                K::F64 => {
                    let (p, q) = (f64v(x), f64v(y));
                    b64(if max { p.max(q) } else { p.min(q) })
                }
                K::I32 => {
                    let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                    bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                }
                K::Bool => unreachable!(),
            };
            Some((dst, bits))
        }
        Op::Intr1 { dst, src, intr, k } => c(src).map(|v| {
            let bits = match k {
                K::F32 => b32(intr1_f32(intr, f32v(v))),
                _ => b64(intr1_f64(intr, f64v(v))),
            };
            (dst, bits)
        }),
        _ => None,
    }
}

/// True for pure register ops that are safe to hoist into the per-warp
/// prelude when their operands are item-invariant. Conservatively excludes
/// i32 `Div`/`Rem` (may trap) and every id-dependent, memory, counter, or
/// control op.
fn hoistable(op: &Op) -> bool {
    match op {
        Op::Bin { op: b, k, .. } => !(*k == K::I32 && matches!(b, BinOp::Div | BinOp::Rem)),
        Op::Const { .. }
        | Op::Gsz { .. }
        | Op::Mov { .. }
        | Op::Cast { .. }
        | Op::AsI64 { .. }
        | Op::I64ToI32 { .. }
        | Op::AddI64 { .. }
        | Op::Neg { .. }
        | Op::Not { .. }
        | Op::Logic { .. }
        | Op::MinMax { .. }
        | Op::Intr1 { .. } => true,
        _ => false,
    }
}

/// True for pure ops that may be deleted when their destination is never
/// read: no side effects, no counters, and cannot trap.
fn removable(op: &Op) -> bool {
    match op {
        Op::Bin { op: b, k, .. } => !(*k == K::I32 && matches!(b, BinOp::Div | BinOp::Rem)),
        Op::Const { .. }
        | Op::Gid { .. }
        | Op::Gsz { .. }
        | Op::Lid { .. }
        | Op::Lsz { .. }
        | Op::Grp { .. }
        | Op::Mov { .. }
        | Op::Cast { .. }
        | Op::AsI64 { .. }
        | Op::I64ToI32 { .. }
        | Op::AddI64 { .. }
        | Op::Neg { .. }
        | Op::Not { .. }
        | Op::Logic { .. }
        | Op::MinMax { .. }
        | Op::Intr1 { .. } => true,
        _ => false,
    }
}

/// Runs the three peephole passes on a freshly compiled tape. `nslots` is
/// the number of scalar-slot registers (slots may be re-initialised per
/// item and are never treated as constants or hoist destinations).
// The passes walk `c.ops` by index while mutating the parallel `removed`
// mask and appending to `c.pre`/`c.item_pre`; iterator forms would need a
// second borrow of `c`.
#[allow(clippy::needless_range_loop)]
fn optimize(c: &mut Compiled, nslots: usize) {
    let writers = count_writers(&c.ops, c.nregs);
    let single_temp = |r: R| (r as usize) >= nslots && writers[r as usize] == 1;

    // Pass 1: constant folding to fixpoint. A register is constant when it
    // is a single-writer temporary whose writer is a `Const` op; codegen
    // guarantees such temporaries are written before every read.
    let mut constv: Vec<Option<u64>> = vec![None; c.nregs];
    loop {
        let mut changed = false;
        for i in 0..c.ops.len() {
            if let Some((dst, bits)) = try_fold(&c.ops[i], &constv) {
                c.ops[i] = Op::Const { dst, bits };
                c.optimized_ops += 1;
                changed = true;
            }
            if let Op::Const { dst, bits } = c.ops[i] {
                if single_temp(dst) && constv[dst as usize].is_none() {
                    constv[dst as usize] = Some(bits);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: hoist item-invariant ops into the prelude. An op qualifies
    // anywhere in the tape — even behind a branch or inside a loop — when
    // (a) it is pure and non-trapping (`hoistable`), (b) its destination is
    // a single-writer temporary (codegen guarantees write-before-read, so
    // no path observes the pre-hoist zero), and (c) every operand is
    // immutable over the whole launch: a never-written scalar slot (slots
    // are re-initialised to identical bits for every item) or the result of
    // an already-hoisted op. Running such an op once per register file in
    // the prelude therefore produces exactly the bits every reader saw
    // before. The prelude stays dependency-ordered for free: a register is
    // only marked invariant when its producer is pushed, so consumers always
    // land after their producers.
    let mut removed = vec![false; c.ops.len()];
    let mut invariant = vec![false; c.nregs];
    for (r, inv) in invariant.iter_mut().enumerate().take(nslots) {
        *inv = writers[r] == 0;
    }
    loop {
        let mut changed = false;
        for i in 0..c.ops.len() {
            if removed[i] {
                continue;
            }
            let op = c.ops[i];
            let dst = match op_dst(&op) {
                Some(d) if single_temp(d) => d,
                _ => continue,
            };
            if !hoistable(&op) {
                continue;
            }
            let mut ok = true;
            visit_srcs(&op, &mut |r| ok &= invariant[r as usize]);
            if !ok {
                continue;
            }
            c.pre.push(op);
            removed[i] = true;
            invariant[dst as usize] = true;
            c.optimized_ops += 1;
            changed = true;
        }
        if !changed {
            break;
        }
    }

    // Pass 2b: context-op CSE. `Gid`/`Lid`/`Lsz`/`Grp` read launch context
    // that is fixed for the duration of one work-item, so every occurrence
    // of the same (op, dim) writes identical bits wherever it sits — even
    // behind branches or inside loops. Codegen re-emits them at each use
    // site; here the first single-writer occurrence becomes canonical and
    // moves to `item_pre` (run once per item, before any phase), readers of
    // the duplicates are redirected to the canonical register, and all
    // in-tape occurrences are dropped. Canonical registers are never
    // written by the main tape afterwards, so the value persists across
    // phases of the same item.
    let mut redirect: Vec<Option<R>> = vec![None; c.nregs];
    let mut canon: std::collections::HashMap<(u8, u8), R> = std::collections::HashMap::new();
    for i in 0..c.ops.len() {
        if removed[i] {
            continue;
        }
        let (tag, dim, dst) = match c.ops[i] {
            Op::Gid { dst, dim } => (0u8, dim, dst),
            Op::Lid { dst, dim } => (1, dim, dst),
            Op::Lsz { dst, dim } => (2, dim, dst),
            Op::Grp { dst, dim } => (3, dim, dst),
            _ => continue,
        };
        if !single_temp(dst) {
            continue;
        }
        match canon.entry((tag, dim)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                redirect[dst as usize] = Some(*e.get());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(dst);
                c.item_pre.push(c.ops[i]);
            }
        }
        removed[i] = true;
        c.optimized_ops += 1;
    }
    if !canon.is_empty() {
        for (i, op) in c.ops.iter_mut().enumerate() {
            if !removed[i] {
                visit_srcs_mut(op, &mut |r| {
                    if let Some(n) = redirect[*r as usize] {
                        *r = n;
                    }
                });
            }
        }
    }

    // Pass 3: dead-register elimination to fixpoint. Reads from the prelude
    // count (they keep earlier prelude producers alive; main-tape producers
    // feeding a hoisted op were necessarily hoisted too).
    loop {
        let mut reads = vec![0u32; c.nregs];
        for (i, op) in c.ops.iter().enumerate() {
            if !removed[i] {
                visit_srcs(op, &mut |r| reads[r as usize] += 1);
            }
        }
        for op in &c.pre {
            visit_srcs(op, &mut |r| reads[r as usize] += 1);
        }
        let mut changed = false;
        for i in 0..c.ops.len() {
            if removed[i] || !removable(&c.ops[i]) {
                continue;
            }
            if let Some(d) = op_dst(&c.ops[i]) {
                if reads[d as usize] == 0 {
                    removed[i] = true;
                    c.optimized_ops += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // DCE may have erased the last reader of a canonical context register;
    // drop prelude entries nothing reads so items don't pay for them.
    {
        let mut reads = vec![0u32; c.nregs];
        for (i, op) in c.ops.iter().enumerate() {
            if !removed[i] {
                visit_srcs(op, &mut |r| reads[r as usize] += 1);
            }
        }
        for op in &c.pre {
            visit_srcs(op, &mut |r| reads[r as usize] += 1);
        }
        c.item_pre.retain(|op| op_dst(op).is_some_and(|d| reads[d as usize] > 0));
    }

    // Compaction: drop removed ops, remapping jump targets and phase entry
    // points. A target pointing at a removed op falls through to the next
    // retained one (the prefix count gives exactly that index).
    if removed.iter().any(|&r| r) {
        let mut newpos = Vec::with_capacity(c.ops.len() + 1);
        let mut n = 0u32;
        for &r in &removed {
            newpos.push(n);
            if !r {
                n += 1;
            }
        }
        newpos.push(n);
        let mut ops = Vec::with_capacity(n as usize);
        for (i, mut op) in c.ops.drain(..).enumerate() {
            if removed[i] {
                continue;
            }
            match &mut op {
                Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } => {
                    *target = newpos[*target as usize];
                }
                _ => {}
            }
            ops.push(op);
        }
        c.ops = ops;
        for s in c.phase_starts.iter_mut() {
            *s = newpos[*s as usize];
        }
    }
}

/// Executes the hoisted prelude once into a freshly initialised register
/// file (scalar slots must already hold their launch values). Contains only
/// pure register ops, so it touches no counters, traces, or memory.
/// Executes the per-item context prelude: one deduplicated `Gid`/`Lid`/
/// `Lsz`/`Grp` read per distinct (op, dim), mirroring the corresponding
/// [`exec_phase`] arms bit for bit. Run once per work-item, after slot
/// initialisation and before any phase.
pub(crate) fn exec_item_pre(
    c: &Compiled,
    regs: &mut [u64],
    gid: [usize; 3],
    lid: usize,
    lsize: usize,
    group: usize,
) {
    for op in &c.item_pre {
        match *op {
            Op::Gid { dst, dim } => regs[dst as usize] = bi32(gid[dim as usize] as i32),
            Op::Lid { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { lid as i32 } else { 0 })
            }
            Op::Lsz { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { lsize as i32 } else { 1 })
            }
            Op::Grp { dst, dim } => {
                regs[dst as usize] = bi32(if dim == 0 { group as i32 } else { 0 })
            }
            _ => unreachable!("non-context op in item prelude"),
        }
    }
}

pub(crate) fn exec_pre(c: &Compiled, regs: &mut [u64], gsize: [usize; 3]) {
    for op in &c.pre {
        match *op {
            Op::Const { dst, bits } => regs[dst as usize] = bits,
            Op::Gsz { dst, dim } => regs[dst as usize] = bi32(gsize[dim as usize] as i32),
            Op::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
            Op::Cast { dst, src, from, to } => {
                regs[dst as usize] = cast_bits(from, to, regs[src as usize])
            }
            Op::AsI64 { dst, src, from } => {
                regs[dst as usize] = bi64(to_i64(from, regs[src as usize]))
            }
            Op::I64ToI32 { dst, src } => regs[dst as usize] = bi32(i64v(regs[src as usize]) as i32),
            Op::AddI64 { dst, a, b } => {
                regs[dst as usize] = bi64(i64v(regs[a as usize]) + i64v(regs[b as usize]))
            }
            Op::Neg { dst, src, k } => {
                let s = regs[src as usize];
                regs[dst as usize] = match k {
                    K::F32 => b32(-f32v(s)),
                    K::F64 => b64(-f64v(s)),
                    K::I32 => bi32(-i32v(s)),
                    K::Bool => bi32(-((s != 0) as i32)),
                };
            }
            Op::Not { dst, src, k } => {
                regs[dst as usize] = bb(!truthy(k, regs[src as usize]));
            }
            Op::Bin { dst, a, b, op, k } => {
                regs[dst as usize] = bin_bits(op, k, regs[a as usize], regs[b as usize]);
            }
            Op::Logic { dst, a, b, ka, kb, or } => {
                let (x, y) = (truthy(ka, regs[a as usize]), truthy(kb, regs[b as usize]));
                regs[dst as usize] = bb(if or { x || y } else { x && y });
            }
            Op::MinMax { dst, a, b, k, max } => {
                let (x, y) = (regs[a as usize], regs[b as usize]);
                regs[dst as usize] = match k {
                    K::F32 => {
                        let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                        b32((if max { p.max(q) } else { p.min(q) }) as f32)
                    }
                    K::F64 => {
                        let (p, q) = (f64v(x), f64v(y));
                        b64(if max { p.max(q) } else { p.min(q) })
                    }
                    K::I32 => {
                        let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                        bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                    }
                    K::Bool => unreachable!("min/max never promotes to bool"),
                };
            }
            Op::Intr1 { dst, src, intr, k } => {
                let s = regs[src as usize];
                regs[dst as usize] = match k {
                    K::F32 => b32(intr1_f32(intr, f32v(s))),
                    _ => b64(intr1_f64(intr, f64v(s))),
                };
            }
            _ => unreachable!("non-hoistable op in prelude"),
        }
    }
}

/// Mutable per-item/per-launch state threaded through tape execution.
pub(crate) struct TapeCtx<'a> {
    pub bufs: &'a [Option<&'a SharedBuf>],
    pub gsize: [usize; 3],
    pub counters: &'a mut Counters,
    pub trace: &'a mut Vec<(u32, u32, u64)>,
    pub trace_on: bool,
    pub writes: &'a mut Vec<WriteRec>,
    pub race_on: bool,
    pub item: u64,
    pub gid: [usize; 3],
    pub lid: usize,
    pub group: usize,
    pub lsize: usize,
}

/// Executes one phase of a compiled tape for one work-item. Returns `true`
/// when the item executed `Ret` (early exit).
/// Unchecked register read. The tape passed [`validate`] at compile time
/// (every operand `< nregs`) and `exec_phase` asserts the register file is
/// at least `nregs` long, so the index is always in bounds.
#[inline(always)]
fn rg(regs: &[u64], r: R) -> u64 {
    debug_assert!((r as usize) < regs.len());
    // SAFETY: see doc comment — `validate` + the `exec_phase` entry assert.
    unsafe { *regs.get_unchecked(r as usize) }
}

/// Unchecked register write; same justification as [`rg`].
#[inline(always)]
fn wr(regs: &mut [u64], r: R, v: u64) {
    debug_assert!((r as usize) < regs.len());
    // SAFETY: see doc comment on `rg`.
    unsafe { *regs.get_unchecked_mut(r as usize) = v }
}

pub(crate) fn exec_phase(
    c: &Compiled,
    phase: usize,
    regs: &mut [u64],
    privs: &mut [Vec<u64>],
    locals: &mut [Vec<u64>],
    t: &mut TapeCtx<'_>,
) -> bool {
    assert!(regs.len() >= c.nregs, "register file smaller than tape nregs");
    let ops = &c.ops[..];
    let mut pc = c.phase_starts[phase] as usize;
    loop {
        // SAFETY: `validate` checked that every jump target and phase entry
        // is inside the tape and that the tape ends in `Ret`/`Halt`, so by
        // induction `pc` stays in bounds (a non-terminator is never final,
        // hence `pc + 1` lands on an op; jumps land on validated targets).
        match *unsafe { ops.get_unchecked(pc) } {
            Op::Const { dst, bits } => wr(regs, dst, bits),
            Op::Gid { dst, dim } => wr(regs, dst, bi32(t.gid[dim as usize] as i32)),
            Op::Gsz { dst, dim } => wr(regs, dst, bi32(t.gsize[dim as usize] as i32)),
            Op::Lid { dst, dim } => wr(regs, dst, bi32(if dim == 0 { t.lid as i32 } else { 0 })),
            Op::Lsz { dst, dim } => wr(regs, dst, bi32(if dim == 0 { t.lsize as i32 } else { 1 })),
            Op::Grp { dst, dim } => wr(regs, dst, bi32(if dim == 0 { t.group as i32 } else { 0 })),
            Op::Mov { dst, src } => wr(regs, dst, rg(regs, src)),
            Op::Cast { dst, src, from, to } => wr(regs, dst, cast_bits(from, to, rg(regs, src))),
            Op::AsI64 { dst, src, from } => wr(regs, dst, bi64(to_i64(from, rg(regs, src)))),
            Op::MaxOne { dst } => {
                wr(regs, dst, bi64(i64v(rg(regs, dst)).max(1)));
            }
            Op::I64ToI32 { dst, src } => wr(regs, dst, bi32(i64v(rg(regs, src)) as i32)),
            Op::AddI64 { dst, a, b } => wr(regs, dst, bi64(i64v(rg(regs, a)) + i64v(rg(regs, b)))),
            Op::JgeI64 { a, b, target } => {
                if i64v(rg(regs, a)) >= i64v(rg(regs, b)) {
                    pc = target as usize;
                    continue;
                }
            }
            Op::Neg { dst, src, k } => {
                let s = rg(regs, src);
                let v = match k {
                    K::F32 => b32(-f32v(s)),
                    K::F64 => b64(-f64v(s)),
                    K::I32 => bi32(-i32v(s)),
                    K::Bool => bi32(-((s != 0) as i32)),
                };
                wr(regs, dst, v);
            }
            Op::Not { dst, src, k } => {
                wr(regs, dst, bb(!truthy(k, rg(regs, src))));
            }
            Op::Bin { dst, a, b, op, k } => {
                wr(regs, dst, bin_bits(op, k, rg(regs, a), rg(regs, b)));
            }
            Op::Logic { dst, a, b, ka, kb, or } => {
                let (x, y) = (truthy(ka, rg(regs, a)), truthy(kb, rg(regs, b)));
                wr(regs, dst, bb(if or { x || y } else { x && y }));
            }
            Op::MinMax { dst, a, b, k, max } => {
                let (x, y) = (rg(regs, a), rg(regs, b));
                let v = match k {
                    K::F32 => {
                        let (p, q) = (f32v(x) as f64, f32v(y) as f64);
                        b32((if max { p.max(q) } else { p.min(q) }) as f32)
                    }
                    K::F64 => {
                        let (p, q) = (f64v(x), f64v(y));
                        b64(if max { p.max(q) } else { p.min(q) })
                    }
                    K::I32 => {
                        let (p, q) = (i32v(x) as i64, i32v(y) as i64);
                        bi32((if max { p.max(q) } else { p.min(q) }) as i32)
                    }
                    K::Bool => unreachable!("min/max never promotes to bool"),
                };
                wr(regs, dst, v);
            }
            Op::Intr1 { dst, src, intr, k } => {
                let s = rg(regs, src);
                let v = match k {
                    K::F32 => b32(intr1_f32(intr, f32v(s))),
                    _ => b64(intr1_f64(intr, f64v(s))),
                };
                wr(regs, dst, v);
            }
            Op::LdG { dst, buf, idx, site, constant } => {
                let i = i64v(rg(regs, idx));
                let b = t.bufs[buf as usize].expect("buffer bound");
                if constant {
                    t.counters.loads_constant += 1;
                } else {
                    let eb = b.elem_bytes() as u64;
                    t.counters.loads_global += 1;
                    t.counters.bytes_loaded += eb;
                    if t.trace_on {
                        t.trace.push((site, 0, ((buf as u64) << 40) | ((i as u64) * eb)));
                    }
                }
                debug_assert!(
                    i >= 0 && (i as usize) < b.len(),
                    "load out of bounds: param {buf}[{i}] (len {})",
                    b.len()
                );
                // SAFETY: launch contract — no concurrent writer of this
                // element (same contract as the tree-walker).
                wr(regs, dst, unsafe { b.get_bits(i as usize) });
            }
            Op::StG { buf, idx, val, vk, site } => {
                let i = i64v(rg(regs, idx));
                let b = t.bufs[buf as usize].expect("buffer bound");
                let eb = b.elem_bytes() as u64;
                t.counters.stores_global += 1;
                t.counters.bytes_stored += eb;
                if t.trace_on {
                    t.trace.push((site, 0, ((buf as u64) << 40) | ((i as u64) * eb)));
                }
                if t.race_on {
                    t.writes.push((buf as u32, i as u64, t.item, site));
                }
                debug_assert!(
                    i >= 0 && (i as usize) < b.len(),
                    "store out of bounds: param {buf}[{i}] (len {})",
                    b.len()
                );
                // SAFETY: launch contract — element disjointness across
                // work-items (verified by race-check mode).
                unsafe { b.set(i as usize, bits_value(vk, rg(regs, val))) };
            }
            Op::LdP { dst, arr, idx } => {
                wr(regs, dst, privs[arr as usize][i64v(rg(regs, idx)) as usize]);
            }
            Op::StP { arr, idx, val, vk, k } => {
                let i = i64v(rg(regs, idx)) as usize;
                privs[arr as usize][i] = cast_bits(vk, k, rg(regs, val));
            }
            Op::LdL { dst, arr, idx } => {
                wr(regs, dst, locals[arr as usize][i64v(rg(regs, idx)) as usize]);
            }
            Op::StL { arr, idx, val, vk, k } => {
                let i = i64v(rg(regs, idx)) as usize;
                locals[arr as usize][i] = cast_bits(vk, k, rg(regs, val));
            }
            Op::DeclPriv { arr, len } => {
                let n = i64v(rg(regs, len)) as usize;
                let p = &mut privs[arr as usize];
                p.clear();
                p.resize(n, 0);
            }
            Op::DeclLocal { arr, len } => {
                let n = i64v(rg(regs, len)) as usize;
                let l = &mut locals[arr as usize];
                if l.len() != n {
                    l.clear();
                    l.resize(n, 0);
                }
            }
            Op::Flops { n } => t.counters.flops += n as u64,
            Op::Jmp { target } => {
                pc = target as usize;
                continue;
            }
            Op::Jz { cond, k, target } => {
                if !truthy(k, rg(regs, cond)) {
                    pc = target as usize;
                    continue;
                }
            }
            Op::Ret => return true,
            Op::Halt => return false,
        }
        pc += 1;
    }
}

#[inline(always)]
fn intr1_f32(i: Intrinsic, x: f32) -> f32 {
    match i {
        Intrinsic::Sqrt => x.sqrt(),
        Intrinsic::Fabs => x.abs(),
        Intrinsic::Exp => x.exp(),
        Intrinsic::Log => x.ln(),
        Intrinsic::Sin => x.sin(),
        Intrinsic::Cos => x.cos(),
        _ => unreachable!("not a unary intrinsic"),
    }
}

#[inline(always)]
fn intr1_f64(i: Intrinsic, x: f64) -> f64 {
    match i {
        Intrinsic::Sqrt => x.sqrt(),
        Intrinsic::Fabs => x.abs(),
        Intrinsic::Exp => x.exp(),
        Intrinsic::Log => x.ln(),
        Intrinsic::Sin => x.sin(),
        Intrinsic::Cos => x.cos(),
        _ => unreachable!("not a unary intrinsic"),
    }
}

#[inline(always)]
fn bin_bits(op: BinOp, k: K, x: u64, y: u64) -> u64 {
    match k {
        K::F32 => {
            let (a, b) = (f32v(x), f32v(y));
            match op {
                BinOp::Add => b32(a + b),
                BinOp::Sub => b32(a - b),
                BinOp::Mul => b32(a * b),
                BinOp::Div => b32(a / b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::Rem | BinOp::And | BinOp::Or => unreachable!("not monomorphised to f32"),
            }
        }
        K::F64 => {
            let (a, b) = (f64v(x), f64v(y));
            match op {
                BinOp::Add => b64(a + b),
                BinOp::Sub => b64(a - b),
                BinOp::Mul => b64(a * b),
                BinOp::Div => b64(a / b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::Rem | BinOp::And | BinOp::Or => unreachable!("not monomorphised to f64"),
            }
        }
        K::I32 => {
            let (a, b) = (i32v(x), i32v(y));
            match op {
                BinOp::Add => bi32(a.wrapping_add(b)),
                BinOp::Sub => bi32(a.wrapping_sub(b)),
                BinOp::Mul => bi32(a.wrapping_mul(b)),
                BinOp::Div => bi32(a / b),
                BinOp::Rem => bi32(a % b),
                BinOp::Eq => bb(a == b),
                BinOp::Ne => bb(a != b),
                BinOp::Lt => bb(a < b),
                BinOp::Le => bb(a <= b),
                BinOp::Gt => bb(a > b),
                BinOp::Ge => bb(a >= b),
                BinOp::And | BinOp::Or => unreachable!("logic ops use Op::Logic"),
            }
        }
        K::Bool => unreachable!("binary ops never monomorphise to bool"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufData;
    use crate::buffer::SharedBuf;
    use crate::exec::{launch_wg_engine, prepare, ArgBind, Engine, ExecMode};
    use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};

    /// out[gid] = x[gid] * scale + bias-ish expression, with `expr` as the
    /// stored value; single f32 input/output pair plus one scalar `a`.
    fn unary_kernel(name: &str, expr: KExpr) -> Kernel {
        Kernel {
            name: name.into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("a", ScalarKind::F32),
            ],
            body: vec![KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: expr,
            }],
            work_dim: 1,
        }
        .resolve_real(ScalarKind::F32)
    }

    /// Launches on the differential engine (tree vs tape bit-equality is
    /// asserted inside) and returns the output buffer.
    fn run_diff(k: &Kernel, n: usize, a: f32) -> Vec<f64> {
        let prep = prepare(k).unwrap();
        assert!(prep.has_tape(), "kernel should compile to a tape");
        let x = SharedBuf::new(BufData::from((0..n).map(|i| i as f32).collect::<Vec<_>>()));
        let out = SharedBuf::new(BufData::from(vec![0.0f32; n]));
        launch_wg_engine(
            &prep,
            &[ArgBind::Buf(&x), ArgBind::Buf(&out), ArgBind::Val(Value::F32(a))],
            &[n],
            None,
            ExecMode::Model { sample_stride: 1 },
            true,
            128,
            Engine::Differential,
        )
        .unwrap();
        out.data().to_f64_vec()
    }

    fn tape_of(k: &Kernel) -> Compiled {
        prepare(k).unwrap().tape.take().expect("tape")
    }

    #[test]
    fn constant_expressions_fold_to_a_single_const() {
        // (2 + 3) is constant: the Add folds, and the folded constant (an
        // operand-free Const) is then hoisted into the warp prelude.
        let k = unary_kernel(
            "fold5",
            KExpr::load(MemRef::Param(0), KExpr::GlobalId(0))
                * (KExpr::real(2.0) + KExpr::real(3.0)),
        );
        let t = tape_of(&k);
        assert!(t.optimized_ops > 0);
        let five = (5.0f32).to_bits() as u64;
        assert!(
            t.pre.iter().any(|op| matches!(op, Op::Const { bits, .. } if *bits == five)),
            "folded 5.0 should sit in the prelude: {:?}",
            t.pre
        );
        let out = run_diff(&k, 64, 0.0);
        assert_eq!(out[7], 7.0 * 5.0);
    }

    #[test]
    fn scalar_invariant_ops_hoist_into_the_prelude() {
        // a*a depends only on a never-written scalar slot: computed once
        // per register file instead of once per item, even though it sits
        // in the middle of the per-item expression.
        let k = unary_kernel(
            "hoistsq",
            KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) + KExpr::var("a") * KExpr::var("a"),
        );
        let t = tape_of(&k);
        assert!(
            t.pre.iter().any(|op| matches!(op, Op::Bin { op: BinOp::Mul, .. })),
            "a*a should be hoisted: {:?}",
            t.pre
        );
        let out = run_diff(&k, 64, 3.0);
        assert_eq!(out[11], 11.0 + 9.0);
    }

    #[test]
    fn repeated_gid_reads_dedupe_into_the_item_prelude() {
        // GlobalId(0) appears three times; codegen re-emits the read at
        // each use site, the context-CSE pass leaves exactly one copy,
        // executed once per item.
        let k = unary_kernel(
            "gidcse",
            KExpr::load(MemRef::Param(0), KExpr::GlobalId(0))
                + KExpr::Cast(
                    ScalarKind::F32,
                    Box::new(KExpr::GlobalId(0) * KExpr::int(2) + KExpr::GlobalId(0)),
                ),
        );
        let t = tape_of(&k);
        let in_item_pre = t.item_pre.iter().filter(|op| matches!(op, Op::Gid { .. })).count();
        let in_tape = t.ops.iter().filter(|op| matches!(op, Op::Gid { .. })).count();
        assert_eq!(in_item_pre, 1, "one canonical Gid: {:?}", t.item_pre);
        assert_eq!(in_tape, 0, "all in-tape Gid reads deduped");
        let out = run_diff(&k, 64, 0.0);
        assert_eq!(out[9], 9.0 + (9 * 2 + 9) as f64);
    }

    #[test]
    fn optimizer_preserves_counters_and_transactions() {
        // The differential engine compares values, counters, and modeled
        // transaction bytes bit-for-bit between the optimized tape and the
        // unoptimized tree-walker — on a kernel exercising fold + hoist +
        // context CSE together.
        let k = unary_kernel(
            "alltogether",
            (KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) + KExpr::var("a") * KExpr::var("a"))
                * (KExpr::real(1.0) + KExpr::real(0.5))
                + KExpr::Cast(ScalarKind::F32, Box::new(KExpr::GlobalId(0))),
        );
        let out = run_diff(&k, 200, 2.0);
        assert_eq!(out[13], (13.0 + 4.0) * 1.5 + 13.0);
    }

    #[test]
    fn validated_tapes_keep_terminators_and_bounds() {
        let k = unary_kernel("vcheck", KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)));
        let t = tape_of(&k);
        assert!(validate(&t), "fresh tapes must pass validation");
        let mut broken = t;
        broken.ops.push(Op::Mov { dst: broken.nregs as R, src: 0 });
        assert!(!validate(&broken), "out-of-range register must be rejected");
    }
}

//! Z-slab domain sharding across multiple [`Device`]s (DESIGN.md §12).
//!
//! A 3-D grid of `nz` z-planes (`plane = nx·ny` elements each) is
//! partitioned into contiguous slabs, one per device. Every device
//! allocates its field buffers with two extra *halo planes* — local plane
//! 0 below and local plane `owned+1` above its owned range — so the
//! 7-point stencil can read `z±1` neighbours without leaving the local
//! allocation. Slab kernels are the unmodified grid kernels with
//! `get_global_id(2)` shifted by +1 (`Kernel::shift_gid`), launched over
//! `[nx, ny, owned]` work-items.
//!
//! Per step, the one-plane-deep edges of each seam are exchanged as
//! explicit device-to-device copies *before* the stencil launch. Halo
//! traffic is accounted once per copy, on the destination device, under
//! `vgpu.halo.{bytes,copies}` ([`Device::write_halo_region`]) — never
//! under `vgpu.xfer.*`, which keeps a sharded run's host-transfer totals
//! bit-comparable with the single-device leg.
//!
//! The ownership convention makes the sharded counters sum exactly to the
//! unsharded ones: slab 0's owned range starts at global plane 0 and the
//! last slab's ends at `nz` (the grid's outer halo planes are *owned*,
//! fabricated zero planes beyond them are never accessed), so
//! `Σ owned·plane = nx·ny·nz` work-items — identical to the single-device
//! volume launch.

use crate::buffer::BufData;
use crate::device::{BufId, Device};
use crate::telemetry;

/// Number of devices requested via `VGPU_DEVICES` (default 1). Values
/// < 1 are clamped to 1.
pub fn device_count_from_env() -> usize {
    std::env::var("VGPU_DEVICES").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(1).max(1)
}

/// A partition of `nz` z-planes into contiguous owned slabs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabPartition {
    nz: usize,
    /// `cuts[d]..cuts[d+1]` is device `d`'s owned global plane range;
    /// `cuts[0] = 0`, `cuts[D] = nz`, strictly increasing.
    cuts: Vec<usize>,
}

impl SlabPartition {
    /// A balanced partition: plane counts differ by at most one, earlier
    /// slabs take the remainder.
    pub fn balanced(nz: usize, devices: usize) -> SlabPartition {
        assert!(devices >= 1, "need at least one device");
        assert!(nz >= devices, "cannot give {devices} devices at least one of {nz} planes");
        let (base, rem) = (nz / devices, nz % devices);
        let mut cuts = Vec::with_capacity(devices + 1);
        let mut at = 0;
        cuts.push(0);
        for d in 0..devices {
            at += base + usize::from(d < rem);
            cuts.push(at);
        }
        SlabPartition { nz, cuts }
    }

    /// A partition from explicit cut planes (`cuts[0] = 0`,
    /// `cuts[last] = nz`, strictly increasing). Panics when malformed.
    pub fn from_cuts(nz: usize, cuts: Vec<usize>) -> SlabPartition {
        assert!(cuts.len() >= 2, "need at least one slab");
        assert_eq!(cuts[0], 0, "first cut must be 0");
        assert_eq!(*cuts.last().unwrap(), nz, "last cut must be nz");
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts must be strictly increasing");
        SlabPartition { nz, cuts }
    }

    /// Number of slabs.
    pub fn device_count(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Total plane count of the partitioned grid.
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// The cut planes (`device_count() + 1` entries).
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// First global plane owned by slab `d`.
    pub fn first_owned(&self, d: usize) -> usize {
        self.cuts[d]
    }

    /// Number of planes owned by slab `d`.
    pub fn owned(&self, d: usize) -> usize {
        self.cuts[d + 1] - self.cuts[d]
    }

    /// Planes in slab `d`'s local allocation: owned + 2 halo planes.
    pub fn local_planes(&self, d: usize) -> usize {
        self.owned(d) + 2
    }

    /// Global plane index corresponding to slab `d`'s local plane 0 (the
    /// bottom halo). `-1` for slab 0, whose bottom halo is a fabricated
    /// zero plane below the grid.
    pub fn local_base(&self, d: usize) -> isize {
        self.cuts[d] as isize - 1
    }

    /// Element offset subtracted from a global linear index to obtain the
    /// local index in slab `d`'s allocation (may be negative: slab 0's
    /// local indices sit one plane *above* their global counterparts).
    pub fn elem_shift(&self, d: usize, plane: usize) -> isize {
        self.local_base(d) * plane as isize
    }

    /// Maps a global linear element index owned by slab `d` to its local
    /// index.
    pub fn to_local(&self, d: usize, plane: usize, global_idx: usize) -> usize {
        let local = global_idx as isize - self.elem_shift(d, plane);
        debug_assert!(local >= 0);
        local as usize
    }
}

/// Exchanges the curr-field seam planes between neighbouring slabs:
/// for every seam `d | d+1`, device `d`'s top owned plane is copied into
/// device `d+1`'s bottom halo plane, and device `d+1`'s bottom owned
/// plane into device `d`'s top halo plane. `bufs[d]` is the field buffer
/// on device `d` (laid out as [`SlabPartition::local_planes`] planes of
/// `plane` elements). Each plane copy is accounted once, on the
/// destination device, under `vgpu.halo.{bytes,copies}`, and shows up as
/// a `DevToDev` transfer span on the destination's transfer track.
pub fn halo_exchange(devices: &mut [Device], bufs: &[BufId], part: &SlabPartition, plane: usize) {
    assert_eq!(devices.len(), part.device_count());
    assert_eq!(bufs.len(), part.device_count());
    for d in 0..part.device_count() - 1 {
        // Device d's top owned plane is local plane `owned(d)`; its top
        // halo is `owned(d)+1`. Device d+1's bottom owned plane is local
        // plane 1; its bottom halo is 0.
        let top_owned: BufData = devices[d].peek_region(bufs[d], part.owned(d) * plane, plane);
        let bottom_owned: BufData = devices[d + 1].peek_region(bufs[d + 1], plane, plane);
        // Tag each received plane with the sender's sanitizer version
        // clock, so a later step that reads the seam without a fresh
        // exchange is reported as a stale-halo read.
        let down_prov = devices[d].halo_provenance(bufs[d]);
        let up_prov = devices[d + 1].halo_provenance(bufs[d + 1]);
        devices[d + 1].write_halo_region_tagged(bufs[d + 1], 0, top_owned, down_prov);
        devices[d].write_halo_region_tagged(
            bufs[d],
            (part.owned(d) + 1) * plane,
            bottom_owned,
            up_prov,
        );
    }
}

/// Current totals of the sharding counters, for delta assertions in
/// tests and bench provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HaloTotals {
    /// `vgpu.halo.bytes` — halo-exchange bytes (DevToDev).
    pub bytes: u64,
    /// `vgpu.halo.copies` — halo-exchange plane copies.
    pub copies: u64,
    /// `vgpu.halo.replicate.bytes` — replicated-upload bytes.
    pub replicate_bytes: u64,
    /// `vgpu.halo.replicate.transfers` — replicated uploads.
    pub replicate_transfers: u64,
}

impl HaloTotals {
    /// Snapshot of the process-wide halo counters.
    pub fn snapshot() -> HaloTotals {
        let reg = telemetry::registry();
        HaloTotals {
            bytes: reg.counter("vgpu.halo.bytes").get(),
            copies: reg.counter("vgpu.halo.copies").get(),
            replicate_bytes: reg.counter("vgpu.halo.replicate.bytes").get(),
            replicate_transfers: reg.counter("vgpu.halo.replicate.transfers").get(),
        }
    }

    /// Componentwise difference vs an earlier snapshot.
    pub fn delta_since(&self, earlier: &HaloTotals) -> HaloTotals {
        HaloTotals {
            bytes: self.bytes - earlier.bytes,
            copies: self.copies - earlier.copies,
            replicate_bytes: self.replicate_bytes - earlier.replicate_bytes,
            replicate_transfers: self.replicate_transfers - earlier.replicate_transfers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::prelude::ScalarKind;

    #[test]
    fn balanced_partition_covers_grid() {
        let p = SlabPartition::balanced(16, 3);
        assert_eq!(p.cuts(), &[0, 6, 11, 16]);
        assert_eq!((0..3).map(|d| p.owned(d)).sum::<usize>(), 16);
        assert_eq!(p.local_planes(0), 8);
        assert_eq!(p.local_base(0), -1);
        assert_eq!(p.local_base(1), 5);
    }

    #[test]
    fn to_local_round_trips_ownership() {
        let p = SlabPartition::from_cuts(16, vec![0, 5, 16]);
        let plane = 12;
        // Global plane 5 cell 3 is owned by slab 1 and sits at its local
        // plane 1 (one halo plane below).
        assert_eq!(p.to_local(1, plane, 5 * plane + 3), plane + 3);
        // Slab 0's global plane 0 maps one plane *up* (above its
        // fabricated bottom halo).
        assert_eq!(p.to_local(0, plane, 3), plane + 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn malformed_cuts_rejected() {
        SlabPartition::from_cuts(8, vec![0, 5, 5, 8]);
    }

    #[test]
    fn halo_exchange_moves_seam_planes_and_counts_once() {
        let plane = 4;
        let part = SlabPartition::from_cuts(4, vec![0, 2, 4]);
        let mut devices = vec![Device::gtx780(), Device::gtx780()];
        // Device 0: 2 owned + 2 halo planes; fill owned planes with 1.0.
        let b0 = devices[0].create_buffer(ScalarKind::F32, part.local_planes(0) * plane);
        let b1 = devices[1].create_buffer(ScalarKind::F32, part.local_planes(1) * plane);
        devices[0].write_region(b0, plane, BufData::F32(vec![1.0; 2 * plane]));
        devices[1].write_region(b1, plane, BufData::F32(vec![2.0; 2 * plane]));
        let before = HaloTotals::snapshot();
        halo_exchange(&mut devices, &[b0, b1], &part, plane);
        let d = HaloTotals::snapshot().delta_since(&before);
        assert_eq!(d.copies, 2);
        assert_eq!(d.bytes, 2 * (plane as u64) * 4);
        assert_eq!(d.replicate_transfers, 0);
        // Device 0's top halo now holds device 1's bottom owned plane.
        let top_halo = devices[0].peek_region(b0, 3 * plane, plane);
        assert_eq!(top_halo, BufData::F32(vec![2.0; plane]));
        // Device 1's bottom halo holds device 0's top owned plane.
        let bottom_halo = devices[1].peek_region(b1, 0, plane);
        assert_eq!(bottom_halo, BufData::F32(vec![1.0; plane]));
    }
}

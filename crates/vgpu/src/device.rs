//! The virtual device: buffers + an in-order command queue.
//!
//! Mirrors the slice of the OpenCL host API the paper's host primitives
//! generate calls to: buffer creation, `enqueueWriteBuffer` /
//! `enqueueReadBuffer`, kernel launch with profiling. Launches run
//! synchronously (an in-order queue with an implicit `finish` after every
//! command), which matches how the paper measures kernels via the OpenCL
//! profiling API.

use crate::buffer::{BufData, SharedBuf};
use crate::exec::{self, ArgBind, Engine, ExecError, ExecMode, LaunchStats, Prepared};
use crate::perfmodel::{modeled_time_s, ModelInput};
use crate::profile::DeviceProfile;
use lift::kast::Kernel;
use lift::prelude::{ScalarKind, Value};

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub usize);

/// A kernel launch argument.
#[derive(Debug, Clone, Copy)]
pub enum Arg {
    /// Device buffer.
    Buf(BufId),
    /// Scalar value.
    Val(Value),
}

/// Profiling record of one launch (the OpenCL event of the paper's §VI).
#[derive(Debug, Clone)]
pub struct KernelEvent {
    /// Kernel name.
    pub name: String,
    /// Raw execution statistics.
    pub stats: LaunchStats,
    /// Modeled device time in seconds (only when the launch ran in
    /// [`ExecMode::Model`]), per this device's profile and the precision of
    /// the kernel's float traffic.
    pub modeled_s: Option<f64>,
}

/// The virtual GPU.
pub struct Device {
    profile: DeviceProfile,
    buffers: Vec<SharedBuf>,
    race_check: bool,
    engine: Engine,
    events: Vec<KernelEvent>,
}

impl Device {
    /// A device with the given performance profile. The execution engine
    /// defaults per the `VGPU_ENGINE` environment variable (see [`Engine`]).
    pub fn new(profile: DeviceProfile) -> Self {
        Device {
            profile,
            buffers: Vec::new(),
            race_check: false,
            engine: Engine::from_env(),
            events: Vec::new(),
        }
    }

    /// A device profiled as the paper's GTX 780 (the platform of Figure 2).
    pub fn gtx780() -> Self {
        Self::new(DeviceProfile::gtx780())
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Enables/disables the dynamic write-race detector (see
    /// [`crate::buffer`]). Expensive; intended for tests.
    pub fn set_race_check(&mut self, on: bool) {
        self.race_check = on;
    }

    /// Selects the execution engine for subsequent launches.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Creates a zero-filled buffer.
    pub fn create_buffer(&mut self, kind: ScalarKind, len: usize) -> BufId {
        self.buffers.push(SharedBuf::new(BufData::zeros(kind, len)));
        BufId(self.buffers.len() - 1)
    }

    /// Creates a buffer from host data (`enqueueWriteBuffer` at creation).
    pub fn upload(&mut self, data: BufData) -> BufId {
        self.buffers.push(SharedBuf::new(data));
        BufId(self.buffers.len() - 1)
    }

    /// Overwrites a buffer from host data.
    pub fn write(&mut self, id: BufId, data: BufData) {
        assert_eq!(data.len(), self.buffers[id.0].len(), "buffer size mismatch");
        *self.buffers[id.0].data_mut() = data;
    }

    /// Reads a buffer back to the host (`enqueueReadBuffer`).
    pub fn read(&self, id: BufId) -> BufData {
        self.buffers[id.0].data().clone()
    }

    /// Buffer length in elements.
    pub fn len(&self, id: BufId) -> usize {
        self.buffers[id.0].len()
    }

    /// Compiles a kernel for this device.
    pub fn compile(&self, kernel: &Kernel) -> Result<Prepared, ExecError> {
        exec::prepare(kernel)
    }

    /// Launches a prepared kernel and records a profiling event.
    pub fn launch(
        &mut self,
        prep: &Prepared,
        args: &[Arg],
        global: &[usize],
        mode: ExecMode,
    ) -> Result<LaunchStats, ExecError> {
        self.launch_wg(prep, args, global, None, mode)
    }

    /// Launches with an explicit workgroup size — required for kernels that
    /// use barriers, local memory, or local/group ids.
    pub fn launch_wg(
        &mut self,
        prep: &Prepared,
        args: &[Arg],
        global: &[usize],
        local: Option<usize>,
        mode: ExecMode,
    ) -> Result<LaunchStats, ExecError> {
        let binds: Vec<ArgBind<'_>> = args
            .iter()
            .map(|a| match a {
                Arg::Buf(id) => ArgBind::Buf(&self.buffers[id.0]),
                Arg::Val(v) => ArgBind::Val(*v),
            })
            .collect();
        let stats = exec::launch_wg_engine(
            prep,
            &binds,
            global,
            local,
            mode,
            self.race_check,
            self.profile.transaction_bytes,
            self.engine,
        )?;
        let double = prep.params.iter().any(|p| p.is_buffer && p.kind == ScalarKind::F64);
        let modeled_s = stats.transaction_bytes.map(|tb| {
            modeled_time_s(
                &ModelInput {
                    transaction_bytes: tb,
                    flops: stats.counters.flops,
                    double_precision: double,
                },
                &self.profile,
            )
        });
        self.events.push(KernelEvent { name: prep.name.clone(), stats: stats.clone(), modeled_s });
        Ok(stats)
    }

    /// The profiling event log, oldest first.
    pub fn events(&self) -> &[KernelEvent] {
        &self.events
    }

    /// Clears the profiling event log.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::kast::{KExpr, KStmt, KernelParam, MemRef};
    use lift::prelude::BinOp;

    fn double_kernel(kind: ScalarKind) -> Kernel {
        Kernel {
            name: "dbl".into(),
            params: vec![
                KernelParam::global_buf("x", kind),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![
                KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::real(2.0),
                },
            ],
            work_dim: 1,
        }
        .resolve_real(if kind == ScalarKind::F64 {
            ScalarKind::F64
        } else {
            ScalarKind::F32
        })
    }

    #[test]
    fn buffer_roundtrip_and_launch() {
        let mut dev = Device::gtx780();
        let x = dev.upload(BufData::from(vec![1.0f32, 2.0, 3.0]));
        let prep = dev.compile(&double_kernel(ScalarKind::F32)).unwrap();
        dev.launch(&prep, &[Arg::Buf(x), Arg::Val(Value::I32(3))], &[32], ExecMode::Fast).unwrap();
        assert_eq!(dev.read(x), BufData::from(vec![2.0f32, 4.0, 6.0]));
        assert_eq!(dev.events().len(), 1);
        assert!(dev.events()[0].modeled_s.is_none());
    }

    #[test]
    fn modeled_launch_records_time() {
        let mut dev = Device::gtx780();
        let x = dev.create_buffer(ScalarKind::F64, 1024);
        let prep = dev.compile(&double_kernel(ScalarKind::F64)).unwrap();
        dev.launch(
            &prep,
            &[Arg::Buf(x), Arg::Val(Value::I32(1024))],
            &[1024],
            ExecMode::Model { sample_stride: 1 },
        )
        .unwrap();
        let ev = &dev.events()[0];
        assert!(ev.modeled_s.unwrap() > 0.0);
        assert!(ev.stats.transaction_bytes.unwrap() >= 1024 * 8 * 2);
    }
}

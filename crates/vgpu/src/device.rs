//! The virtual device: buffers + an in-order command queue.
//!
//! Mirrors the slice of the OpenCL host API the paper's host primitives
//! generate calls to: buffer creation, `enqueueWriteBuffer` /
//! `enqueueReadBuffer`, kernel launch with profiling. Launches run
//! synchronously (an in-order queue with an implicit `finish` after every
//! command), which matches how the paper measures kernels via the OpenCL
//! profiling API.

use crate::artifact;
use crate::buffer::{BufData, SharedBuf};
use crate::exec::{self, ArgBind, Engine, ExecError, ExecMode, LaunchPlan, LaunchStats, Prepared};
use crate::perfmodel::{modeled_time_s, ModelInput};
use crate::profile::DeviceProfile;
use crate::telemetry::{self, Event, KernelMetrics, TrackId, TransferDir};
use lift::kast::Kernel;
use lift::prelude::{ScalarKind, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub usize);

/// A kernel launch argument.
#[derive(Debug, Clone, Copy)]
pub enum Arg {
    /// Device buffer.
    Buf(BufId),
    /// Scalar value.
    Val(Value),
}

/// Profiling record of one launch (the OpenCL event of the paper's §VI).
#[derive(Debug, Clone)]
pub struct KernelEvent {
    /// Kernel name.
    pub name: String,
    /// Raw execution statistics.
    pub stats: LaunchStats,
    /// Modeled device time in seconds (only when the launch ran in
    /// [`ExecMode::Model`]), per this device's profile and the precision of
    /// the kernel's float traffic.
    pub modeled_s: Option<f64>,
}

/// Distinguishes multiple devices of the same profile in trace track names.
static DEVICE_SEQ: AtomicU32 = AtomicU32::new(0);

/// Lazily allocated telemetry state for one device: its trace tracks and
/// the cumulative modeled-time clock that positions [`Event::ModeledKernel`]
/// spans. The clock is an `AtomicU64` holding `f64` bits so `&self` methods
/// can advance it.
struct DevTele {
    kernel_track: TrackId,
    transfer_track: TrackId,
    modeled_track: TrackId,
    model_clock_us: AtomicU64,
}

impl DevTele {
    /// Advances the modeled clock by `dur_us` and returns the span's start.
    fn advance_model_clock(&self, dur_us: f64) -> f64 {
        let mut cur = self.model_clock_us.load(Ordering::Relaxed);
        loop {
            let start = f64::from_bits(cur);
            match self.model_clock_us.compare_exchange_weak(
                cur,
                (start + dur_us).to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return start,
                Err(now) => cur = now,
            }
        }
    }
}

/// The virtual GPU.
pub struct Device {
    profile: DeviceProfile,
    buffers: Vec<SharedBuf>,
    race_check: bool,
    engine: Engine,
    events: Vec<KernelEvent>,
    tele: OnceLock<DevTele>,
    /// Launch plans memoised per (kernel id, binding signature); see
    /// [`Device::binding_sig`]. A stepping simulation re-launching the same
    /// kernel resolves argument matching and the tape-fallback decision
    /// once instead of per step. Plans are `Arc`-shared with the
    /// process-wide [`crate::artifact`] map, so a fresh device launching a
    /// kernel another device already planned adopts that plan instead of
    /// replanning.
    plans: HashMap<(u64, Vec<u8>), Arc<LaunchPlan>>,
}

/// Bytes occupied by a buffer's payload.
fn byte_len(len: usize, elem_bytes: usize) -> u64 {
    (len * elem_bytes) as u64
}

/// Sizes the global rayon pool from the `VGPU_THREADS` environment variable
/// exactly once per process. Benches and `VGPU_ENGINE=diff` runs on shared
/// machines set it for reproducible parallelism; unset (or unparsable)
/// leaves rayon's own default. The build error when another component
/// already initialised the pool is deliberately ignored — the override is
/// best-effort.
fn init_thread_pool() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if let Some(n) = std::env::var("VGPU_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            if n > 0 {
                let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
            }
        }
    });
}

impl Device {
    /// A device with the given performance profile. The execution engine
    /// defaults per the `VGPU_ENGINE` environment variable (see [`Engine`]),
    /// and the worker pool honours `VGPU_THREADS` (see [`init_thread_pool`]).
    pub fn new(profile: DeviceProfile) -> Self {
        init_thread_pool();
        Device {
            profile,
            buffers: Vec::new(),
            race_check: false,
            engine: Engine::from_env(),
            events: Vec::new(),
            tele: OnceLock::new(),
            plans: HashMap::new(),
        }
    }

    /// One byte per argument describing the launch signature a cached
    /// [`LaunchPlan`] depends on: the bound buffer's *current* element kind
    /// for buffer args, and `0xF0 | kind` for scalar values. [`Device::write`]
    /// may change a buffer's kind, which flips the tape-fallback decision —
    /// keying on the kinds keeps stale plans unreachable. Scalar kinds are
    /// part of the signature too: a plan records each scalar slot's kind, so
    /// launches alternating single/double scalar arguments must resolve to
    /// distinct plans rather than thrash one cache entry.
    fn binding_sig(&self, args: &[Arg]) -> Vec<u8> {
        args.iter()
            .map(|a| match a {
                Arg::Buf(id) => self.buffers[id.0].kind() as u8,
                Arg::Val(v) => 0xF0 | v.kind() as u8,
            })
            .collect()
    }

    /// This device's telemetry tracks, allocated on first use (only called
    /// when tracing is enabled).
    fn tele(&self) -> &DevTele {
        self.tele.get_or_init(|| {
            telemetry::ensure_host_track();
            let n = DEVICE_SEQ.fetch_add(1, Ordering::Relaxed);
            let label = format!("{} #{n}", self.profile.name);
            DevTele {
                kernel_track: telemetry::new_track(&format!("{label} kernels")),
                transfer_track: telemetry::new_track(&format!("{label} transfers")),
                modeled_track: telemetry::new_track(&format!("{label} modeled")),
                model_clock_us: AtomicU64::new(0f64.to_bits()),
            }
        })
    }

    /// Accounts one buffer allocation: bumps the allocation gauge
    /// unconditionally and records an [`Event::Alloc`] when tracing.
    fn note_alloc(&self, id: BufId, bytes: u64) {
        telemetry::registry().gauge("vgpu.mem.allocated_bytes").add(bytes as i64);
        if telemetry::enabled() {
            self.tele();
            telemetry::record(Event::Alloc {
                name: format!("buf{}", id.0),
                bytes,
                ts_us: telemetry::now_us(),
            });
        }
    }

    /// Accounts one host⇄device transfer, exactly once per enqueue: bumps
    /// the direction's byte/transfer counters unconditionally and records an
    /// [`Event::Transfer`] span when tracing. `t0` is the span start
    /// captured before the copy (`Some` only when tracing was enabled).
    fn note_transfer(&self, dir: TransferDir, id: BufId, bytes: u64, t0: Option<f64>) {
        let reg = telemetry::registry();
        match dir {
            TransferDir::ToGpu => {
                reg.counter("vgpu.xfer.to_gpu.bytes").add(bytes);
                reg.counter("vgpu.xfer.to_gpu.transfers").inc();
            }
            TransferDir::ToHost => {
                reg.counter("vgpu.xfer.to_host.bytes").add(bytes);
                reg.counter("vgpu.xfer.to_host.transfers").inc();
            }
            // Sharding traffic is accounted apart from `vgpu.xfer.*` so a
            // sharded run's host-transfer totals stay bit-comparable with
            // the single-device leg (DESIGN.md §12).
            TransferDir::DevToDev => {
                reg.counter("vgpu.halo.bytes").add(bytes);
                reg.counter("vgpu.halo.copies").inc();
            }
            TransferDir::Replicate => {
                reg.counter("vgpu.halo.replicate.bytes").add(bytes);
                reg.counter("vgpu.halo.replicate.transfers").inc();
            }
        }
        if let Some(ts_us) = t0 {
            let tele = self.tele();
            telemetry::record(Event::Transfer {
                track: tele.transfer_track,
                dir,
                name: format!("{}(buf{})", dir.label(), id.0),
                bytes,
                ts_us,
                dur_us: (telemetry::now_us() - ts_us).max(0.0),
            });
        }
    }

    /// A device profiled as the paper's GTX 780 (the platform of Figure 2).
    pub fn gtx780() -> Self {
        Self::new(DeviceProfile::gtx780())
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Enables/disables the dynamic write-race detector (see
    /// [`crate::buffer`]). Expensive; intended for tests.
    pub fn set_race_check(&mut self, on: bool) {
        self.race_check = on;
    }

    /// Selects the execution engine for subsequent launches.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Number of distinct (kernel, binding-signature) launch plans cached
    /// on this device. Steady-state step loops should plateau at one plan
    /// per kernel; growth proportional to the step count means plans are
    /// not being reused (see `vgpu.plan.{hits,misses}`).
    pub fn plan_cache_len(&self) -> usize {
        self.plans.len()
    }

    /// Creates a zero-filled buffer whose *contents are not promised*: like
    /// `clCreateBuffer`, the storage happens to be zeroed but reading it
    /// before writing it is a bug. Under `VGPU_SANITIZE=shadow` such reads
    /// are reported as uninit reads; code that relies on the zero fill must
    /// use [`Device::create_buffer_zeroed`] instead.
    pub fn create_buffer(&mut self, kind: ScalarKind, len: usize) -> BufId {
        self.buffers.push(SharedBuf::with_shadow(BufData::zeros(kind, len), false));
        let id = BufId(self.buffers.len() - 1);
        self.note_alloc(id, byte_len(len, kind.byte_size()));
        id
    }

    /// Creates a buffer whose zero fill is part of the program's contract
    /// (a `clEnqueueFillBuffer` after the allocation): reads of the zeros
    /// are legitimate and the sanitizer treats every element as
    /// initialized. Accounting is identical to [`Device::create_buffer`].
    pub fn create_buffer_zeroed(&mut self, kind: ScalarKind, len: usize) -> BufId {
        self.buffers.push(SharedBuf::with_shadow(BufData::zeros(kind, len), true));
        let id = BufId(self.buffers.len() - 1);
        self.note_alloc(id, byte_len(len, kind.byte_size()));
        id
    }

    /// Creates a buffer from host data (`enqueueWriteBuffer` at creation).
    /// Accounted as one allocation plus one `ToGPU` transfer.
    pub fn upload(&mut self, data: BufData) -> BufId {
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let bytes = byte_len(data.len(), data.elem_bytes());
        self.buffers.push(SharedBuf::with_shadow(data, true));
        let id = BufId(self.buffers.len() - 1);
        self.note_alloc(id, bytes);
        self.note_transfer(TransferDir::ToGpu, id, bytes, t0);
        id
    }

    /// Overwrites a buffer from host data (`enqueueWriteBuffer`). Accounted
    /// as one `ToGPU` transfer.
    pub fn write(&mut self, id: BufId, data: BufData) {
        assert_eq!(data.len(), self.buffers[id.0].len(), "buffer size mismatch");
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let bytes = byte_len(data.len(), data.elem_bytes());
        let len = data.len();
        *self.buffers[id.0].data_mut() = data;
        if let Some(sh) = self.buffers[id.0].shadow() {
            sh.mark_init(0, len);
        }
        self.note_transfer(TransferDir::ToGpu, id, bytes, t0);
    }

    /// Reads a buffer back to the host (`enqueueReadBuffer`). Accounted as
    /// one `ToHost` transfer.
    pub fn read(&self, id: BufId) -> BufData {
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let data = self.buffers[id.0].data().clone();
        self.note_transfer(TransferDir::ToHost, id, byte_len(data.len(), data.elem_bytes()), t0);
        data
    }

    /// Overwrites the element range `[off, off+data.len())` of a buffer
    /// from host data (`enqueueWriteBuffer` with an offset). Accounted as
    /// one `ToGPU` transfer of exactly the region's bytes — the
    /// slab-upload primitive of domain sharding, where each device
    /// receives only its owned planes of a host array.
    pub fn write_region(&mut self, id: BufId, off: usize, data: BufData) {
        assert!(off + data.len() <= self.buffers[id.0].len(), "region write out of range");
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let bytes = byte_len(data.len(), data.elem_bytes());
        self.buffers[id.0].data_mut().copy_from(off, &data);
        if let Some(sh) = self.buffers[id.0].shadow() {
            sh.mark_init(off, data.len());
        }
        self.note_transfer(TransferDir::ToGpu, id, bytes, t0);
    }

    /// Reads the element range `[off, off+len)` back to the host
    /// (`enqueueReadBuffer` with an offset). Accounted as one `ToHost`
    /// transfer of exactly the region's bytes.
    pub fn read_region(&self, id: BufId, off: usize, len: usize) -> BufData {
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let data = self.buffers[id.0].data().slice(off, len);
        self.note_transfer(TransferDir::ToHost, id, byte_len(len, data.elem_bytes()), t0);
        data
    }

    /// Overwrites a region from a neighbouring device's owned plane — the
    /// halo-exchange receive of domain sharding. Accounted exactly once,
    /// here on the destination device, as a `DevToDev` transfer under
    /// `vgpu.halo.{bytes,copies}` (the source side is read unaccounted via
    /// [`Device::peek_region`]); never touches `vgpu.xfer.*`.
    pub fn write_halo_region(&mut self, id: BufId, off: usize, data: BufData) {
        self.write_halo_region_tagged(id, off, data, None);
    }

    /// [`Device::write_halo_region`] with sanitizer provenance: `prov` is
    /// the source buffer's version clock ([`Device::halo_provenance`] on
    /// the sending device), letting the shadow sanitizer flag later reads
    /// of this region as *stale* once the source mutates without a fresh
    /// exchange. `None` marks the region plain-initialized (untracked).
    pub fn write_halo_region_tagged(
        &mut self,
        id: BufId,
        off: usize,
        data: BufData,
        prov: Option<crate::sanitize::HaloProvenance>,
    ) {
        assert!(off + data.len() <= self.buffers[id.0].len(), "halo write out of range");
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let bytes = byte_len(data.len(), data.elem_bytes());
        self.buffers[id.0].data_mut().copy_from(off, &data);
        if let Some(sh) = self.buffers[id.0].shadow() {
            sh.mark_halo(off, data.len(), prov);
        }
        self.note_transfer(TransferDir::DevToDev, id, bytes, t0);
    }

    /// The sanitizer version clock of a buffer, to tag halo copies *from*
    /// it (see [`Device::write_halo_region_tagged`]). `None` when the
    /// sanitizer is off.
    pub fn halo_provenance(&self, id: BufId) -> Option<crate::sanitize::HaloProvenance> {
        self.buffers[id.0].shadow().map(|sh| sh.provenance())
    }

    /// Creates a buffer from host data that is a *replica* of an upload
    /// already accounted on another device of a shard set (β tables,
    /// FD-MM coefficient tables). Accounted as one allocation plus one
    /// `Replicate` transfer under `vgpu.halo.replicate.*`, keeping
    /// `vgpu.xfer.to_gpu.*` totals identical to the single-device leg.
    pub fn upload_replica(&mut self, data: BufData) -> BufId {
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let bytes = byte_len(data.len(), data.elem_bytes());
        self.buffers.push(SharedBuf::with_shadow(data, true));
        let id = BufId(self.buffers.len() - 1);
        self.note_alloc(id, bytes);
        self.note_transfer(TransferDir::Replicate, id, bytes, t0);
        id
    }

    /// Inspects a buffer *without* transfer accounting — for harness-side
    /// checks and debugging, where a counted `ToHost` would distort the
    /// transfer totals. Simulated host code should use [`Device::read`].
    pub fn peek(&self, id: BufId) -> BufData {
        self.buffers[id.0].data().clone()
    }

    /// Inspects an element range without transfer accounting — the send
    /// side of a halo exchange (the receive side accounts the copy once,
    /// see [`Device::write_halo_region`]).
    pub fn peek_region(&self, id: BufId, off: usize, len: usize) -> BufData {
        self.buffers[id.0].data().slice(off, len)
    }

    /// Buffer length in elements.
    pub fn len(&self, id: BufId) -> usize {
        self.buffers[id.0].len()
    }

    /// Compiles a kernel for this device.
    pub fn compile(&self, kernel: &Kernel) -> Result<Prepared, ExecError> {
        exec::prepare(kernel)
    }

    /// Launches a prepared kernel and records a profiling event.
    pub fn launch(
        &mut self,
        prep: &Prepared,
        args: &[Arg],
        global: &[usize],
        mode: ExecMode,
    ) -> Result<LaunchStats, ExecError> {
        self.launch_wg(prep, args, global, None, mode)
    }

    /// Launches with an explicit workgroup size — required for kernels that
    /// use barriers, local memory, or local/group ids.
    pub fn launch_wg(
        &mut self,
        prep: &Prepared,
        args: &[Arg],
        global: &[usize],
        local: Option<usize>,
        mode: ExecMode,
    ) -> Result<LaunchStats, ExecError> {
        let binds: Vec<ArgBind<'_>> = args
            .iter()
            .map(|a| match a {
                Arg::Buf(id) => ArgBind::Buf(&self.buffers[id.0]),
                Arg::Val(v) => ArgBind::Val(*v),
            })
            .collect();
        let reg = telemetry::registry();
        let key = (prep.id, self.binding_sig(args));
        // Two-level plan lookup: this device's own cache first, then the
        // process-wide shared map (another device may have planned the same
        // prepared kernel already — `vgpu.plan.shared_hits`), and only then
        // a fresh `plan_launch`, published for other devices to adopt.
        let plan: Arc<LaunchPlan> = match self.plans.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                reg.counter("vgpu.plan.hits").inc();
                e.into_mut().clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => match artifact::lookup_plan(e.key()) {
                Some(shared) => {
                    reg.counter("vgpu.plan.shared_hits").inc();
                    e.insert(shared).clone()
                }
                None => {
                    reg.counter("vgpu.plan.misses").inc();
                    let plan = Arc::new(exec::plan_launch(prep, &binds)?);
                    artifact::publish_plan(e.key().clone(), plan.clone());
                    e.insert(plan).clone()
                }
            },
        };
        let t0 = if telemetry::enabled() { Some(telemetry::now_us()) } else { None };
        let stats = exec::launch_planned(
            prep,
            &plan,
            &binds,
            global,
            local,
            mode,
            self.race_check,
            self.profile.transaction_bytes,
            self.engine,
        )?;
        let double = prep.params.iter().any(|p| p.is_buffer && p.kind == ScalarKind::F64);
        let modeled_s = stats.transaction_bytes.map(|tb| {
            modeled_time_s(
                &ModelInput {
                    transaction_bytes: tb,
                    flops: stats.counters.flops,
                    double_precision: double,
                    halo_bytes: 0,
                },
                &self.profile,
            )
        });
        match stats.backend {
            exec::Backend::Compiled => reg.counter("vgpu.launches.compiled").inc(),
            exec::Backend::Vector => reg.counter("vgpu.launches.vector").inc(),
            exec::Backend::Tape => reg.counter("vgpu.launches.tape").inc(),
            exec::Backend::Tree => reg.counter("vgpu.launches.tree").inc(),
        }
        // Kernel-level profiling: one map update per launch when enabled
        // (`VGPU_PROFILE=kernel|op`), one relaxed load when off. The per-op
        // tally, when present, was merged across interpreter chunks by the
        // backend and rides along on `stats`.
        if crate::profiler::enabled() {
            crate::profiler::record_launch(
                &prep.name,
                stats.backend.label(),
                if double { "f64" } else { "f32" },
                stats.wall,
                modeled_s,
                stats.counters.flops,
                stats.transaction_bytes,
                stats.op_profile.as_deref(),
            );
        }
        // Differential launches also ran the tree-walker as an oracle.
        // Count that leg separately (the logical launch above is counted
        // once) and trace it as its own span under a distinct name, so
        // kernel summaries aggregated by name stay truthful about what
        // each engine executed.
        let oracle_us = stats.oracle_wall.map(|w| {
            reg.counter("vgpu.launches.oracle").inc();
            w.as_secs_f64() * 1e6
        });
        if let Some(ts_us) = t0 {
            let tele = self.tele();
            if let Some(dur_us) = oracle_us {
                telemetry::record(Event::Kernel {
                    track: tele.kernel_track,
                    name: format!("{} (oracle)", prep.name),
                    engine: "tree(oracle)".to_string(),
                    ts_us,
                    dur_us,
                    metrics: KernelMetrics {
                        work_items: stats.counters.work_items,
                        loads_global: stats.counters.loads_global,
                        stores_global: stats.counters.stores_global,
                        loads_constant: stats.counters.loads_constant,
                        bytes_loaded: stats.counters.bytes_loaded,
                        bytes_stored: stats.counters.bytes_stored,
                        flops: stats.counters.flops,
                        transaction_bytes: stats.transaction_bytes,
                        modeled_us: None,
                    },
                });
            }
            telemetry::record(Event::Kernel {
                track: tele.kernel_track,
                name: prep.name.clone(),
                engine: stats.backend.label().to_string(),
                // The oracle leg ran first; the reported launch's span
                // starts where the oracle's ended.
                ts_us: ts_us + oracle_us.unwrap_or(0.0),
                dur_us: stats.wall.as_secs_f64() * 1e6,
                metrics: KernelMetrics {
                    work_items: stats.counters.work_items,
                    loads_global: stats.counters.loads_global,
                    stores_global: stats.counters.stores_global,
                    loads_constant: stats.counters.loads_constant,
                    bytes_loaded: stats.counters.bytes_loaded,
                    bytes_stored: stats.counters.bytes_stored,
                    flops: stats.counters.flops,
                    transaction_bytes: stats.transaction_bytes,
                    modeled_us: modeled_s.map(|s| s * 1e6),
                },
            });
            if let Some(s) = modeled_s {
                let dur_us = s * 1e6;
                let start = tele.advance_model_clock(dur_us);
                telemetry::record(Event::ModeledKernel {
                    track: tele.modeled_track,
                    name: prep.name.clone(),
                    ts_us: start,
                    dur_us,
                });
            }
        }
        self.events.push(KernelEvent { name: prep.name.clone(), stats: stats.clone(), modeled_s });
        Ok(stats)
    }

    /// The trace track ids this device records kernel/transfer/modeled
    /// events on — `None` until the first traced operation lazily allocates
    /// them. Multi-device harnesses (the batch service) use these to
    /// attribute global trace-buffer events back to the device, and hence
    /// the job, that produced them.
    pub fn telemetry_tracks(&self) -> Option<[TrackId; 3]> {
        self.tele.get().map(|t| [t.kernel_track, t.transfer_track, t.modeled_track])
    }

    /// The profiling event log, oldest first.
    pub fn events(&self) -> &[KernelEvent] {
        &self.events
    }

    /// Clears the profiling event log.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }
}

impl Drop for Device {
    /// Releases the device's buffers: winds the allocation gauge back and,
    /// when tracing, records one [`Event::Free`] per buffer.
    fn drop(&mut self) {
        let trace = telemetry::enabled();
        let ts_us = if trace { telemetry::now_us() } else { 0.0 };
        let mut total = 0u64;
        for (i, b) in self.buffers.iter().enumerate() {
            let bytes = byte_len(b.len(), b.elem_bytes());
            total += bytes;
            if trace {
                telemetry::record(Event::Free { name: format!("buf{i}"), bytes, ts_us });
            }
        }
        if total > 0 {
            telemetry::registry().gauge("vgpu.mem.allocated_bytes").add(-(total as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::kast::{KExpr, KStmt, KernelParam, MemRef};
    use lift::prelude::BinOp;

    fn double_kernel(kind: ScalarKind) -> Kernel {
        Kernel {
            name: "dbl".into(),
            params: vec![
                KernelParam::global_buf("x", kind),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![
                KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::real(2.0),
                },
            ],
            work_dim: 1,
        }
        .resolve_real(if kind == ScalarKind::F64 {
            ScalarKind::F64
        } else {
            ScalarKind::F32
        })
    }

    #[test]
    fn buffer_roundtrip_and_launch() {
        let mut dev = Device::gtx780();
        let x = dev.upload(BufData::from(vec![1.0f32, 2.0, 3.0]));
        let prep = dev.compile(&double_kernel(ScalarKind::F32)).unwrap();
        dev.launch(&prep, &[Arg::Buf(x), Arg::Val(Value::I32(3))], &[32], ExecMode::Fast).unwrap();
        assert_eq!(dev.read(x), BufData::from(vec![2.0f32, 4.0, 6.0]));
        assert_eq!(dev.events().len(), 1);
        assert!(dev.events()[0].modeled_s.is_none());
    }

    #[test]
    fn plan_cache_reuses_plans_and_replans_on_kind_change() {
        let reg = telemetry::registry();
        let h0 = reg.counter("vgpu.plan.hits").get();
        let m0 = reg.counter("vgpu.plan.misses").get();
        let mut dev = Device::gtx780();
        let x = dev.upload(BufData::from(vec![1.0f32, 2.0, 3.0]));
        let prep = dev.compile(&double_kernel(ScalarKind::F32)).unwrap();
        let args = [Arg::Buf(x), Arg::Val(Value::I32(3))];
        let mode = ExecMode::Model { sample_stride: 1 };
        dev.launch(&prep, &args, &[32], mode).unwrap();
        dev.launch(&prep, &args, &[32], mode).unwrap();
        assert_eq!(dev.plan_cache_len(), 1, "identical launches share one plan");
        // Counters are process-global, so only lower bounds are stable.
        assert!(reg.counter("vgpu.plan.misses").get() - m0 >= 1);
        assert!(reg.counter("vgpu.plan.hits").get() - h0 >= 1);
        // The cached plan must produce exactly the stats of the uncached
        // first launch (same kernel, same NDRange, same buffer shapes).
        let ev = dev.events();
        assert_eq!(ev[0].stats.counters, ev[1].stats.counters);
        assert_eq!(ev[0].stats.transaction_bytes, ev[1].stats.transaction_bytes);
        assert_eq!(dev.read(x), BufData::from(vec![4.0f32, 8.0, 12.0]));

        // Rewriting the buffer with a different element kind changes the
        // binding signature: the stale f32 plan must not be reused (the
        // tape bakes kinds in; this launch needs the tree fallback).
        dev.write(x, BufData::from(vec![1.0f64, 2.0, 3.0]));
        dev.launch(&prep, &args, &[32], ExecMode::Fast).unwrap();
        assert_eq!(dev.plan_cache_len(), 2, "kind change makes a new plan");
        assert_eq!(dev.read(x).to_f64_vec(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn modeled_launch_records_time() {
        let mut dev = Device::gtx780();
        // zeroed: the kernel reads x in place, so its contents are load-bearing
        let x = dev.create_buffer_zeroed(ScalarKind::F64, 1024);
        let prep = dev.compile(&double_kernel(ScalarKind::F64)).unwrap();
        dev.launch(
            &prep,
            &[Arg::Buf(x), Arg::Val(Value::I32(1024))],
            &[1024],
            ExecMode::Model { sample_stride: 1 },
        )
        .unwrap();
        let ev = &dev.events()[0];
        assert!(ev.modeled_s.unwrap() > 0.0);
        assert!(ev.stats.transaction_bytes.unwrap() >= 1024 * 8 * 2);
    }
}

//! Kernel preparation and the parallel NDRange interpreter.
//!
//! [`prepare`] resolves a kernel AST's variable names to dense slots and
//! literals to runtime values, producing a [`Prepared`] kernel that the
//! interpreter executes one work-item at a time, parallelised over warps
//! with rayon (the guides' canonical data-parallel substrate).
//!
//! The interpreter doubles as the measurement apparatus of the evaluation:
//!
//! * **Counters** — every global load/store and floating-point operation is
//!   counted (the paper quotes "45 memory accesses and 98 flops per update"
//!   for FD-MM; we measure the same quantities).
//! * **Memory-transaction model** — in [`ExecMode::Model`] the interpreter
//!   groups work-items into 32-wide warps and counts distinct 128-byte
//!   segments touched per load/store site per warp, i.e. the coalescing rule
//!   of the GPUs in Table III. Scattered boundary gathers therefore cost
//!   more transactions than streaming volume reads — reproducing the paper's
//!   box-vs-dome and room-size effects from first principles.
//! * **Race detection** — optionally records write sets per work-item and
//!   fails if two work-items wrote the same element, validating the safety
//!   contract of the in-place primitives.

use crate::buffer::{BufData, SharedBuf};
use crate::bytecode::{self, Compiled, TapeCtx};
use crate::telemetry;
use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef, MemSpace};
use lift::prelude::{BinOp, Intrinsic, ScalarKind, UnOp, Value};
use rayon::prelude::*;
use std::collections::HashMap;
use std::fmt;

/// One recorded global store: (buffer param, element, work-item, site).
pub(crate) type WriteRec = (u32, u64, u64, u32);

/// Warp width used by the transaction model (all Table III GPUs execute
/// 32-wide warps or 64-wide wavefronts; 32 is the finer, NVIDIA-accurate
/// granularity).
pub const WARP: usize = 32;

/// Execution error.
#[derive(Debug, Clone)]
pub struct ExecError(pub String);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vgpu execution error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ExecError> {
    Err(ExecError(msg.into()))
}

/// Prepared memory reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PMem {
    /// Kernel buffer parameter (index into the launch's buffer bindings).
    Param(usize),
    /// Private array (index into per-work-item private storage).
    Priv(usize),
    /// Workgroup-shared local array (index into per-group storage).
    Local(usize),
}

/// Prepared expression.
#[derive(Debug, Clone)]
pub enum PExpr {
    /// Resolved literal.
    Lit(Value),
    /// Scalar slot.
    Var(usize),
    /// `get_global_id(d)`.
    GlobalId(u8),
    /// `get_global_size(d)`.
    GlobalSize(u8),
    /// `get_local_id(d)`.
    LocalId(u8),
    /// `get_local_size(d)`.
    LocalSize(u8),
    /// `get_group_id(d)`.
    GroupId(u8),
    /// Indexed load; `site` identifies the static instruction for the
    /// transaction model, `space` drives the counters.
    Load {
        /// Memory operand.
        mem: PMem,
        /// Index expression.
        idx: Box<PExpr>,
        /// Static site id.
        site: u32,
        /// Address space of the operand.
        space: MemSpace,
    },
    /// Binary operation.
    Bin(BinOp, Box<PExpr>, Box<PExpr>),
    /// Unary operation.
    Un(UnOp, Box<PExpr>),
    /// Lazy ternary.
    Select(Box<PExpr>, Box<PExpr>, Box<PExpr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<PExpr>),
    /// Cast.
    Cast(ScalarKind, Box<PExpr>),
}

/// Prepared statement.
#[derive(Debug, Clone)]
pub enum PStmt {
    /// Scalar declaration/initialisation.
    DeclScalar {
        /// Slot.
        slot: usize,
        /// Declared kind (assignments cast to it).
        kind: ScalarKind,
        /// Optional initialiser.
        init: Option<PExpr>,
    },
    /// Private array declaration.
    DeclPriv {
        /// Private array index.
        arr: usize,
        /// Element kind.
        kind: ScalarKind,
        /// Length expression.
        len: PExpr,
    },
    /// Scalar assignment.
    Assign {
        /// Slot.
        slot: usize,
        /// Declared kind.
        kind: ScalarKind,
        /// Value.
        value: PExpr,
    },
    /// Indexed store.
    Store {
        /// Memory operand.
        mem: PMem,
        /// Index.
        idx: PExpr,
        /// Value.
        value: PExpr,
        /// Static site id.
        site: u32,
        /// Address space.
        space: MemSpace,
    },
    /// Counted loop.
    For {
        /// Loop-variable slot.
        slot: usize,
        /// Start.
        begin: PExpr,
        /// Exclusive end.
        end: PExpr,
        /// Step.
        step: PExpr,
        /// Body.
        body: Vec<PStmt>,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: PExpr,
        /// Then branch.
        then_: Vec<PStmt>,
        /// Else branch.
        else_: Vec<PStmt>,
    },
    /// Local (workgroup-shared) array declaration; allocated once per
    /// group, a no-op for subsequent work-items.
    DeclLocal {
        /// Local array index.
        arr: usize,
        /// Element kind.
        kind: ScalarKind,
        /// Length expression (uniform across the group).
        len: PExpr,
    },
    /// Group synchronisation point (top level only; splits phases).
    Barrier,
    /// Work-item early exit.
    Return,
}

/// A kernel ready for execution.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Process-unique id assigned by [`prepare`]; launch-plan caches key on
    /// it (clones share the id — and the plan, which stays valid because
    /// plans depend only on the parameter list and tape).
    pub(crate) id: u64,
    /// Kernel name.
    pub name: String,
    /// Parameter declarations (buffer/scalar, spaces, kinds).
    pub params: Vec<KernelParam>,
    /// Body.
    pub body: Vec<PStmt>,
    /// Number of scalar slots.
    pub nslots: usize,
    /// Number of private arrays.
    pub npriv: usize,
    /// NDRange dimensionality.
    pub work_dim: u8,
    /// Slot assigned to each scalar parameter (parallel to `params`,
    /// `None` for buffers).
    pub scalar_slots: Vec<Option<usize>>,
    /// Element kind of each private array.
    pub priv_kinds: Vec<ScalarKind>,
    /// Element kind of each workgroup-local array.
    pub local_kinds: Vec<ScalarKind>,
    /// True when the kernel uses barriers, local memory, or local/group
    /// ids — launching then requires an explicit workgroup size.
    pub uses_groups: bool,
    /// Body split at top-level barriers (one entry when barrier-free).
    pub phases: Vec<Vec<PStmt>>,
    /// Bytecode tape (`None` when the kernel is not statically typeable;
    /// such kernels run on the tree-walker).
    pub(crate) tape: Option<Compiled>,
    /// Why the tape compiler rejected the kernel (`None` when `tape` is
    /// `Some`). Surfaced through the telemetry fallback record.
    pub(crate) tape_err: Option<String>,
    /// Superinstruction lowering of `tape` for the compiled engine
    /// (`VGPU_ENGINE=compiled`); `None` when the tape is absent or failed
    /// structural lowering (see `fused_err`).
    pub(crate) fused: Option<bytecode::Fused>,
    /// Why superinstruction lowering was rejected. Surfaced through the
    /// `compiled_fallback` telemetry record.
    pub(crate) fused_err: Option<String>,
    /// The source kernel AST, retained so the compiled engine can run the
    /// static bounds verifier against the concrete shape of each launch
    /// (the per-site PROVEN/POTENTIAL table that licenses check elision).
    pub(crate) source: Option<std::sync::Arc<Kernel>>,
}

impl Prepared {
    /// True when the kernel compiled to a bytecode tape (the tree-walker
    /// remains available as the reference oracle either way).
    pub fn has_tape(&self) -> bool {
        self.tape.is_some()
    }

    /// The process-unique prepared-kernel id. Clones (including clones of a
    /// shared [`crate::artifact::compile_cached`] artifact) share it, which
    /// is what lets launch-plan and verdict caches line up across devices.
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct PrepCtx {
    slots: HashMap<String, usize>,
    privs: HashMap<String, usize>,
    priv_kinds: Vec<ScalarKind>,
    locals: HashMap<String, usize>,
    local_kinds: Vec<ScalarKind>,
    uses_groups: bool,
    sites: u32,
}

impl PrepCtx {
    fn slot(&mut self, name: &str) -> usize {
        let next = self.slots.len();
        *self.slots.entry(name.to_string()).or_insert(next)
    }

    fn site(&mut self) -> u32 {
        let s = self.sites;
        self.sites += 1;
        s
    }
}

/// Prepares a kernel for execution. The kernel must have its `Real` scalars
/// resolved.
pub fn prepare(kernel: &Kernel) -> Result<Prepared, ExecError> {
    let mut ctx = PrepCtx {
        slots: HashMap::new(),
        privs: HashMap::new(),
        priv_kinds: Vec::new(),
        locals: HashMap::new(),
        local_kinds: Vec::new(),
        uses_groups: false,
        sites: 0,
    };
    let mut scalar_slots = Vec::with_capacity(kernel.params.len());
    for p in &kernel.params {
        if p.kind == ScalarKind::Real {
            return err(format!(
                "kernel `{}` parameter `{}` has unresolved Real precision",
                kernel.name, p.name
            ));
        }
        if p.is_buffer {
            scalar_slots.push(None);
        } else {
            scalar_slots.push(Some(ctx.slot(&p.name)));
        }
    }
    let body = prep_stmts(&kernel.body, kernel, &mut ctx)?;
    // split at top-level barriers
    let mut phases: Vec<Vec<PStmt>> = vec![Vec::new()];
    for st in &body {
        if matches!(st, PStmt::Barrier) {
            phases.push(Vec::new());
        } else {
            phases.last_mut().unwrap().push(st.clone());
        }
    }
    static PREP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut prep = Prepared {
        id: PREP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        name: kernel.name.clone(),
        params: kernel.params.clone(),
        body,
        nslots: ctx.slots.len(),
        npriv: ctx.priv_kinds.len(),
        work_dim: kernel.work_dim,
        scalar_slots,
        priv_kinds: ctx.priv_kinds,
        local_kinds: ctx.local_kinds,
        uses_groups: ctx.uses_groups,
        phases,
        tape: None,
        tape_err: None,
        fused: None,
        fused_err: None,
        source: Some(std::sync::Arc::new(kernel.clone())),
    };
    match bytecode::compile(&prep) {
        Ok(tape) => {
            if tape.optimized_ops > 0 {
                telemetry::registry()
                    .counter("vgpu.tape.optimized_ops")
                    .add(tape.optimized_ops as u64);
            }
            match crate::compile::lower(&tape) {
                Ok(fused) => {
                    if fused.fused_ops > 0 {
                        telemetry::registry()
                            .counter("vgpu.compiled.fused_ops")
                            .add(fused.fused_ops as u64);
                    }
                    prep.fused = Some(fused);
                }
                Err(e) => prep.fused_err = Some(e),
            }
            prep.tape = Some(tape);
        }
        Err(e) => prep.tape_err = Some(e),
    }
    Ok(prep)
}

fn prep_stmts(stmts: &[KStmt], k: &Kernel, ctx: &mut PrepCtx) -> Result<Vec<PStmt>, ExecError> {
    stmts.iter().map(|s| prep_stmt(s, k, ctx, false)).collect()
}

fn prep_stmts_nested(
    stmts: &[KStmt],
    k: &Kernel,
    ctx: &mut PrepCtx,
) -> Result<Vec<PStmt>, ExecError> {
    stmts.iter().map(|s| prep_stmt(s, k, ctx, true)).collect()
}

fn scalar_kind_of_var(_name: &str) -> ScalarKind {
    ScalarKind::I32 // only used for loop variables
}

fn prep_stmt(s: &KStmt, k: &Kernel, ctx: &mut PrepCtx, nested: bool) -> Result<PStmt, ExecError> {
    Ok(match s {
        KStmt::DeclScalar { name, kind, init } => {
            let init = match init {
                Some(e) => Some(prep_expr(e, k, ctx)?),
                None => None,
            };
            let slot = ctx.slot(name);
            PStmt::DeclScalar { slot, kind: *kind, init }
        }
        KStmt::DeclPrivArray { name, kind, len } => {
            let len = prep_expr(len, k, ctx)?;
            let arr = ctx.priv_kinds.len();
            ctx.privs.insert(name.clone(), arr);
            ctx.priv_kinds.push(*kind);
            PStmt::DeclPriv { arr, kind: *kind, len }
        }
        KStmt::DeclLocalArray { name, kind, len } => {
            let len = prep_expr(len, k, ctx)?;
            let arr = ctx.local_kinds.len();
            ctx.locals.insert(name.clone(), arr);
            ctx.local_kinds.push(*kind);
            ctx.uses_groups = true;
            PStmt::DeclLocal { arr, kind: *kind, len }
        }
        KStmt::Barrier => {
            if nested {
                return err("barrier inside a loop or branch is not supported by this device \
                     (kernels generated here only place barriers at the top level)");
            }
            ctx.uses_groups = true;
            PStmt::Barrier
        }
        KStmt::Assign { name, value } => {
            let value = prep_expr(value, k, ctx)?;
            if !ctx.slots.contains_key(name) {
                return err(format!("assignment to undeclared variable `{name}`"));
            }
            PStmt::Assign { slot: ctx.slot(name), kind: ScalarKind::Bool, value }
        }
        KStmt::Store { mem, idx, value } => {
            let (pm, space) = prep_mem(mem, k, ctx)?;
            PStmt::Store {
                mem: pm,
                idx: prep_expr(idx, k, ctx)?,
                value: prep_expr(value, k, ctx)?,
                site: ctx.site(),
                space,
            }
        }
        KStmt::For { var, begin, end, step, body } => {
            let begin = prep_expr(begin, k, ctx)?;
            let end = prep_expr(end, k, ctx)?;
            let step = prep_expr(step, k, ctx)?;
            let slot = ctx.slot(var);
            let _ = scalar_kind_of_var(var);
            let body = prep_stmts_nested(body, k, ctx)?;
            PStmt::For { slot, begin, end, step, body }
        }
        KStmt::If { cond, then_, else_ } => PStmt::If {
            cond: prep_expr(cond, k, ctx)?,
            then_: prep_stmts_nested(then_, k, ctx)?,
            else_: prep_stmts_nested(else_, k, ctx)?,
        },
        KStmt::Return => PStmt::Return,
        KStmt::Comment(_) => {
            PStmt::If { cond: PExpr::Lit(Value::Bool(false)), then_: vec![], else_: vec![] }
        }
    })
}

fn prep_mem(m: &MemRef, k: &Kernel, ctx: &mut PrepCtx) -> Result<(PMem, MemSpace), ExecError> {
    match m {
        MemRef::Param(i) => {
            let p = k
                .params
                .get(*i)
                .ok_or_else(|| ExecError(format!("parameter index {i} out of range")))?;
            if !p.is_buffer {
                return err(format!("memory access through scalar parameter `{}`", p.name));
            }
            Ok((PMem::Param(*i), p.space))
        }
        MemRef::Priv(name) => {
            let arr = ctx
                .privs
                .get(name)
                .copied()
                .ok_or_else(|| ExecError(format!("unknown private array `{name}`")))?;
            Ok((PMem::Priv(arr), MemSpace::Private))
        }
        MemRef::Local(name) => {
            let arr = ctx
                .locals
                .get(name)
                .copied()
                .ok_or_else(|| ExecError(format!("unknown local array `{name}`")))?;
            ctx.uses_groups = true;
            Ok((PMem::Local(arr), MemSpace::Private))
        }
    }
}

fn prep_expr(e: &KExpr, k: &Kernel, ctx: &mut PrepCtx) -> Result<PExpr, ExecError> {
    Ok(match e {
        KExpr::Lit(l) => {
            if l.kind == ScalarKind::Real {
                return err("unresolved Real literal".to_string());
            }
            PExpr::Lit(l.to_value(ScalarKind::F64))
        }
        KExpr::Var(n) => {
            if !ctx.slots.contains_key(n.as_str()) {
                return err(format!("use of unbound variable `{n}` (not a declared scalar, parameter or loop variable)"));
            }
            PExpr::Var(ctx.slot(n))
        }
        KExpr::GlobalId(d) => PExpr::GlobalId(*d),
        KExpr::GlobalSize(d) => PExpr::GlobalSize(*d),
        KExpr::LocalId(d) => {
            ctx.uses_groups = true;
            PExpr::LocalId(*d)
        }
        KExpr::LocalSize(d) => {
            ctx.uses_groups = true;
            PExpr::LocalSize(*d)
        }
        KExpr::GroupId(d) => {
            ctx.uses_groups = true;
            PExpr::GroupId(*d)
        }
        KExpr::Load { mem, idx } => {
            let (pm, space) = prep_mem(mem, k, ctx)?;
            PExpr::Load { mem: pm, idx: Box::new(prep_expr(idx, k, ctx)?), site: ctx.site(), space }
        }
        KExpr::Bin(op, a, b) => {
            PExpr::Bin(*op, Box::new(prep_expr(a, k, ctx)?), Box::new(prep_expr(b, k, ctx)?))
        }
        KExpr::Un(op, a) => PExpr::Un(*op, Box::new(prep_expr(a, k, ctx)?)),
        KExpr::Select(c, t, f) => PExpr::Select(
            Box::new(prep_expr(c, k, ctx)?),
            Box::new(prep_expr(t, k, ctx)?),
            Box::new(prep_expr(f, k, ctx)?),
        ),
        KExpr::Call(i, args) => {
            let args: Result<Vec<PExpr>, ExecError> =
                args.iter().map(|a| prep_expr(a, k, ctx)).collect();
            PExpr::Call(*i, args?)
        }
        KExpr::Cast(kind, a) => PExpr::Cast(*kind, Box::new(prep_expr(a, k, ctx)?)),
    })
}

/// Per-launch performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct Counters {
    /// Global-memory loads executed.
    pub loads_global: u64,
    /// Global-memory stores executed.
    pub stores_global: u64,
    /// `__constant`-space loads (modeled as cached/broadcast, no DRAM
    /// traffic).
    pub loads_constant: u64,
    /// Bytes read from global memory (request size, before coalescing).
    pub bytes_loaded: u64,
    /// Bytes written to global memory.
    pub bytes_stored: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Work-items executed.
    pub work_items: u64,
}

impl Counters {
    fn add(&mut self, o: &Counters) {
        self.loads_global += o.loads_global;
        self.stores_global += o.stores_global;
        self.loads_constant += o.loads_constant;
        self.bytes_loaded += o.bytes_loaded;
        self.bytes_stored += o.bytes_stored;
        self.flops += o.flops;
        self.work_items += o.work_items;
    }

    /// Scales all counts (used when the model samples a subset of warps).
    pub fn scaled(&self, f: f64) -> Counters {
        let s = |x: u64| (x as f64 * f).round() as u64;
        Counters {
            loads_global: s(self.loads_global),
            stores_global: s(self.stores_global),
            loads_constant: s(self.loads_constant),
            bytes_loaded: s(self.bytes_loaded),
            bytes_stored: s(self.bytes_stored),
            flops: s(self.flops),
            work_items: s(self.work_items),
        }
    }
}

/// How a launch executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Run every work-item; count operations but no transaction model.
    Fast,
    /// Warp-accurate transaction counting. `sample_stride` > 1 executes only
    /// every k-th warp and scales the counts (valid for translation-
    /// invariant kernels such as stencils; boundary kernels use stride 1).
    Model {
        /// Execute every k-th warp.
        sample_stride: usize,
    },
}

/// Which interpreter backend executes a launch.
///
/// The default is chosen by the `VGPU_ENGINE` environment variable:
/// `tree` selects the tree-walker, `tape` the scalar bytecode tape, `diff`
/// (or `differential`) runs the oracle plus the fast engines and asserts
/// bit-identical buffers and identical stats, anything else selects the
/// warp-vectorized tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Warp-vectorized bytecode tape: each op is decoded once per warp and
    /// applied to all 32 lanes through a structure-of-arrays register file.
    /// Warps whose lanes disagree at a branch execute both sides under
    /// complementary lane masks and reconverge at the branch's join
    /// (counted by `vgpu.warp.divergent`); grouped (barrier) launches run
    /// the scalar tape, and kernels the tape compiler rejects fall back to
    /// the tree-walker — both transparently.
    #[default]
    Vector,
    /// Superinstruction engine: the validated tape is re-lowered into basic
    /// blocks of fused ops (`compile::lower`) executed through dense
    /// fixed-width lane-chunk kernels, with per-access bounds checks elided
    /// at sites the static verifier proves safe for the concrete launch
    /// shape (POTENTIAL sites keep a release-mode check). Tapes that fail
    /// structural lowering fall back to the vector engine
    /// (`vgpu.compiled.fallbacks`); grouped launches and traced/race-checked
    /// modes run the vector path as on [`Engine::Vector`]. Divergent warps
    /// are delegated wholesale to the vector interpreter at the branch pc.
    Compiled,
    /// Flat bytecode tape, one lane at a time (kernels the compiler rejects
    /// fall back to the tree-walker transparently).
    Tape,
    /// Reference tree-walking interpreter.
    Tree,
    /// Run the tree-walker, snapshot its outputs, restore inputs, run the
    /// scalar tape, the vector engine, and — when the tape lowered — the
    /// compiled engine, and fail unless buffers are bit-identical and
    /// counters and transaction bytes are equal.
    Differential,
}

impl Engine {
    /// Reads the `VGPU_ENGINE` environment variable (see type docs).
    pub fn from_env() -> Engine {
        match std::env::var("VGPU_ENGINE").as_deref() {
            Ok("tree") => Engine::Tree,
            Ok("tape") => Engine::Tape,
            Ok("compiled") => Engine::Compiled,
            Ok("diff") | Ok("differential") => Engine::Differential,
            _ => Engine::Vector,
        }
    }
}

/// The interpreter backend that actually executed a launch (as opposed to
/// [`Engine`], the *requested* policy — `Engine::Tape` still runs the
/// tree-walker when the kernel has no usable tape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The fused-superinstruction engine (basic blocks of fused ops over
    /// the SoA register file, proof-licensed bounds elision).
    Compiled,
    /// The warp-vectorized tape VM (SoA register file, one decode per warp).
    Vector,
    /// The flat bytecode tape VM.
    Tape,
    /// The reference tree-walking interpreter.
    Tree,
}

impl Backend {
    /// Display label (`"compiled"` / `"vector"` / `"tape"` / `"tree"`), as
    /// used in telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Compiled => "compiled",
            Backend::Vector => "vector",
            Backend::Tape => "tape",
            Backend::Tree => "tree",
        }
    }
}

/// Result of a launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Operation counters (scaled to the full NDRange when sampled).
    pub counters: Counters,
    /// DRAM bytes actually moved per the 128-byte transaction model; `None`
    /// in [`ExecMode::Fast`].
    pub transaction_bytes: Option<u64>,
    /// Wall-clock execution time of the interpreter (host-side).
    pub wall: std::time::Duration,
    /// Total work-items in the NDRange.
    pub global_work_items: u64,
    /// Which backend executed the launch.
    pub backend: Backend,
    /// Warps whose active lanes disagreed at one or more branches and ran
    /// them under divergence masks (reconverging at each branch's join).
    /// Always 0 outside [`Backend::Vector`] and [`Backend::Compiled`]
    /// (whose divergent warps are delegated to the vector interpreter).
    pub divergent_warps: u64,
    /// Wall-clock time of the tree-walker *oracle* leg when the launch ran
    /// under [`Engine::Differential`] (`wall` then covers only the tape
    /// leg). `None` for single-backend launches. Lets launch audits and
    /// traces attribute the oracle's extra execution instead of silently
    /// folding it into the reported launch.
    pub oracle_wall: Option<std::time::Duration>,
    /// Per-opcode time attribution merged across the launch's interpreter
    /// chunks. Populated by the tape/vector backends under `VGPU_PROFILE=op`
    /// only; never part of differential comparison (timing is not a result).
    pub op_profile: Option<Box<crate::profiler::OpProf>>,
}

/// One buffer binding or scalar argument.
pub enum ArgBind<'a> {
    /// A device buffer.
    Buf(&'a SharedBuf),
    /// A scalar value.
    Val(Value),
}

struct ItemState {
    slots: Vec<Value>,
    privs: Vec<Vec<Value>>,
    counters: Counters,
    trace: Vec<(u32, u32, u64)>, // (site, occurrence, byte address) — loads+stores
    writes: Vec<WriteRec>,
    trace_on: bool,
    race_on: bool,
    item: u64,
}

/// Per-item execution coordinates.
#[derive(Clone, Copy)]
struct ItemCtx {
    gid: [usize; 3],
    lid: usize,
    group: usize,
    lsize: usize,
}

enum Flow {
    Next,
    Return,
}

struct Exec<'a> {
    prep: &'a Prepared,
    bufs: &'a [Option<&'a SharedBuf>],
    gsize: [usize; 3],
}

impl<'a> Exec<'a> {
    fn eval(
        &self,
        e: &PExpr,
        st: &mut ItemState,
        locals: &mut Vec<Vec<Value>>,
        ic: ItemCtx,
    ) -> Value {
        match e {
            PExpr::Lit(v) => *v,
            PExpr::Var(s) => st.slots[*s],
            PExpr::GlobalId(d) => Value::I32(ic.gid[*d as usize] as i32),
            PExpr::GlobalSize(d) => Value::I32(self.gsize[*d as usize] as i32),
            PExpr::LocalId(d) => Value::I32(if *d == 0 { ic.lid as i32 } else { 0 }),
            PExpr::LocalSize(d) => Value::I32(if *d == 0 { ic.lsize as i32 } else { 1 }),
            PExpr::GroupId(d) => Value::I32(if *d == 0 { ic.group as i32 } else { 0 }),
            PExpr::Load { mem, idx, site, space } => {
                let i = self.eval(idx, st, locals, ic).as_i64();
                match mem {
                    PMem::Param(p) => {
                        let buf = self.bufs[*p].expect("buffer bound");
                        debug_assert!(
                            i >= 0 && (i as usize) < buf.len(),
                            "load out of bounds: {}[{i}] (len {})",
                            self.prep.params[*p].name,
                            buf.len()
                        );
                        let eb = buf.elem_bytes() as u64;
                        match space {
                            MemSpace::Constant => st.counters.loads_constant += 1,
                            _ => {
                                st.counters.loads_global += 1;
                                st.counters.bytes_loaded += eb;
                                if st.trace_on {
                                    st.trace.push((
                                        *site,
                                        0,
                                        ((*p as u64) << 40) | ((i as u64) * eb),
                                    ));
                                }
                            }
                        }
                        if let Some(sh) = buf.shadow() {
                            if let Some(kind) = sh.classify_load(i as usize) {
                                let san = crate::sanitize::SanCtx {
                                    kernel: &self.prep.name,
                                    params: &self.prep.params,
                                };
                                crate::sanitize::report_load_fault(
                                    kind,
                                    Some(&san),
                                    *p,
                                    *site,
                                    i as u64,
                                    "tree",
                                );
                            }
                        }
                        // SAFETY: launch contract — no concurrent writer of
                        // this element.
                        unsafe { buf.get(i as usize) }
                    }
                    PMem::Priv(a) => st.privs[*a][i as usize],
                    PMem::Local(a) => locals[*a][i as usize],
                }
            }
            PExpr::Bin(op, a, b) => {
                let va = self.eval(a, st, locals, ic);
                let vb = self.eval(b, st, locals, ic);
                if op.is_flop() && (va.kind().is_float() || vb.kind().is_float()) {
                    st.counters.flops += 1;
                }
                lift::scalar::eval_bin(*op, va, vb)
            }
            PExpr::Un(op, a) => {
                let v = self.eval(a, st, locals, ic);
                match op {
                    UnOp::Neg => match v {
                        Value::F32(x) => Value::F32(-x),
                        Value::F64(x) => Value::F64(-x),
                        Value::I32(x) => Value::I32(-x),
                        Value::Bool(b) => Value::I32(-(b as i32)),
                    },
                    UnOp::Not => Value::Bool(!v.truthy()),
                }
            }
            PExpr::Select(c, t, f) => {
                if self.eval(c, st, locals, ic).truthy() {
                    self.eval(t, st, locals, ic)
                } else {
                    self.eval(f, st, locals, ic)
                }
            }
            PExpr::Call(intr, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a, st, locals, ic)).collect();
                st.counters.flops += match intr {
                    Intrinsic::Sqrt
                    | Intrinsic::Exp
                    | Intrinsic::Log
                    | Intrinsic::Sin
                    | Intrinsic::Cos => 4,
                    Intrinsic::Fma => 2,
                    Intrinsic::Min | Intrinsic::Max => {
                        if vals[0].kind().is_float() {
                            1
                        } else {
                            0
                        }
                    }
                    Intrinsic::Fabs => 0,
                };
                call_intrinsic(*intr, &vals)
            }
            PExpr::Cast(kind, a) => self.eval(a, st, locals, ic).cast(*kind),
        }
    }

    fn exec_block(
        &self,
        stmts: &[PStmt],
        st: &mut ItemState,
        locals: &mut Vec<Vec<Value>>,
        ic: ItemCtx,
    ) -> Flow {
        for s in stmts {
            match s {
                PStmt::DeclScalar { slot, kind, init } => {
                    let v = match init {
                        Some(e) => self.eval(e, st, locals, ic).cast(*kind),
                        None => Value::zero(*kind),
                    };
                    st.slots[*slot] = v;
                }
                PStmt::DeclPriv { arr, kind, len } => {
                    let n = self.eval(len, st, locals, ic).as_i64() as usize;
                    st.privs[*arr].clear();
                    st.privs[*arr].resize(n, Value::zero(*kind));
                }
                PStmt::DeclLocal { arr, kind, len } => {
                    // allocated once per group (first item to execute it)
                    let n = self.eval(len, st, locals, ic).as_i64() as usize;
                    if locals[*arr].len() != n {
                        locals[*arr].clear();
                        locals[*arr].resize(n, Value::zero(*kind));
                    }
                }
                PStmt::Barrier => {
                    unreachable!("barriers are phase boundaries, never executed directly")
                }
                PStmt::Assign { slot, value, .. } => {
                    let kind = st.slots[*slot].kind();
                    let v = self.eval(value, st, locals, ic).cast(kind);
                    st.slots[*slot] = v;
                }
                PStmt::Store { mem, idx, value, site, space } => {
                    let i = self.eval(idx, st, locals, ic).as_i64();
                    let v = self.eval(value, st, locals, ic);
                    match mem {
                        PMem::Param(p) => {
                            let buf = self.bufs[*p].expect("buffer bound");
                            debug_assert!(
                                i >= 0 && (i as usize) < buf.len(),
                                "store out of bounds: {}[{i}] (len {})",
                                self.prep.params[*p].name,
                                buf.len()
                            );
                            let eb = buf.elem_bytes() as u64;
                            if !matches!(space, MemSpace::Private) {
                                st.counters.stores_global += 1;
                                st.counters.bytes_stored += eb;
                                if st.trace_on {
                                    st.trace.push((
                                        *site,
                                        0,
                                        ((*p as u64) << 40) | ((i as u64) * eb),
                                    ));
                                }
                                if st.race_on {
                                    st.writes.push((*p as u32, i as u64, st.item, *site));
                                }
                            }
                            if let Some(sh) = buf.shadow() {
                                sh.note_store(i as usize);
                            }
                            // SAFETY: launch contract — element disjointness
                            // across work-items (verified by race-check mode).
                            unsafe { buf.set(i as usize, v) };
                        }
                        PMem::Priv(a) => {
                            let kind = self.prep.priv_kinds[*a];
                            st.privs[*a][i as usize] = v.cast(kind);
                        }
                        PMem::Local(a) => {
                            let kind = self.prep.local_kinds[*a];
                            locals[*a][i as usize] = v.cast(kind);
                        }
                    }
                }
                PStmt::For { slot, begin, end, step, body } => {
                    let b = self.eval(begin, st, locals, ic).as_i64();
                    let e = self.eval(end, st, locals, ic).as_i64();
                    let stp = self.eval(step, st, locals, ic).as_i64().max(1);
                    let mut i = b;
                    while i < e {
                        st.slots[*slot] = Value::I32(i as i32);
                        if let Flow::Return = self.exec_block(body, st, locals, ic) {
                            return Flow::Return;
                        }
                        i += stp;
                    }
                }
                PStmt::If { cond, then_, else_ } => {
                    let flow = if self.eval(cond, st, locals, ic).truthy() {
                        self.exec_block(then_, st, locals, ic)
                    } else {
                        self.exec_block(else_, st, locals, ic)
                    };
                    if let Flow::Return = flow {
                        return Flow::Return;
                    }
                }
                PStmt::Return => return Flow::Return,
            }
        }
        Flow::Next
    }

    fn run_item(&self, linear: u64, st: &mut ItemState, locals: &mut Vec<Vec<Value>>) {
        let gx = self.gsize[0] as u64;
        let gy = self.gsize[1] as u64;
        let gid =
            [(linear % gx) as usize, ((linear / gx) % gy) as usize, (linear / (gx * gy)) as usize];
        let ic = ItemCtx { gid, lid: 0, group: (linear / WARP as u64) as usize, lsize: 1 };
        st.item = linear;
        st.counters.work_items += 1;
        let _ = self.exec_block(&self.prep.body, st, locals, ic);
    }
}

fn call_intrinsic(i: Intrinsic, vals: &[Value]) -> Value {
    lift::scalar::eval_intrinsic(i, vals)
}

/// Counts distinct transaction segments per (site, occurrence) across one
/// warp's traces and returns total DRAM bytes moved.
fn warp_transaction_bytes(traces: &mut [Vec<(u32, u32, u64)>], txn: u64) -> u64 {
    // Assign occurrence numbers per site within each item, then group.
    let mut groups: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    for t in traces.iter_mut() {
        let mut occ: HashMap<u32, u32> = HashMap::new();
        for (site, o, addr) in t.iter_mut() {
            let e = occ.entry(*site).or_insert(0);
            *o = *e;
            *e += 1;
            groups.entry((*site, *o)).or_default().push(*addr);
        }
    }
    let mut bytes = 0u64;
    let mut segs: Vec<u64> = Vec::with_capacity(WARP);
    for (_, addrs) in groups {
        segs.clear();
        segs.extend(addrs.iter().map(|a| a / txn));
        segs.sort_unstable();
        segs.dedup();
        bytes += segs.len() as u64 * txn;
    }
    bytes
}

/// [`warp_transaction_bytes`] over one warp's accesses stored in a single
/// flat trace, with `ends[i]` marking the end offset of item `i`'s
/// accesses. Avoids one `Vec` allocation per work-item in the hot path;
/// the per-(site, occurrence) grouping and segment math are identical.
fn warp_transaction_bytes_flat(trace: &mut [(u32, u32, u64)], ends: &[usize], txn: u64) -> u64 {
    let mut groups: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    let mut occ: HashMap<u32, u32> = HashMap::new();
    let mut start = 0usize;
    for &end in ends {
        occ.clear();
        for (site, o, addr) in trace[start..end].iter_mut() {
            let e = occ.entry(*site).or_insert(0);
            *o = *e;
            *e += 1;
            groups.entry((*site, *o)).or_default().push(*addr);
        }
        start = end;
    }
    let mut bytes = 0u64;
    let mut segs: Vec<u64> = Vec::with_capacity(WARP);
    for (_, addrs) in groups {
        segs.clear();
        segs.extend(addrs.iter().map(|a| a / txn));
        segs.sort_unstable();
        segs.dedup();
        bytes += segs.len() as u64 * txn;
    }
    bytes
}

/// Work-ids per rayon task for the chunked dispatchers: coarse enough to
/// amortise per-task setup (register files, scratch vectors), fine enough
/// to keep every worker busy (~4 chunks per thread).
fn dispatch_chunk(nids: usize) -> usize {
    nids.div_ceil(rayon::current_num_threads().max(1) * 4).max(1)
}

/// Executes a prepared kernel over the given NDRange.
///
/// `bindings` must match `prep.params` in order: buffers for buffer
/// parameters, values for scalars. `race_check` additionally verifies write
/// disjointness across work-items.
pub fn launch(
    prep: &Prepared,
    bindings: &[ArgBind<'_>],
    global: &[usize],
    mode: ExecMode,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    launch_wg(prep, bindings, global, None, mode, race_check, transaction_size)
}

/// Executes a prepared kernel with an explicit workgroup size. Kernels that
/// use barriers, local memory or local/group ids *require* `local`; the
/// global size must be a multiple of it. Barrier-free kernels ignore it.
/// The backend is chosen by [`Engine::from_env`].
#[allow(clippy::too_many_arguments)]
pub fn launch_wg(
    prep: &Prepared,
    bindings: &[ArgBind<'_>],
    global: &[usize],
    local: Option<usize>,
    mode: ExecMode,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    launch_wg_engine(
        prep,
        bindings,
        global,
        local,
        mode,
        race_check,
        transaction_size,
        Engine::from_env(),
    )
}

/// Why the tape cannot run this launch exactly, or `None` when it can: the
/// kernel must have compiled, and every bound buffer's element kind must
/// match its parameter declaration (the tape bakes element kinds in
/// statically).
fn tape_fallback_reason(prep: &Prepared, bufs: &[Option<&SharedBuf>]) -> Option<String> {
    if prep.tape.is_none() {
        return Some(match &prep.tape_err {
            Some(e) => format!("tape compile failed: {e}"),
            None => "tape compile failed".to_string(),
        });
    }
    for (p, b) in prep.params.iter().zip(bufs) {
        if let Some(b) = b {
            if b.kind() != p.kind {
                return Some(format!(
                    "buffer param `{}` declared {:?} but bound as {:?}",
                    p.name,
                    p.kind,
                    b.kind()
                ));
            }
        }
    }
    None
}

/// True when the tape can run this launch exactly.
fn tape_usable(prep: &Prepared, bufs: &[Option<&SharedBuf>]) -> bool {
    tape_fallback_reason(prep, bufs).is_none()
}

/// One reported fallback/divergence cause: (event, kernel, reason).
type FallbackKey = (&'static str, String, String);

thread_local! {
    /// [`FallbackKey`]s already reported by [`note_fallback_record`] on this
    /// thread, so a long-running simulation that launches the same
    /// non-compilable (or divergent) kernel thousands of times emits exactly
    /// one stderr record and one trace event per distinct cause.
    ///
    /// The set is thread-local, not process-global: every `note_*` audit runs
    /// on the launching thread (never inside rayon workers), so a batch
    /// executor whose worker threads each run one job at a time gets
    /// per-worker dedupe for free, and one job's records can never swallow a
    /// concurrent job's. [`reset_fallback_dedupe`] rescopes it per job.
    static FALLBACKS_SEEN: std::cell::RefCell<std::collections::HashSet<FallbackKey>> =
        std::cell::RefCell::new(std::collections::HashSet::new());
}

/// Clears the calling thread's fallback/divergence dedupe set, so the next
/// launch that falls back (or diverges) emits a fresh audit record even for
/// a (kernel, reason) pair already reported earlier on this thread.
///
/// Call this at the start of each logical simulation/job: dedupe is meant to
/// collapse the thousands of identical records *within* one run, not to
/// let the first job of a long-running batch swallow every later job's
/// records. Audit counters are unaffected — they count every launch/warp
/// regardless of dedupe state.
pub fn reset_fallback_dedupe() {
    FALLBACKS_SEEN.with(|seen| seen.borrow_mut().clear());
}

/// The shared dedupe half of every engine-fallback audit: when tracing is
/// on, records a [`telemetry::Event::TapeFallback`] and prints a one-line
/// structured record to stderr — but only the *first* time each
/// (event, kernel, reason) triple is seen since this thread's last
/// [`reset_fallback_dedupe`]. Counters are the caller's job and stay
/// truthful per launch/warp.
fn note_fallback_record(ev: &'static str, kernel: &str, reason: &str) {
    if !telemetry::enabled() {
        return;
    }
    let first = FALLBACKS_SEEN
        .with(|seen| seen.borrow_mut().insert((ev, kernel.to_string(), reason.to_string())));
    if first {
        let ts_us = telemetry::now_us();
        eprintln!("{{\"ev\":{ev:?},\"kernel\":{kernel:?},\"reason\":{reason:?}}}");
        let (kernel, reason) = (kernel.to_string(), reason.to_string());
        telemetry::record(match ev {
            "vector_fallback" => telemetry::Event::VectorFallback { kernel, reason, ts_us },
            "compiled_fallback" => telemetry::Event::CompiledFallback { kernel, reason, ts_us },
            "warp_divergence" => telemetry::Event::WarpDivergence { kernel, reason, ts_us },
            _ => telemetry::Event::TapeFallback { kernel, reason, ts_us },
        });
    }
}

/// Audits one tape→tree fallback: bumps the `vgpu.tape.fallbacks` counter
/// unconditionally (once per launch — the audit total stays truthful), and
/// emits a deduplicated stderr/trace record via [`note_fallback_record`].
fn note_tape_fallback(kernel: &str, reason: &str) {
    telemetry::registry().counter("vgpu.tape.fallbacks").inc();
    note_fallback_record("tape_fallback", kernel, reason);
}

/// Audits one vector→tape fallback (the whole launch, e.g. a grouped
/// NDRange the vector engine does not cover): bumps
/// `vgpu.vector.fallbacks` once per launch, deduped record as above.
fn note_vector_fallback(kernel: &str, reason: &str) {
    telemetry::registry().counter("vgpu.vector.fallbacks").inc();
    note_fallback_record("vector_fallback", kernel, reason);
}

/// Audits warp divergence inside a vector (or compiled) launch:
/// `vgpu.warp.divergent` counts every divergent warp, while the
/// stderr/trace record is deduped per kernel. Called exactly once per
/// launch from [`run_launch`], off the backend's reported
/// `divergent_warps` — the single structural accounting site for every
/// backend, so no fallback or delegation path can double-count.
fn note_warp_divergence(kernel: &str, warps: u64) {
    telemetry::registry().counter("vgpu.warp.divergent").add(warps);
    note_fallback_record(
        "warp_divergence",
        kernel,
        "active lanes disagreed at a branch; both sides ran under divergence masks and \
         reconverged at the branch join",
    );
}

/// Audits one compiled-engine fallback (a tape that failed structural
/// lowering reroutes to the vector engine; a grouped NDRange outside the
/// flat fused executor's coverage reroutes to the scalar tape): bumps
/// `vgpu.compiled.fallbacks` once per launch, deduped record as above.
fn note_compiled_fallback(kernel: &str, reason: &str) {
    telemetry::registry().counter("vgpu.compiled.fallbacks").inc();
    note_fallback_record("compiled_fallback", kernel, reason);
}

// ---- proof-licensed bounds elision (the compiled engine's check table) ----

type ContractMap = HashMap<String, lift::verify::Assumptions>;

fn launch_contracts() -> &'static std::sync::Mutex<ContractMap> {
    static CONTRACTS: std::sync::OnceLock<std::sync::Mutex<ContractMap>> =
        std::sync::OnceLock::new();
    CONTRACTS.get_or_init(|| std::sync::Mutex::new(HashMap::new()))
}

/// Registers the documented launch contract for `kernel`: the
/// [`lift::verify::Assumptions`] every shipped launch of that kernel
/// satisfies (buffer-length relations, interior guards, gather-table value
/// facts). The compiled engine merges the contract with the concrete shape
/// of each launch and elides per-access bounds checks only at sites the
/// static verifier then returns PROVEN for.
///
/// Soundness: a contract is *trusted* — registering facts the launches do
/// not actually satisfy voids the proof, exactly like handing the verifier
/// wrong assumptions (see the soundness caveats on `lift::verify`). Shipped
/// contracts are cross-checked by the `verify` CI gate and the
/// differential/race harnesses. Kernels without a contract get
/// launch-concrete assumptions only (global size, buffer lengths, scalar
/// values), which is always sound; sites the verifier cannot prove from
/// those keep their dynamic check.
pub fn register_launch_contract(kernel: &str, asm: lift::verify::Assumptions) {
    launch_contracts().lock().unwrap().insert(kernel.to_string(), asm);
}

/// (kernel id, global size, per-param buffer length or scalar bits).
type ProofKey = (u64, [usize; 3], Vec<u64>);

fn proof_cache() -> &'static std::sync::Mutex<HashMap<ProofKey, std::sync::Arc<Vec<bool>>>> {
    static CACHE: std::sync::OnceLock<
        std::sync::Mutex<HashMap<ProofKey, std::sync::Arc<Vec<bool>>>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(HashMap::new()))
}

/// The compiled engine's per-site check table for one launch shape:
/// `checked[site]` keeps the dynamic bounds check, `!checked[site]` means
/// the static verifier proved the access in bounds for every work-item of
/// *this* shape. Memoized process-wide per [`ProofKey`]; each distinct
/// shape runs the verifier once and bumps
/// `vgpu.compiled.sites_{proven,checked}`.
fn compiled_checked_sites(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    nsites: u32,
) -> std::sync::Arc<Vec<bool>> {
    let mut sig = Vec::with_capacity(prep.params.len());
    for (i, p) in prep.params.iter().enumerate() {
        sig.push(match bufs[i] {
            Some(b) => b.len() as u64,
            None => scalar_arg_value(prep, init_slots, i).map(bytecode::bits_of_value).unwrap_or(0),
        });
        let _ = p;
    }
    let key = (prep.id, gsize, sig);
    if let Some(hit) = proof_cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let checked = std::sync::Arc::new(build_checked_sites(prep, bufs, init_slots, gsize, nsites));
    let kept = checked.iter().filter(|&&c| c).count() as u64;
    let reg = telemetry::registry();
    reg.counter("vgpu.compiled.sites_proven").add(checked.len() as u64 - kept);
    reg.counter("vgpu.compiled.sites_checked").add(kept);
    proof_cache().lock().unwrap().insert(key, checked.clone());
    checked
}

/// The value bound to scalar parameter `i`, recovered from the initial
/// slot assignments (already cast to the declared kind).
fn scalar_arg_value(prep: &Prepared, init_slots: &[(usize, Value)], i: usize) -> Option<Value> {
    let slot = prep.scalar_slots.get(i).copied().flatten()?;
    init_slots.iter().find(|(s, _)| *s == slot).map(|(_, v)| *v)
}

/// Builds the check table: the kernel's registered contract (if any) merged
/// with the concrete launch shape, run through the static bounds verifier.
/// Unset global-size dims become the launch's constants, unbound i32
/// scalars become equality defines with their bound values, and buffers
/// without contract facts get their concrete lengths. No source AST — no
/// proof: every site keeps its check.
fn build_checked_sites(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    nsites: u32,
) -> Vec<bool> {
    use lift::arith::ArithExpr;
    let Some(src) = prep.source.as_deref() else {
        return vec![true; nsites as usize];
    };
    let mut asm = launch_contracts().lock().unwrap().get(&prep.name).cloned().unwrap_or_default();
    let wd = (prep.work_dim as usize).max(1);
    if asm.global_size.len() < wd {
        asm.global_size.resize(wd, None);
    }
    for (slot, gs) in asm.global_size.iter_mut().zip(gsize).take(wd) {
        if slot.is_none() {
            *slot = Some(ArithExpr::cst(gs as i64));
        }
    }
    for (i, p) in prep.params.iter().enumerate() {
        if p.is_buffer {
            if let Some(b) = bufs[i] {
                asm.buffers.entry(p.name.clone()).or_insert_with(|| {
                    lift::verify::BufferFacts::sized(ArithExpr::cst(b.len() as i64))
                });
            }
        } else if p.kind == ScalarKind::I32 && !asm.defines.iter().any(|(n, _)| n == &p.name) {
            if let Some(Value::I32(x)) = scalar_arg_value(prep, init_slots, i) {
                asm.defines.push((p.name.clone(), ArithExpr::cst(x as i64)));
            }
        }
    }
    let table = lift::verify::verify_kernel(src, &asm).proof_table();
    (0..nsites).map(|s| !table.proven(s)).collect()
}

/// The launch-invariant part of argument validation, resolved once per
/// (kernel, binding signature) by [`plan_launch`] and reusable across every
/// subsequent launch with the same signature — a simulation stepping one
/// kernel thousands of times pays for argument matching, scalar-slot
/// lookup, and the tape-fallback decision exactly once.
///
/// A plan is only valid for bindings with the same shape (buffer vs scalar
/// per position) *and* the same buffer element kinds it was planned
/// against; callers that cache plans must key on both (see
/// [`crate::Device`], which derives the key from the bound buffers).
#[derive(Debug, Clone)]
pub struct LaunchPlan {
    /// For each scalar parameter: (binding index, slot, declared kind).
    scalar_args: Vec<(usize, usize, ScalarKind)>,
    /// Why the tape cannot run launches with this signature (`None` when it
    /// can). Cached so per-step launches skip re-walking the params.
    tape_fallback: Option<String>,
    /// Why the *vector* engine cannot run launches with this signature
    /// (`None` when it can). Only meaningful when `tape_fallback` is `None`
    /// — a tape-less kernel already reroutes to the tree-walker.
    vector_fallback: Option<String>,
}

/// Validates the binding shape against the kernel's parameter list and
/// resolves everything about a launch that does not depend on the NDRange
/// or the scalar *values*: which bindings feed which scalar slots, and
/// whether the bytecode tape can run this signature.
pub fn plan_launch(prep: &Prepared, bindings: &[ArgBind<'_>]) -> Result<LaunchPlan, ExecError> {
    if bindings.len() != prep.params.len() {
        return err(format!(
            "kernel `{}` expects {} arguments, got {}",
            prep.name,
            prep.params.len(),
            bindings.len()
        ));
    }
    let mut scalar_args = Vec::new();
    let mut bufs: Vec<Option<&SharedBuf>> = Vec::with_capacity(bindings.len());
    for (i, (b, p)) in bindings.iter().zip(&prep.params).enumerate() {
        match (b, p.is_buffer) {
            (ArgBind::Buf(buf), true) => bufs.push(Some(buf)),
            (ArgBind::Val(_), false) => {
                bufs.push(None);
                let slot = prep.scalar_slots[i].expect("scalar param has a slot");
                scalar_args.push((i, slot, p.kind));
            }
            _ => {
                return err(format!(
                    "argument {i} of kernel `{}` does not match parameter `{}`",
                    prep.name, p.name
                ))
            }
        }
    }
    let tape_fallback = tape_fallback_reason(prep, &bufs);
    let vector_fallback = if tape_fallback.is_some() {
        None
    } else if prep.uses_groups {
        Some(
            "kernel uses workgroup features (barriers/local memory); \
             the vector engine covers flat NDRanges only"
                .to_string(),
        )
    } else {
        None
    };
    Ok(LaunchPlan { scalar_args, tape_fallback, vector_fallback })
}

/// [`launch_wg`] with an explicit backend selection.
#[allow(clippy::too_many_arguments)]
pub fn launch_wg_engine(
    prep: &Prepared,
    bindings: &[ArgBind<'_>],
    global: &[usize],
    local: Option<usize>,
    mode: ExecMode,
    race_check: bool,
    transaction_size: u64,
    engine: Engine,
) -> Result<LaunchStats, ExecError> {
    let plan = plan_launch(prep, bindings)?;
    launch_planned(prep, &plan, bindings, global, local, mode, race_check, transaction_size, engine)
}

/// Launches with a previously resolved [`LaunchPlan`]. Performs only the
/// per-launch work: scalar-value casts, NDRange/workgroup validation, and
/// backend dispatch. The bindings must have the shape and buffer kinds the
/// plan was made for (checked in debug builds).
#[allow(clippy::too_many_arguments)]
pub fn launch_planned(
    prep: &Prepared,
    plan: &LaunchPlan,
    bindings: &[ArgBind<'_>],
    global: &[usize],
    local: Option<usize>,
    mode: ExecMode,
    race_check: bool,
    transaction_size: u64,
    engine: Engine,
) -> Result<LaunchStats, ExecError> {
    debug_assert_eq!(bindings.len(), prep.params.len(), "plan/binding shape mismatch");
    let mut bufs: Vec<Option<&SharedBuf>> = Vec::with_capacity(bindings.len());
    for b in bindings {
        bufs.push(match b {
            ArgBind::Buf(buf) => Some(buf),
            ArgBind::Val(_) => None,
        });
    }
    debug_assert_eq!(
        plan.tape_fallback,
        tape_fallback_reason(prep, &bufs),
        "launch plan is stale for kernel `{}` (buffer kinds changed?)",
        prep.name
    );
    let mut init_slots: Vec<(usize, Value)> = Vec::with_capacity(plan.scalar_args.len());
    for &(i, slot, kind) in &plan.scalar_args {
        match &bindings[i] {
            ArgBind::Val(v) => init_slots.push((slot, v.cast(kind))),
            ArgBind::Buf(_) => {
                return err(format!(
                    "argument {i} of kernel `{}` is a buffer but the launch plan expects a scalar",
                    prep.name
                ))
            }
        }
    }
    let mut gsize = [1usize; 3];
    for (d, g) in global.iter().enumerate() {
        gsize[d] = *g;
    }
    let total: u64 = (gsize[0] as u64) * (gsize[1] as u64) * (gsize[2] as u64);

    let lsize = if prep.uses_groups {
        let lsize = match local {
            Some(l) if l > 0 => l,
            _ => {
                return err(format!(
                    "kernel `{}` uses workgroup features; launch it with an explicit local size \
                     (global {global:?}, local {local:?})",
                    prep.name
                ))
            }
        };
        if prep.work_dim != 1 || gsize[1] != 1 || gsize[2] != 1 {
            return err(format!(
                "kernel `{}`: workgroup kernels are supported for 1-D NDRanges only \
                 (global {global:?}, local size {lsize})",
                prep.name
            ));
        }
        if !total.is_multiple_of(lsize as u64) {
            return err(format!(
                "kernel `{}`: global size {total} is not a multiple of the workgroup size \
                 {lsize} (global {global:?})",
                prep.name
            ));
        }
        Some(lsize)
    } else {
        None
    };

    let backend = match engine {
        Engine::Tree => Backend::Tree,
        Engine::Tape => {
            if let Some(reason) = &plan.tape_fallback {
                note_tape_fallback(&prep.name, reason);
                Backend::Tree
            } else {
                Backend::Tape
            }
        }
        Engine::Vector => {
            if let Some(reason) = &plan.tape_fallback {
                note_tape_fallback(&prep.name, reason);
                Backend::Tree
            } else if let Some(reason) = &plan.vector_fallback {
                note_vector_fallback(&prep.name, reason);
                Backend::Tape
            } else {
                Backend::Vector
            }
        }
        Engine::Compiled => {
            if let Some(reason) = &plan.tape_fallback {
                note_tape_fallback(&prep.name, reason);
                Backend::Tree
            } else if let Some(reason) = &plan.vector_fallback {
                // Grouped launches: same coverage boundary as the vector
                // engine, but audited as a compiled fallback so the
                // `vgpu.compiled.fallbacks` counter reflects it.
                note_compiled_fallback(&prep.name, reason);
                Backend::Tape
            } else if prep.fused.is_none() {
                let reason = prep
                    .fused_err
                    .clone()
                    .unwrap_or_else(|| "tape failed superinstruction lowering".to_string());
                note_compiled_fallback(&prep.name, &reason);
                Backend::Vector
            } else {
                Backend::Compiled
            }
        }
        Engine::Differential => {
            return run_differential(
                prep,
                &bufs,
                &init_slots,
                gsize,
                total,
                lsize,
                mode,
                race_check,
                transaction_size,
            )
        }
    };
    run_launch(
        prep,
        &bufs,
        &init_slots,
        gsize,
        total,
        lsize,
        mode,
        race_check,
        transaction_size,
        backend,
    )
}

/// Dispatches a validated launch to one backend.
#[allow(clippy::too_many_arguments)]
fn run_launch(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    total: u64,
    lsize: Option<usize>,
    mode: ExecMode,
    race_check: bool,
    transaction_size: u64,
    backend: Backend,
) -> Result<LaunchStats, ExecError> {
    let trace_on = matches!(mode, ExecMode::Model { .. });
    let stride = match mode {
        ExecMode::Fast => 1usize,
        ExecMode::Model { sample_stride } => sample_stride.max(1),
    };
    let result = match (lsize, backend) {
        (Some(lsize), Backend::Tree) => {
            let exec = Exec { prep, bufs, gsize };
            run_grouped(
                &exec,
                prep,
                init_slots,
                total,
                lsize,
                stride,
                trace_on,
                race_check,
                transaction_size,
            )
        }
        (Some(lsize), Backend::Tape) => run_grouped_tape(
            prep,
            bufs,
            init_slots,
            total,
            lsize,
            stride,
            trace_on,
            race_check,
            transaction_size,
        ),
        (Some(_), Backend::Vector | Backend::Compiled) => {
            unreachable!("vector/compiled backends are never selected for grouped launches")
        }
        (None, Backend::Tree) => run_flat_tree(
            prep,
            bufs,
            init_slots,
            gsize,
            total,
            stride,
            trace_on,
            race_check,
            transaction_size,
        ),
        (None, Backend::Tape) => run_flat_tape(
            prep,
            bufs,
            init_slots,
            gsize,
            total,
            stride,
            trace_on,
            race_check,
            transaction_size,
        ),
        (None, Backend::Vector) => run_flat_vector(
            prep,
            bufs,
            init_slots,
            gsize,
            total,
            stride,
            trace_on,
            race_check,
            transaction_size,
        ),
        (None, Backend::Compiled) => run_flat_compiled(
            prep,
            bufs,
            init_slots,
            gsize,
            total,
            stride,
            trace_on,
            race_check,
            transaction_size,
        ),
    };
    result.map(|mut stats| {
        stats.backend = backend;
        if stats.divergent_warps > 0 {
            note_warp_divergence(&prep.name, stats.divergent_warps);
        }
        stats
    })
}

/// Runs the tree-walker, snapshots its output, then for each fast engine
/// (scalar tape, then — on flat NDRanges — the warp-vectorized tape, then
/// — when lowering succeeded — the compiled superinstruction engine)
/// restores the inputs, re-runs the launch, and fails unless the engine
/// produced bit-identical buffers and identical counters and transaction
/// bytes. Returns the last (fastest) leg's stats, tagged with the oracle's
/// wall time.
#[allow(clippy::too_many_arguments)]
fn run_differential(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    total: u64,
    lsize: Option<usize>,
    mode: ExecMode,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    // The differential engine doubles as the sanitizer gate: under
    // `VGPU_SANITIZE=shadow` any *new* shadow finding on this kernel
    // (the count is per-kernel, so concurrent launches of other kernels
    // cannot trip it) turns the launch into a hard error — the CI
    // `diff`+`shadow` leg fails on the first stale or uninit read.
    let findings_before = crate::sanitize::findings_for(&prep.name);
    let stats = run_differential_legs(
        prep,
        bufs,
        init_slots,
        gsize,
        total,
        lsize,
        mode,
        race_check,
        transaction_size,
    )?;
    let new = crate::sanitize::findings_for(&prep.name) - findings_before;
    if new > 0 {
        let detail: Vec<String> = crate::sanitize::findings()
            .into_iter()
            .filter(|f| f.kernel == prep.name)
            .map(|f| f.to_string())
            .collect();
        return err(format!(
            "shadow sanitizer flagged {new} finding(s) during differential launch of `{}`: {}",
            prep.name,
            detail.join("; ")
        ));
    }
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn run_differential_legs(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    total: u64,
    lsize: Option<usize>,
    mode: ExecMode,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    let usable = tape_usable(prep, bufs);
    let snaps: Vec<Option<BufData>> = bufs.iter().map(|b| b.map(|b| b.data().clone())).collect();
    let tree = run_launch(
        prep,
        bufs,
        init_slots,
        gsize,
        total,
        lsize,
        mode,
        race_check,
        transaction_size,
        Backend::Tree,
    )?;
    if !usable {
        return Ok(tree);
    }
    let tree_out: Vec<Option<BufData>> = bufs.iter().map(|b| b.map(|b| b.data().clone())).collect();
    let restore = |snaps: &[Option<BufData>]| {
        for (b, s) in bufs.iter().zip(snaps) {
            if let (Some(b), Some(s)) = (b, s) {
                b.restore(s.clone());
            }
        }
    };
    restore(&snaps);
    let mut tape = run_launch(
        prep,
        bufs,
        init_slots,
        gsize,
        total,
        lsize,
        mode,
        race_check,
        transaction_size,
        Backend::Tape,
    )?;
    tape.oracle_wall = Some(tree.wall);
    diff_check(prep, bufs, &tree_out, &tree, &tape, "tape")?;
    if lsize.is_some() {
        // Grouped (barrier) launches are outside the vector engine's
        // coverage; the scalar tape is the fast leg there.
        return Ok(tape);
    }
    restore(&snaps);
    let mut vector = run_launch(
        prep,
        bufs,
        init_slots,
        gsize,
        total,
        lsize,
        mode,
        race_check,
        transaction_size,
        Backend::Vector,
    )?;
    vector.oracle_wall = Some(tree.wall);
    diff_check(prep, bufs, &tree_out, &tree, &vector, "vector")?;
    if prep.fused.is_none() {
        // Structural lowering rejected the tape; the vector engine is the
        // fastest leg that exists for this kernel.
        return Ok(vector);
    }
    restore(&snaps);
    let mut compiled = run_launch(
        prep,
        bufs,
        init_slots,
        gsize,
        total,
        lsize,
        mode,
        race_check,
        transaction_size,
        Backend::Compiled,
    )?;
    compiled.oracle_wall = Some(tree.wall);
    diff_check(prep, bufs, &tree_out, &tree, &compiled, "compiled")?;
    Ok(compiled)
}

/// One differential-leg comparison: current buffer contents against the
/// oracle's outputs (bitwise), plus counters and transaction bytes.
fn diff_check(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    expect: &[Option<BufData>],
    oracle: &LaunchStats,
    got: &LaunchStats,
    label: &str,
) -> Result<(), ExecError> {
    for (i, (b, e)) in bufs.iter().zip(expect).enumerate() {
        if let (Some(b), Some(e)) = (b, e) {
            if !bits_eq(b.data(), e) {
                return err(format!(
                    "differential check failed for kernel `{}`: buffer `{}` differs between tree-walker and {label}",
                    prep.name, prep.params[i].name
                ));
            }
        }
    }
    if got.counters != oracle.counters {
        return err(format!(
            "differential check failed for kernel `{}`: counters differ (tree {:?}, {label} {:?})",
            prep.name, oracle.counters, got.counters
        ));
    }
    if got.transaction_bytes != oracle.transaction_bytes {
        return err(format!(
            "differential check failed for kernel `{}`: transaction bytes differ (tree {:?}, {label} {:?})",
            prep.name, oracle.transaction_bytes, got.transaction_bytes
        ));
    }
    Ok(())
}

/// Bitwise buffer equality (distinguishes NaN payloads and signed zeros,
/// which `PartialEq` on floats would not).
fn bits_eq(a: &BufData, b: &BufData) -> bool {
    match (a, b) {
        (BufData::F32(x), BufData::F32(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
        }
        (BufData::F64(x), BufData::F64(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
        }
        (BufData::I32(x), BufData::I32(y)) => x == y,
        _ => false,
    }
}

/// Sampled-launch scale factor: the full NDRange over the work-items the
/// sampled warps actually covered. The last warp may be partial when the
/// global size is not a multiple of [`WARP`], so weighting by warp *count*
/// would over-scale whenever that warp is sampled.
fn flat_sample_scale(total: u64, warp_ids: &[u64]) -> f64 {
    let covered: u64 = warp_ids.iter().map(|&w| (WARP as u64).min(total - w * WARP as u64)).sum();
    if covered == 0 || covered == total {
        1.0
    } else {
        total as f64 / covered as f64
    }
}

/// Per-launch aggregation shared by every backend: sums warp/group results,
/// runs the race check, and applies the sampling scale.
fn finish(
    prep: &Prepared,
    results: Vec<(Counters, u64, Vec<WriteRec>)>,
    race_check: bool,
    trace_on: bool,
    scale: f64,
    wall: std::time::Duration,
    total: u64,
) -> Result<LaunchStats, ExecError> {
    let mut counters = Counters::default();
    let mut tbytes = 0u64;
    let mut all_writes: Vec<WriteRec> = Vec::new();
    for (c, t, mut w) in results {
        counters.add(&c);
        tbytes += t;
        all_writes.append(&mut w);
    }
    if race_check {
        check_write_races(&prep.name, all_writes)?;
    }
    Ok(LaunchStats {
        counters: counters.scaled(scale),
        transaction_bytes: trace_on.then(|| (tbytes as f64 * scale).round() as u64),
        wall,
        global_work_items: total,
        // Overwritten by `run_launch`, which knows which backend ran.
        backend: Backend::Tree,
        // Set by `run_flat_vector`; 0 everywhere else.
        divergent_warps: 0,
        // Set by `run_differential` when an oracle leg also ran.
        oracle_wall: None,
        // Set by `run_flat_tape` / `run_flat_vector` when `VGPU_PROFILE=op`.
        op_profile: None,
    })
}

/// Race detection over the recorded write set. A work-item may rewrite its
/// own element; two *different* items writing the same element is a data
/// race under the launch contract. Reports every distinct conflicting
/// element together with the static store sites involved.
fn check_write_races(name: &str, mut all: Vec<WriteRec>) -> Result<(), ExecError> {
    all.sort_unstable();
    let mut conflicts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < all.len() {
        let (b, e, ..) = all[i];
        let mut j = i;
        while j < all.len() && all[j].0 == b && all[j].1 == e {
            j += 1;
        }
        let run = &all[i..j];
        // items are sorted within the run (lexicographic tuple order)
        let mut items: Vec<u64> = run.iter().map(|r| r.2).collect();
        items.dedup();
        if items.len() > 1 {
            let mut sites: Vec<u32> = run.iter().map(|r| r.3).collect();
            sites.sort_unstable();
            sites.dedup();
            conflicts.push(format!(
                "buffer {b} element {e}: {} work-items via site(s) {sites:?}",
                items.len()
            ));
        }
        i = j;
    }
    if conflicts.is_empty() {
        return Ok(());
    }
    let shown = conflicts.iter().take(4).cloned().collect::<Vec<_>>().join("; ");
    let extra = conflicts.len().saturating_sub(4);
    let more = if extra > 0 { format!("; … {extra} more") } else { String::new() };
    err(format!(
        "race check failed for kernel `{name}`: {} conflicting element(s): {shown}{more}",
        conflicts.len()
    ))
}

/// Tree-walker execution of a barrier-free NDRange, parallel over warps.
#[allow(clippy::too_many_arguments)]
fn run_flat_tree(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    total: u64,
    stride: usize,
    trace_on: bool,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    let exec = Exec { prep, bufs, gsize };
    let warps_total = total.div_ceil(WARP as u64);
    let warp_ids: Vec<u64> = (0..warps_total).step_by(stride).collect();
    let chunk = dispatch_chunk(warp_ids.len());

    let start = std::time::Instant::now();
    let results: Vec<(Counters, u64, Vec<WriteRec>)> = warp_ids
        .par_chunks(chunk)
        .map(|ws| {
            // One rayon task per chunk of warps; the scratch state below is
            // allocated once and reset per warp, reproducing the state a
            // per-warp task would have started from.
            let mut st = ItemState {
                slots: vec![Value::I32(0); prep.nslots],
                privs: vec![Vec::new(); prep.npriv],
                counters: Counters::default(),
                trace: Vec::new(),
                writes: Vec::new(),
                trace_on,
                race_on: race_check,
                item: 0,
            };
            let mut no_locals: Vec<Vec<Value>> = Vec::new();
            let mut ends: Vec<usize> = Vec::new();
            let mut writes: Vec<WriteRec> = Vec::new();
            let mut tbytes = 0u64;
            for &w in ws {
                for s in st.slots.iter_mut() {
                    *s = Value::I32(0);
                }
                for p in st.privs.iter_mut() {
                    p.clear();
                }
                let begin = w * WARP as u64;
                let end = (begin + WARP as u64).min(total);
                for item in begin..end {
                    for (slot, v) in init_slots {
                        st.slots[*slot] = *v;
                    }
                    exec.run_item(item, &mut st, &mut no_locals);
                    if trace_on {
                        ends.push(st.trace.len());
                    }
                    if race_check {
                        writes.append(&mut st.writes);
                    }
                }
                if trace_on {
                    tbytes += warp_transaction_bytes_flat(&mut st.trace, &ends, transaction_size);
                    st.trace.clear();
                    ends.clear();
                }
            }
            (st.counters, tbytes, writes)
        })
        .collect();
    let wall = start.elapsed();
    let scale = flat_sample_scale(total, &warp_ids);
    finish(prep, results, race_check, trace_on, scale, wall, total)
}

/// Bytecode execution of a barrier-free NDRange, parallel over warps. The
/// warp loop mirrors [`run_flat_tree`] exactly so counters, traces, and
/// race records are item-for-item identical.
#[allow(clippy::too_many_arguments)]
fn run_flat_tape(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    total: u64,
    stride: usize,
    trace_on: bool,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    let tape = prep.tape.as_ref().expect("tape checked by caller");
    let init_bits: Vec<(usize, u64)> =
        init_slots.iter().map(|(s, v)| (*s, bytecode::bits_of_value(*v))).collect();
    let warps_total = total.div_ceil(WARP as u64);
    let warp_ids: Vec<u64> = (0..warps_total).step_by(stride).collect();
    let chunk = dispatch_chunk(warp_ids.len());
    let gx = gsize[0] as u64;
    let gy = gsize[1] as u64;

    // Per-op profiling allocates one tally per rayon chunk, merged after the
    // parallel section — no shared state inside the hot loop.
    let prof_on = crate::profiler::op_enabled();
    let start = std::time::Instant::now();
    let results: Vec<ProfChunkResult> = warp_ids
        .par_chunks(chunk)
        .map(|ws| {
            // One rayon task per chunk of warps: the register file, private
            // arrays, and trace storage are allocated once and reset per
            // warp instead of reallocated per warp.
            let mut regs = vec![0u64; tape.nregs];
            let mut privs: Vec<Vec<u64>> = vec![Vec::new(); prep.npriv];
            let mut no_locals: Vec<Vec<u64>> = Vec::new();
            let mut counters = Counters::default();
            let mut trace: Vec<(u32, u32, u64)> = Vec::new();
            let mut ends: Vec<usize> = Vec::new();
            let mut writes: Vec<WriteRec> = Vec::new();
            let mut tbytes = 0u64;
            let mut prof: Option<Box<crate::profiler::OpProf>> =
                prof_on.then(Box::<crate::profiler::OpProf>::default);
            for &w in ws {
                regs.fill(0);
                for (slot, b) in &init_bits {
                    regs[*slot] = *b;
                }
                bytecode::exec_pre(tape, &mut regs, gsize);
                for p in privs.iter_mut() {
                    p.clear();
                }
                let begin = w * WARP as u64;
                let end = (begin + WARP as u64).min(total);
                for item in begin..end {
                    for (slot, b) in &init_bits {
                        regs[*slot] = *b;
                    }
                    let gid = [
                        (item % gx) as usize,
                        ((item / gx) % gy) as usize,
                        (item / (gx * gy)) as usize,
                    ];
                    counters.work_items += 1;
                    let group = (item / WARP as u64) as usize;
                    bytecode::exec_item_pre(tape, &mut regs, gid, 0, 1, group);
                    let mut t = TapeCtx {
                        bufs,
                        gsize,
                        counters: &mut counters,
                        trace: &mut trace,
                        trace_on,
                        writes: &mut writes,
                        race_on: race_check,
                        item,
                        gid,
                        lid: 0,
                        group,
                        lsize: 1,
                        prof: prof.as_deref_mut(),
                        san: Some(crate::sanitize::SanCtx {
                            kernel: &prep.name,
                            params: &prep.params,
                        }),
                    };
                    bytecode::exec_phase(tape, 0, &mut regs, &mut privs, &mut no_locals, &mut t);
                    if trace_on {
                        ends.push(trace.len());
                    }
                }
                if trace_on {
                    tbytes += warp_transaction_bytes_flat(&mut trace, &ends, transaction_size);
                    trace.clear();
                    ends.clear();
                }
            }
            (counters, tbytes, writes, prof)
        })
        .collect();
    let wall = start.elapsed();
    let (results, op_profile) = merge_op_profiles(results);
    let scale = flat_sample_scale(total, &warp_ids);
    let mut stats = finish(prep, results, race_check, trace_on, scale, wall, total)?;
    stats.op_profile = op_profile;
    Ok(stats)
}

/// The per-chunk result triple [`finish`] aggregates.
type ChunkResult = (Counters, u64, Vec<WriteRec>);

/// [`ChunkResult`] plus the chunk's op-profile tally (present only when
/// `VGPU_PROFILE=op` was active for the launch).
type ProfChunkResult = (Counters, u64, Vec<WriteRec>, Option<Box<crate::profiler::OpProf>>);

/// Strips per-chunk op-profile tallies off backend results, merging them
/// into one launch-wide [`crate::profiler::OpProf`] (`None` when profiling
/// was off for the launch).
fn merge_op_profiles(
    results: Vec<ProfChunkResult>,
) -> (Vec<ChunkResult>, Option<Box<crate::profiler::OpProf>>) {
    let mut merged: Option<Box<crate::profiler::OpProf>> = None;
    let results = results
        .into_iter()
        .map(|(c, t, w, p)| {
            if let Some(p) = p {
                match merged.as_deref_mut() {
                    Some(m) => m.merge(&p),
                    None => merged = Some(p),
                }
            }
            (c, t, w)
        })
        .collect();
    (results, merged)
}

/// Warp-vectorized execution of a barrier-free NDRange: each tape op is
/// decoded once per warp and applied to all active lanes through a
/// structure-of-arrays register file ([`bytecode::exec_phase_warp`]).
/// Arithmetic, counters, per-lane access traces, and race records reproduce
/// the scalar runners bit for bit. Warps whose lanes disagree at a branch
/// stay vectorized: both sides execute under complementary lane masks and
/// reconverge at the branch's immediate postdominator, the same mask/stack
/// discipline real SIMT hardware applies (per-lane scalar continuation
/// remains only as a valve for unstructured control flow).
#[allow(clippy::too_many_arguments)]
fn run_flat_vector(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    total: u64,
    stride: usize,
    trace_on: bool,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    let tape = prep.tape.as_ref().expect("tape checked by caller");
    let init_bits: Vec<(usize, u64)> =
        init_slots.iter().map(|(s, v)| (*s, bytecode::bits_of_value(*v))).collect();
    let warps_total = total.div_ceil(WARP as u64);
    let warp_ids: Vec<u64> = (0..warps_total).step_by(stride).collect();
    let chunk = dispatch_chunk(warp_ids.len());
    let gx = gsize[0] as u64;
    let gy = gsize[1] as u64;

    // The launch-invariant register state (zeroed file + scalar arguments +
    // the optimizer's hoisted prelude) is computed once per *launch* and
    // broadcast into each warp's SoA file — every other register is written
    // before it is read within one item (the same single-writer property
    // the hoisting pass relies on), so its lanes may start as garbage.
    let mut regs0 = vec![0u64; tape.nregs];
    for (slot, b) in &init_bits {
        regs0[*slot] = *b;
    }
    bytecode::exec_pre(tape, &mut regs0, gsize);
    let (bcast_once, bcast_warp) = bytecode::warp_init_regs(tape, prep.nslots);

    let prof_on = crate::profiler::op_enabled();
    let start = std::time::Instant::now();
    type VecChunk = (Counters, u64, Vec<WriteRec>, u64, Option<Box<crate::profiler::OpProf>>);
    let results: Vec<VecChunk> = warp_ids
        .par_chunks(chunk)
        .map(|ws| {
            // One rayon task per chunk of warps; the SoA register file and
            // the per-lane private arrays and traces are allocated once and
            // reset per warp.
            let mut vregs = vec![0u64; tape.nregs * WARP];
            for &r in &bcast_once {
                let row = r as usize * WARP;
                vregs[row..row + WARP].fill(regs0[r as usize]);
            }
            let mut lane_privs: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); prep.npriv]; WARP];
            let mut lane_traces: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); WARP];
            let mut counters = Counters::default();
            let mut writes: Vec<WriteRec> = Vec::new();
            let mut tbytes = 0u64;
            let mut divergent = 0u64;
            let mut prof: Option<Box<crate::profiler::OpProf>> =
                prof_on.then(Box::<crate::profiler::OpProf>::default);
            let mut items: Vec<u64> = Vec::with_capacity(WARP);
            let mut gids: Vec<[usize; 3]> = Vec::with_capacity(WARP);
            for &w in ws {
                let begin = w * WARP as u64;
                let end = (begin + WARP as u64).min(total);
                let nact = (end - begin) as usize;
                items.clear();
                gids.clear();
                // One division per warp; lanes advance the 3-D id
                // incrementally (items within a warp are consecutive).
                let mut gid = [
                    (begin % gx) as usize,
                    ((begin / gx) % gy) as usize,
                    (begin / (gx * gy)) as usize,
                ];
                for item in begin..end {
                    items.push(item);
                    gids.push(gid);
                    gid[0] += 1;
                    if gid[0] as u64 == gx {
                        gid[0] = 0;
                        gid[1] += 1;
                        if gid[1] as u64 == gy {
                            gid[1] = 0;
                            gid[2] += 1;
                        }
                    }
                }
                for &r in &bcast_warp {
                    let row = r as usize * WARP;
                    vregs[row..row + WARP].fill(regs0[r as usize]);
                }
                if prep.npriv > 0 {
                    for lp in lane_privs[..nact].iter_mut() {
                        for p in lp.iter_mut() {
                            p.clear();
                        }
                    }
                }
                counters.work_items += nact as u64;
                bytecode::exec_item_pre_warp(tape, &mut vregs, nact, &gids, &items);
                let mut wc = bytecode::WarpCtx {
                    bufs,
                    counters: &mut counters,
                    traces: &mut lane_traces,
                    trace_on,
                    writes: &mut writes,
                    race_on: race_check,
                    items: &items,
                    gids: &gids,
                    gsize,
                    prof: prof.as_deref_mut(),
                    san: Some(crate::sanitize::SanCtx { kernel: &prep.name, params: &prep.params }),
                };
                if bytecode::exec_phase_warp(tape, 0, nact, &mut vregs, &mut lane_privs, &mut wc) {
                    divergent += 1;
                }
                if trace_on {
                    tbytes += warp_transaction_bytes(&mut lane_traces[..nact], transaction_size);
                    for tr in lane_traces[..nact].iter_mut() {
                        tr.clear();
                    }
                }
            }
            (counters, tbytes, writes, divergent, prof)
        })
        .collect();
    let wall = start.elapsed();
    let mut divergent = 0u64;
    let results: Vec<ProfChunkResult> = results
        .into_iter()
        .map(|(c, t, w, d, p)| {
            divergent += d;
            (c, t, w, p)
        })
        .collect();
    let (results, op_profile) = merge_op_profiles(results);
    let scale = flat_sample_scale(total, &warp_ids);
    let mut stats = finish(prep, results, race_check, trace_on, scale, wall, total)?;
    stats.op_profile = op_profile;
    stats.divergent_warps = divergent;
    Ok(stats)
}

/// Compiled superinstruction execution of a barrier-free NDRange
/// (`VGPU_ENGINE=compiled`): the warp loop of [`run_flat_vector`] driving
/// [`bytecode::exec_fused_warp`] over the pre-lowered basic-block form,
/// with per-access bounds checks elided at sites the static verifier
/// proved in bounds for this launch shape (see [`compiled_checked_sites`]).
/// Modeled/traced and race-checked launches need the per-lane access
/// traces only the vector interpreter produces, so those run
/// [`run_flat_vector`] wholesale — the engines are bit-identical, and
/// tracing launches are sampled/infrequent by construction.
#[allow(clippy::too_many_arguments)]
fn run_flat_compiled(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    gsize: [usize; 3],
    total: u64,
    stride: usize,
    trace_on: bool,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    if trace_on || race_check {
        return run_flat_vector(
            prep,
            bufs,
            init_slots,
            gsize,
            total,
            stride,
            trace_on,
            race_check,
            transaction_size,
        );
    }
    let tape = prep.tape.as_ref().expect("tape checked by caller");
    let fused = prep.fused.as_ref().expect("fused form checked by caller");
    let checked = compiled_checked_sites(prep, bufs, init_slots, gsize, fused.nsites);
    let init_bits: Vec<(usize, u64)> =
        init_slots.iter().map(|(s, v)| (*s, bytecode::bits_of_value(*v))).collect();
    let warps_total = total.div_ceil(WARP as u64);
    let warp_ids: Vec<u64> = (0..warps_total).step_by(stride).collect();
    let chunk = dispatch_chunk(warp_ids.len());
    let gx = gsize[0] as u64;
    let gy = gsize[1] as u64;

    let mut regs0 = vec![0u64; tape.nregs];
    for (slot, b) in &init_bits {
        regs0[*slot] = *b;
    }
    bytecode::exec_pre(tape, &mut regs0, gsize);
    let (bcast_once, bcast_warp) = bytecode::warp_init_regs(tape, prep.nslots);

    let prof_on = crate::profiler::op_enabled();
    let start = std::time::Instant::now();
    type VecChunk = (Counters, u64, Vec<WriteRec>, u64, Option<Box<crate::profiler::OpProf>>);
    let results: Vec<VecChunk> = warp_ids
        .par_chunks(chunk)
        .map(|ws| {
            let mut vregs = vec![0u64; tape.nregs * WARP];
            for &r in &bcast_once {
                let row = r as usize * WARP;
                vregs[row..row + WARP].fill(regs0[r as usize]);
            }
            let mut lane_privs: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); prep.npriv]; WARP];
            let mut lane_traces: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); WARP];
            let mut counters = Counters::default();
            let mut writes: Vec<WriteRec> = Vec::new();
            let mut divergent = 0u64;
            let mut prof: Option<Box<crate::profiler::OpProf>> =
                prof_on.then(Box::<crate::profiler::OpProf>::default);
            let mut items: Vec<u64> = Vec::with_capacity(WARP);
            let mut gids: Vec<[usize; 3]> = Vec::with_capacity(WARP);
            for &w in ws {
                let begin = w * WARP as u64;
                let end = (begin + WARP as u64).min(total);
                let nact = (end - begin) as usize;
                items.clear();
                gids.clear();
                let mut gid = [
                    (begin % gx) as usize,
                    ((begin / gx) % gy) as usize,
                    (begin / (gx * gy)) as usize,
                ];
                for item in begin..end {
                    items.push(item);
                    gids.push(gid);
                    gid[0] += 1;
                    if gid[0] as u64 == gx {
                        gid[0] = 0;
                        gid[1] += 1;
                        if gid[1] as u64 == gy {
                            gid[1] = 0;
                            gid[2] += 1;
                        }
                    }
                }
                for &r in &bcast_warp {
                    let row = r as usize * WARP;
                    vregs[row..row + WARP].fill(regs0[r as usize]);
                }
                if prep.npriv > 0 {
                    for lp in lane_privs[..nact].iter_mut() {
                        for p in lp.iter_mut() {
                            p.clear();
                        }
                    }
                }
                counters.work_items += nact as u64;
                bytecode::exec_item_pre_warp(tape, &mut vregs, nact, &gids, &items);
                let mut wc = bytecode::WarpCtx {
                    bufs,
                    counters: &mut counters,
                    traces: &mut lane_traces,
                    trace_on: false,
                    writes: &mut writes,
                    race_on: false,
                    items: &items,
                    gids: &gids,
                    gsize,
                    prof: prof.as_deref_mut(),
                    san: Some(crate::sanitize::SanCtx { kernel: &prep.name, params: &prep.params }),
                };
                if bytecode::exec_fused_warp(
                    fused,
                    tape,
                    0,
                    nact,
                    &mut vregs,
                    &mut lane_privs,
                    &mut wc,
                    &checked,
                ) {
                    divergent += 1;
                }
            }
            (counters, 0u64, writes, divergent, prof)
        })
        .collect();
    let wall = start.elapsed();
    let mut divergent = 0u64;
    let results: Vec<ProfChunkResult> = results
        .into_iter()
        .map(|(c, t, w, d, p)| {
            divergent += d;
            (c, t, w, p)
        })
        .collect();
    let (results, op_profile) = merge_op_profiles(results);
    let scale = flat_sample_scale(total, &warp_ids);
    let mut stats = finish(prep, results, race_check, trace_on, scale, wall, total)?;
    stats.op_profile = op_profile;
    stats.divergent_warps = divergent;
    Ok(stats)
}

/// Bytecode execution of a grouped (barrier-synchronised) NDRange; mirrors
/// [`run_grouped`] phase for phase.
#[allow(clippy::too_many_arguments)]
fn run_grouped_tape(
    prep: &Prepared,
    bufs: &[Option<&SharedBuf>],
    init_slots: &[(usize, Value)],
    total: u64,
    lsize: usize,
    stride: usize,
    trace_on: bool,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    let tape = prep.tape.as_ref().expect("tape checked by caller");
    let init_bits: Vec<(usize, u64)> =
        init_slots.iter().map(|(s, v)| (*s, bytecode::bits_of_value(*v))).collect();
    let gsize = [total as usize, 1, 1];
    let groups_total = (total / lsize as u64) as usize;
    let group_ids: Vec<usize> = (0..groups_total).step_by(stride).collect();
    let chunk = dispatch_chunk(group_ids.len());
    let start = std::time::Instant::now();
    let results: Vec<(Counters, u64, Vec<WriteRec>)> = group_ids
        .par_chunks(chunk)
        .map(|gs| {
            // One rayon task per chunk of groups; per-item register files,
            // private arrays, and traces are allocated once and reset to
            // fresh-group state for each group in the chunk.
            let mut locals: Vec<Vec<u64>> = vec![Vec::new(); prep.local_kinds.len()];
            let mut regss: Vec<Vec<u64>> = vec![vec![0u64; tape.nregs]; lsize];
            let mut privss: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); prep.npriv]; lsize];
            let mut counterss: Vec<Counters> = vec![Counters::default(); lsize];
            let mut tracess: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); lsize];
            let mut active = vec![true; lsize];
            let mut counters = Counters::default();
            let mut tbytes = 0u64;
            let mut writes: Vec<WriteRec> = Vec::new();
            for &g in gs {
                for l in locals.iter_mut() {
                    // Emptied so the group's first DeclLocal re-zeros it.
                    l.clear();
                }
                for lid in 0..lsize {
                    regss[lid].fill(0);
                    for (slot, b) in &init_bits {
                        regss[lid][*slot] = *b;
                    }
                    bytecode::exec_pre(tape, &mut regss[lid], gsize);
                    let linear = g * lsize + lid;
                    bytecode::exec_item_pre(tape, &mut regss[lid], [linear, 0, 0], lid, lsize, g);
                    for p in privss[lid].iter_mut() {
                        p.clear();
                    }
                    counterss[lid] = Counters::default();
                    tracess[lid].clear();
                    active[lid] = true;
                }
                for phase in 0..tape.phases() {
                    for lid in 0..lsize {
                        if !active[lid] {
                            continue;
                        }
                        let linear = (g * lsize + lid) as u64;
                        counterss[lid].work_items += 1;
                        let mut t = TapeCtx {
                            bufs,
                            gsize,
                            counters: &mut counterss[lid],
                            trace: &mut tracess[lid],
                            trace_on,
                            writes: &mut writes,
                            race_on: race_check,
                            item: linear,
                            gid: [linear as usize, 0, 0],
                            lid,
                            group: g,
                            lsize,
                            // Grouped (barrier) launches profile at kernel
                            // granularity only; the flat runners carry the
                            // per-op tallies.
                            prof: None,
                            san: Some(crate::sanitize::SanCtx {
                                kernel: &prep.name,
                                params: &prep.params,
                            }),
                        };
                        if bytecode::exec_phase(
                            tape,
                            phase,
                            &mut regss[lid],
                            &mut privss[lid],
                            &mut locals,
                            &mut t,
                        ) {
                            active[lid] = false;
                        }
                    }
                }
                for cs in counterss.iter_mut().take(lsize) {
                    // work_items was incremented once per phase; normalise
                    cs.work_items = 1;
                    counters.add(cs);
                }
                if trace_on {
                    // Same warp-granular partition as the per-group code:
                    // consecutive runs of WARP work-items, last one partial.
                    for warp in tracess.chunks_mut(WARP) {
                        tbytes += warp_transaction_bytes(warp, transaction_size);
                    }
                }
            }
            (counters, tbytes, writes)
        })
        .collect();
    let wall = start.elapsed();
    let scale = if stride > 1 { groups_total as f64 / group_ids.len() as f64 } else { 1.0 };
    finish(prep, results, race_check, trace_on, scale, wall, total)
}

/// Group-mode execution: groups run independently (parallel via rayon);
/// within one group, work-items execute each barrier-delimited phase in
/// turn, sharing local memory. This is the standard sequential-consistency
/// model for barrier-synchronised OpenCL kernels.
#[allow(clippy::too_many_arguments)]
fn run_grouped(
    exec: &Exec<'_>,
    prep: &Prepared,
    init_slots: &[(usize, Value)],
    total: u64,
    lsize: usize,
    stride: usize,
    trace_on: bool,
    race_check: bool,
    transaction_size: u64,
) -> Result<LaunchStats, ExecError> {
    let groups_total = (total / lsize as u64) as usize;
    let group_ids: Vec<usize> = (0..groups_total).step_by(stride).collect();
    let chunk = dispatch_chunk(group_ids.len());
    let start = std::time::Instant::now();
    let results: Vec<(Counters, u64, Vec<WriteRec>)> = group_ids
        .par_chunks(chunk)
        .map(|gs| {
            // One rayon task per chunk of groups with per-item states
            // allocated once and reset to fresh-group values per group.
            let mut locals: Vec<Vec<Value>> = vec![Vec::new(); prep.local_kinds.len()];
            let mut states: Vec<ItemState> = (0..lsize)
                .map(|_| ItemState {
                    slots: vec![Value::I32(0); prep.nslots],
                    privs: vec![Vec::new(); prep.npriv],
                    counters: Counters::default(),
                    trace: Vec::new(),
                    writes: Vec::new(),
                    trace_on,
                    race_on: race_check,
                    item: 0,
                })
                .collect();
            let mut active = vec![true; lsize];
            let mut counters = Counters::default();
            let mut writes = Vec::new();
            let mut tbytes = 0u64;
            for &g in gs {
                for l in locals.iter_mut() {
                    // Emptied so the group's first DeclLocal re-allocates.
                    l.clear();
                }
                for (lid, st) in states.iter_mut().enumerate() {
                    for s in st.slots.iter_mut() {
                        *s = Value::I32(0);
                    }
                    for (slot, v) in init_slots {
                        st.slots[*slot] = *v;
                    }
                    for p in st.privs.iter_mut() {
                        p.clear();
                    }
                    st.counters = Counters::default();
                    st.trace.clear();
                    st.item = (g * lsize + lid) as u64;
                    active[lid] = true;
                }
                for phase in &prep.phases {
                    for lid in 0..lsize {
                        if !active[lid] {
                            continue;
                        }
                        let linear = (g * lsize + lid) as u64;
                        let ic = ItemCtx { gid: [linear as usize, 0, 0], lid, group: g, lsize };
                        states[lid].counters.work_items += 1;
                        if let Flow::Return =
                            exec.exec_block(phase, &mut states[lid], &mut locals, ic)
                        {
                            active[lid] = false;
                        }
                    }
                }
                // aggregate group results; warp-granular transaction counting
                for st in states.iter_mut() {
                    // work_items was incremented once per phase; normalise
                    st.counters.work_items = 1;
                    counters.add(&st.counters);
                    writes.append(&mut st.writes);
                }
                if trace_on {
                    // Same warp-granular partition as the per-group code:
                    // consecutive runs of WARP work-items, last one partial.
                    let mut traces: Vec<Vec<(u32, u32, u64)>> = Vec::new();
                    for st in states.iter_mut() {
                        traces.push(std::mem::take(&mut st.trace));
                    }
                    for warp in traces.chunks_mut(WARP) {
                        tbytes += warp_transaction_bytes(warp, transaction_size);
                    }
                    for (st, t) in states.iter_mut().zip(traces) {
                        st.trace = t;
                    }
                }
            }
            (counters, tbytes, writes)
        })
        .collect();
    let wall = start.elapsed();
    let scale = if stride > 1 { groups_total as f64 / group_ids.len() as f64 } else { 1.0 };
    finish(prep, results, race_check, trace_on, scale, wall, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufData;
    use lift::kast::{Kernel, KernelParam};
    use lift::prelude::*;

    fn saxpy_kernel() -> Kernel {
        Kernel {
            name: "saxpy".into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("y", ScalarKind::F32),
                KernelParam::scalar("a", ScalarKind::F32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![
                KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
                KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::var("a") * KExpr::load(MemRef::Param(0), KExpr::GlobalId(0))
                        + KExpr::load(MemRef::Param(1), KExpr::GlobalId(0)),
                },
            ],
            work_dim: 1,
        }
    }

    #[test]
    fn saxpy_executes_correctly() {
        let prep = prepare(&saxpy_kernel()).unwrap();
        let x = SharedBuf::new(BufData::from((0..100).map(|i| i as f32).collect::<Vec<_>>()));
        let y = SharedBuf::new(BufData::from(vec![1.0f32; 100]));
        let stats = launch(
            &prep,
            &[
                ArgBind::Buf(&x),
                ArgBind::Buf(&y),
                ArgBind::Val(Value::F32(2.0)),
                ArgBind::Val(Value::I32(100)),
            ],
            &[128],
            ExecMode::Fast,
            true,
            128,
        )
        .unwrap();
        let out = y.data().to_f64_vec();
        assert_eq!(out[3], 2.0 * 3.0 + 1.0);
        assert_eq!(out[99], 2.0 * 99.0 + 1.0);
        // 100 active items × 2 loads, 1 store
        assert_eq!(stats.counters.loads_global, 200);
        assert_eq!(stats.counters.stores_global, 100);
        // 2 flops per item
        assert_eq!(stats.counters.flops, 200);
        assert_eq!(stats.counters.work_items, 128);
    }

    #[test]
    fn transaction_model_counts_coalesced_segments() {
        let prep = prepare(&saxpy_kernel()).unwrap();
        let n = 128usize;
        let x = SharedBuf::new(BufData::from(vec![0.0f32; n]));
        let y = SharedBuf::new(BufData::from(vec![0.0f32; n]));
        let stats = launch(
            &prep,
            &[
                ArgBind::Buf(&x),
                ArgBind::Buf(&y),
                ArgBind::Val(Value::F32(1.0)),
                ArgBind::Val(Value::I32(n as i32)),
            ],
            &[n],
            ExecMode::Model { sample_stride: 1 },
            false,
            128,
        )
        .unwrap();
        // Perfectly coalesced: each warp of 32 f32 accesses = 128 bytes = 1
        // transaction per site. 4 warps × 3 sites × 128 B = 1536 B.
        assert_eq!(stats.transaction_bytes, Some(4 * 3 * 128));
    }

    #[test]
    fn race_check_detects_conflicting_writes() {
        // Every work-item stores to element 0.
        let k = Kernel {
            name: "clash".into(),
            params: vec![KernelParam::global_buf("y", ScalarKind::F32)],
            body: vec![KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::int(0),
                value: KExpr::Lit(Lit::f32(1.0)),
            }],
            work_dim: 1,
        };
        let prep = prepare(&k).unwrap();
        let y = SharedBuf::new(BufData::from(vec![0.0f32; 4]));
        let r = launch(&prep, &[ArgBind::Buf(&y)], &[8], ExecMode::Fast, true, 128);
        assert!(r.is_err(), "expected race detection");
    }

    #[test]
    fn for_loop_and_private_arrays() {
        // out[gid] = sum of p[0..4] where p[j] = gid + j
        let k = Kernel {
            name: "privsum".into(),
            params: vec![
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![
                KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
                KStmt::DeclPrivArray {
                    name: "p".into(),
                    kind: ScalarKind::F32,
                    len: KExpr::int(4),
                },
                KStmt::For {
                    var: "j".into(),
                    begin: KExpr::int(0),
                    end: KExpr::int(4),
                    step: KExpr::int(1),
                    body: vec![KStmt::Store {
                        mem: MemRef::Priv("p".into()),
                        idx: KExpr::var("j"),
                        value: KExpr::Cast(
                            ScalarKind::F32,
                            Box::new(KExpr::GlobalId(0) + KExpr::var("j")),
                        ),
                    }],
                },
                KStmt::DeclScalar {
                    name: "s".into(),
                    kind: ScalarKind::F32,
                    init: Some(KExpr::real(0.0)),
                },
                KStmt::For {
                    var: "j2".into(),
                    begin: KExpr::int(0),
                    end: KExpr::int(4),
                    step: KExpr::int(1),
                    body: vec![KStmt::Assign {
                        name: "s".into(),
                        value: KExpr::var("s")
                            + KExpr::load(MemRef::Priv("p".into()), KExpr::var("j2")),
                    }],
                },
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::var("s"),
                },
            ],
            work_dim: 1,
        }
        .resolve_real(ScalarKind::F32);
        let prep = prepare(&k).unwrap();
        let out = SharedBuf::new(BufData::from(vec![0.0f32; 16]));
        launch(
            &prep,
            &[ArgBind::Buf(&out), ArgBind::Val(Value::I32(16))],
            &[16],
            ExecMode::Fast,
            true,
            128,
        )
        .unwrap();
        let o = out.data().to_f64_vec();
        assert_eq!(o[0], 0.0 + 1.0 + 2.0 + 3.0);
        assert_eq!(o[5], 5.0 * 4.0 + 6.0);
    }

    #[test]
    fn scattered_access_costs_more_transactions() {
        // y[gid] = x[gid * 33]: each access in its own 128-B segment.
        let k = Kernel {
            name: "scatter".into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("y", ScalarKind::F32),
            ],
            body: vec![KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0) * KExpr::int(33)),
            }],
            work_dim: 1,
        };
        let prep = prepare(&k).unwrap();
        let x = SharedBuf::new(BufData::from(vec![0.0f32; 33 * 32]));
        let y = SharedBuf::new(BufData::from(vec![0.0f32; 32]));
        let stats = launch(
            &prep,
            &[ArgBind::Buf(&x), ArgBind::Buf(&y)],
            &[32],
            ExecMode::Model { sample_stride: 1 },
            false,
            128,
        )
        .unwrap();
        // loads: 32 distinct segments; stores: 1 segment.
        assert_eq!(stats.transaction_bytes, Some(32 * 128 + 128));
    }

    #[test]
    fn constant_space_loads_tracked_separately() {
        let k = Kernel {
            name: "cst".into(),
            params: vec![
                KernelParam::constant_buf("beta", ScalarKind::F32),
                KernelParam::global_buf("y", ScalarKind::F32),
            ],
            body: vec![KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: KExpr::load(MemRef::Param(0), KExpr::int(0)),
            }],
            work_dim: 1,
        };
        let prep = prepare(&k).unwrap();
        let beta = SharedBuf::new(BufData::from(vec![0.5f32; 4]));
        let y = SharedBuf::new(BufData::from(vec![0.0f32; 64]));
        let stats = launch(
            &prep,
            &[ArgBind::Buf(&beta), ArgBind::Buf(&y)],
            &[64],
            ExecMode::Fast,
            false,
            128,
        )
        .unwrap();
        assert_eq!(stats.counters.loads_constant, 64);
        assert_eq!(stats.counters.loads_global, 0);
    }

    #[test]
    fn sampling_scales_counters() {
        let prep = prepare(&saxpy_kernel()).unwrap();
        let n = 32 * 64;
        let x = SharedBuf::new(BufData::from(vec![0.0f32; n]));
        let y = SharedBuf::new(BufData::from(vec![0.0f32; n]));
        let args = [
            ArgBind::Buf(&x),
            ArgBind::Buf(&y),
            ArgBind::Val(Value::F32(1.0)),
            ArgBind::Val(Value::I32(n as i32)),
        ];
        let full =
            launch(&prep, &args, &[n], ExecMode::Model { sample_stride: 1 }, false, 128).unwrap();
        let sampled =
            launch(&prep, &args, &[n], ExecMode::Model { sample_stride: 4 }, false, 128).unwrap();
        let f = full.transaction_bytes.unwrap() as f64;
        let s = sampled.transaction_bytes.unwrap() as f64;
        assert!((f - s).abs() / f < 0.05, "full {f}, sampled {s}");
    }

    #[test]
    fn saxpy_compiles_to_a_tape() {
        let prep = prepare(&saxpy_kernel()).unwrap();
        assert!(prep.has_tape(), "saxpy should compile to a tape");
    }

    fn saxpy_launch_engine(
        n: usize,
        global: usize,
        mode: ExecMode,
        engine: Engine,
    ) -> (LaunchStats, Vec<f64>) {
        let prep = prepare(&saxpy_kernel()).unwrap();
        let x = SharedBuf::new(BufData::from((0..n).map(|i| i as f32).collect::<Vec<_>>()));
        let y = SharedBuf::new(BufData::from(vec![1.0f32; n]));
        let stats = launch_wg_engine(
            &prep,
            &[
                ArgBind::Buf(&x),
                ArgBind::Buf(&y),
                ArgBind::Val(Value::F32(2.0)),
                ArgBind::Val(Value::I32(n as i32)),
            ],
            &[global],
            None,
            mode,
            true,
            128,
            engine,
        )
        .unwrap();
        (stats, y.data().to_f64_vec())
    }

    #[test]
    fn tape_matches_tree_on_saxpy() {
        let (ts, to) =
            saxpy_launch_engine(100, 128, ExecMode::Model { sample_stride: 1 }, Engine::Tree);
        let (ps, po) =
            saxpy_launch_engine(100, 128, ExecMode::Model { sample_stride: 1 }, Engine::Tape);
        assert_eq!(to, po);
        assert_eq!(ts.counters, ps.counters);
        assert_eq!(ts.transaction_bytes, ps.transaction_bytes);
        // Differential mode performs the same comparison internally.
        saxpy_launch_engine(100, 128, ExecMode::Model { sample_stride: 2 }, Engine::Differential);
    }

    #[test]
    fn partial_warp_sampling_weights_by_items_covered() {
        // 48 items = a full warp + a half warp. Weighting by warp *count*
        // would scale 48/(2·32) = 0.75× and under-report; weighting by the
        // items the sampled warps covered keeps full sampling exact.
        for engine in [Engine::Tree, Engine::Tape, Engine::Vector] {
            let (stats, _) =
                saxpy_launch_engine(48, 48, ExecMode::Model { sample_stride: 1 }, engine);
            assert_eq!(stats.counters.flops, 2 * 48, "{engine:?}");
            assert_eq!(stats.counters.stores_global, 48, "{engine:?}");
            // 112 items = 3.5 warps; stride 2 samples warps {0, 2} = 64 items,
            // so the scale is exactly 112/64 and the totals stay exact.
            let (stats, _) =
                saxpy_launch_engine(112, 112, ExecMode::Model { sample_stride: 2 }, engine);
            assert_eq!(stats.counters.flops, 2 * 112, "{engine:?}");
        }
    }

    #[test]
    fn flat_sample_scale_handles_partial_warps() {
        assert_eq!(flat_sample_scale(48, &[0, 1]), 1.0);
        assert_eq!(flat_sample_scale(112, &[0, 2]), 112.0 / 64.0);
        assert_eq!(flat_sample_scale(64, &[0]), 2.0);
        assert_eq!(flat_sample_scale(0, &[]), 1.0);
    }

    #[test]
    fn race_report_names_elements_and_sites() {
        // Every work-item stores to element gid % 2: two conflicting
        // elements, one store site.
        let k = Kernel {
            name: "clash2".into(),
            params: vec![KernelParam::global_buf("y", ScalarKind::F32)],
            body: vec![KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::bin(BinOp::Rem, KExpr::GlobalId(0), KExpr::int(2)),
                value: KExpr::Lit(Lit::f32(1.0)),
            }],
            work_dim: 1,
        };
        let prep = prepare(&k).unwrap();
        for engine in [Engine::Tree, Engine::Tape, Engine::Vector] {
            let y = SharedBuf::new(BufData::from(vec![0.0f32; 4]));
            let msg = launch_wg_engine(
                &prep,
                &[ArgBind::Buf(&y)],
                &[8],
                None,
                ExecMode::Fast,
                true,
                128,
                engine,
            )
            .unwrap_err()
            .to_string();
            assert!(msg.contains("2 conflicting element(s)"), "{engine:?}: {msg}");
            assert!(msg.contains("element 0"), "{engine:?}: {msg}");
            assert!(msg.contains("element 1"), "{engine:?}: {msg}");
            assert!(msg.contains("site(s) [0]"), "{engine:?}: {msg}");
        }
    }

    #[test]
    fn tape_skips_kind_mismatched_buffers() {
        // Binding an f64 buffer to an f32 parameter is legal for the
        // tree-walker (Value-level casts); the tape bakes kinds in, so the
        // launch must transparently fall back and still compute correctly.
        let prep = prepare(&saxpy_kernel()).unwrap();
        let x = SharedBuf::new(BufData::from(vec![3.0f64; 8]));
        let y = SharedBuf::new(BufData::from(vec![1.0f64; 8]));
        launch_wg_engine(
            &prep,
            &[
                ArgBind::Buf(&x),
                ArgBind::Buf(&y),
                ArgBind::Val(Value::F32(2.0)),
                ArgBind::Val(Value::I32(8)),
            ],
            &[8],
            None,
            ExecMode::Fast,
            true,
            128,
            Engine::Tape,
        )
        .unwrap();
        assert_eq!(y.data().to_f64_vec(), vec![7.0; 8]);
    }

    #[test]
    fn three_dimensional_ids() {
        // out[z*4*4 + y*4 + x] = x + 10*y + 100*z
        let k = Kernel {
            name: "grid3".into(),
            params: vec![KernelParam::global_buf("out", ScalarKind::I32)],
            body: vec![KStmt::Store {
                mem: MemRef::Param(0),
                idx: (KExpr::GlobalId(2) * KExpr::int(16))
                    + (KExpr::GlobalId(1) * KExpr::int(4))
                    + KExpr::GlobalId(0),
                value: KExpr::GlobalId(0)
                    + KExpr::GlobalId(1) * KExpr::int(10)
                    + KExpr::GlobalId(2) * KExpr::int(100),
            }],
            work_dim: 3,
        };
        let prep = prepare(&k).unwrap();
        let out = SharedBuf::new(BufData::from(vec![0i32; 64]));
        launch(&prep, &[ArgBind::Buf(&out)], &[4, 4, 4], ExecMode::Fast, true, 128).unwrap();
        let o = out.data().to_f64_vec();
        assert_eq!(o[1 + 2 * 4 + 3 * 16], 1.0 + 20.0 + 300.0);
    }

    /// Two barrier-separated phases so the launch takes the grouped path:
    /// phase 1 stores the local id, phase 2 re-reads it and adds one.
    fn two_phase_lid_kernel() -> Kernel {
        Kernel {
            name: "lid2p".into(),
            params: vec![KernelParam::global_buf("out", ScalarKind::I32)],
            body: vec![
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::LocalId(0),
                },
                KStmt::Barrier,
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) + KExpr::int(1),
                },
            ],
            work_dim: 1,
        }
    }

    #[test]
    fn grouped_sampled_launches_scale_counters() {
        // 8 groups of 32; stride 2 executes groups {0, 2, 4, 6} and must
        // scale counters and transaction bytes back to full-launch totals
        // (all groups do identical work here), on both engines.
        let prep = prepare(&two_phase_lid_kernel()).unwrap();
        let run = |stride: usize, engine: Engine| {
            let out = SharedBuf::new(BufData::from(vec![0i32; 256]));
            launch_wg_engine(
                &prep,
                &[ArgBind::Buf(&out)],
                &[256],
                Some(32),
                ExecMode::Model { sample_stride: stride },
                false,
                128,
                engine,
            )
            .unwrap()
        };
        let full_tree = run(1, Engine::Tree);
        // Vector is included even though grouped launches fall back to the
        // scalar tape: the fallback must preserve counters too.
        for engine in [Engine::Tree, Engine::Tape, Engine::Vector] {
            let full = run(1, engine);
            let sampled = run(2, engine);
            assert_eq!(full.counters, sampled.counters, "{engine:?}");
            assert_eq!(full.transaction_bytes, sampled.transaction_bytes, "{engine:?}");
            assert_eq!(full.counters, full_tree.counters, "{engine:?} vs tree");
            // Every item stores twice and loads once.
            assert_eq!(full.counters.stores_global, 2 * 256, "{engine:?}");
            assert_eq!(full.counters.loads_global, 256, "{engine:?}");
        }
        // Grouped sampling on the differential engine cross-checks both.
        run(2, Engine::Differential);
    }

    #[test]
    fn planned_launch_matches_unplanned_launch() {
        let prep = prepare(&saxpy_kernel()).unwrap();
        let mode = ExecMode::Model { sample_stride: 1 };
        let (unplanned, expected) = saxpy_launch_engine(100, 128, mode, Engine::Tape);

        let x = SharedBuf::new(BufData::from((0..100).map(|i| i as f32).collect::<Vec<_>>()));
        let y = SharedBuf::new(BufData::from(vec![1.0f32; 100]));
        let binds = [
            ArgBind::Buf(&x),
            ArgBind::Buf(&y),
            ArgBind::Val(Value::F32(2.0)),
            ArgBind::Val(Value::I32(100)),
        ];
        let plan = plan_launch(&prep, &binds).unwrap();
        assert!(plan.tape_fallback.is_none(), "f32 buffers are tape-compatible");
        let planned =
            launch_planned(&prep, &plan, &binds, &[128], None, mode, true, 128, Engine::Tape)
                .unwrap();
        assert_eq!(planned.counters, unplanned.counters);
        assert_eq!(planned.transaction_bytes, unplanned.transaction_bytes);
        assert_eq!(y.data().to_f64_vec(), expected);
    }

    #[test]
    fn plan_caches_the_tape_fallback_decision() {
        let prep = prepare(&saxpy_kernel()).unwrap();
        // f64 buffers on f32 params: legal for the tree-walker only.
        let x = SharedBuf::new(BufData::from(vec![3.0f64; 8]));
        let y = SharedBuf::new(BufData::from(vec![1.0f64; 8]));
        let binds = [
            ArgBind::Buf(&x),
            ArgBind::Buf(&y),
            ArgBind::Val(Value::F32(2.0)),
            ArgBind::Val(Value::I32(8)),
        ];
        let plan = plan_launch(&prep, &binds).unwrap();
        assert!(plan.tape_fallback.is_some(), "kind mismatch must be resolved at plan time");
        let mode = ExecMode::Fast;
        launch_planned(&prep, &plan, &binds, &[8], None, mode, true, 128, Engine::Tape).unwrap();
        assert_eq!(y.data().to_f64_vec(), vec![7.0; 8]);
    }

    #[test]
    fn launch_validation_errors_name_kernel_and_sizes() {
        let prep = prepare(&two_phase_lid_kernel()).unwrap();
        let out = SharedBuf::new(BufData::from(vec![0i32; 64]));
        // Workgroup kernel launched without a local size.
        let msg = launch_wg_engine(
            &prep,
            &[ArgBind::Buf(&out)],
            &[64],
            None,
            ExecMode::Fast,
            false,
            128,
            Engine::Tape,
        )
        .unwrap_err()
        .to_string();
        assert!(msg.contains("lid2p"), "{msg}");
        assert!(msg.contains("[64]"), "{msg}");
        // Local size that does not divide the global size.
        let msg = launch_wg_engine(
            &prep,
            &[ArgBind::Buf(&out)],
            &[64],
            Some(24),
            ExecMode::Fast,
            false,
            128,
            Engine::Tape,
        )
        .unwrap_err()
        .to_string();
        assert!(msg.contains("lid2p"), "{msg}");
        assert!(msg.contains("64"), "{msg}");
        assert!(msg.contains("24"), "{msg}");
    }

    #[test]
    fn vector_matches_tree_on_partial_final_warp() {
        // 100 items = 3 full warps + a 4-lane partial warp: the masked tail
        // must produce bit-identical values, counters, and transactions.
        let mode = ExecMode::Model { sample_stride: 1 };
        let (ts, to) = saxpy_launch_engine(100, 100, mode, Engine::Tree);
        let (vs, vo) = saxpy_launch_engine(100, 100, mode, Engine::Vector);
        assert_eq!(vs.backend, Backend::Vector);
        assert_eq!(to, vo);
        assert_eq!(ts.counters, vs.counters);
        assert_eq!(ts.transaction_bytes, vs.transaction_bytes);
    }

    #[test]
    fn uniform_branches_are_not_divergent() {
        // global 96, N = 64: warps 0–1 have the guard false on every lane,
        // warp 2 has it true on every lane. Uniform either way — the branch
        // must not count as divergence.
        let (stats, out) = saxpy_launch_engine(64, 96, ExecMode::Fast, Engine::Vector);
        assert_eq!(stats.backend, Backend::Vector);
        assert_eq!(stats.divergent_warps, 0, "uniform warps must not count");
        assert_eq!(out[63], 2.0 * 63.0 + 1.0);
    }

    #[test]
    fn divergent_store_branch_counts_warps_and_matches_tree() {
        // Even lanes double, odd lanes negate — both arms store, so
        // if-conversion cannot remove the branch and every warp diverges.
        let k = Kernel {
            name: "divstore".into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("y", ScalarKind::F32),
            ],
            body: vec![KStmt::If {
                cond: KExpr::bin(
                    BinOp::Eq,
                    KExpr::bin(BinOp::Rem, KExpr::GlobalId(0), KExpr::int(2)),
                    KExpr::int(0),
                ),
                then_: vec![KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0))
                        * KExpr::Lit(Lit::f32(2.0)),
                }],
                else_: vec![KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::Lit(Lit::f32(0.0))
                        - KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)),
                }],
            }],
            work_dim: 1,
        };
        let prep = prepare(&k).unwrap();
        let run = |engine: Engine| {
            let x = SharedBuf::new(BufData::from((0..64).map(|i| i as f32).collect::<Vec<_>>()));
            let y = SharedBuf::new(BufData::from(vec![0.0f32; 64]));
            let stats = launch_wg_engine(
                &prep,
                &[ArgBind::Buf(&x), ArgBind::Buf(&y)],
                &[64],
                None,
                ExecMode::Model { sample_stride: 1 },
                true,
                128,
                engine,
            )
            .unwrap();
            (stats, y.data().to_f64_vec())
        };
        let (ts, to) = run(Engine::Tree);
        let (vs, vo) = run(Engine::Vector);
        assert_eq!(vs.backend, Backend::Vector);
        assert_eq!(vs.divergent_warps, 2, "both mixed warps must count");
        assert_eq!(to, vo);
        assert_eq!(ts.counters, vs.counters);
        assert_eq!(ts.transaction_bytes, vs.transaction_bytes);
        assert_eq!(vo[6], 12.0);
        assert_eq!(vo[7], -7.0);
    }

    #[test]
    fn lane_dependent_private_indexing_matches_tree() {
        // Each lane writes a different slot of its private array (gid % 4)
        // then reads it back: per-lane private addressing under the mask.
        let k = Kernel {
            name: "lanepriv".into(),
            params: vec![KernelParam::global_buf("out", ScalarKind::F32)],
            body: vec![
                KStmt::DeclPrivArray {
                    name: "p".into(),
                    kind: ScalarKind::F32,
                    len: KExpr::int(4),
                },
                KStmt::Store {
                    mem: MemRef::Priv("p".into()),
                    idx: KExpr::bin(BinOp::Rem, KExpr::GlobalId(0), KExpr::int(4)),
                    value: KExpr::Cast(
                        ScalarKind::F32,
                        Box::new(KExpr::GlobalId(0) * KExpr::int(3)),
                    ),
                },
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(
                        MemRef::Priv("p".into()),
                        KExpr::bin(BinOp::Rem, KExpr::GlobalId(0), KExpr::int(4)),
                    ),
                },
            ],
            work_dim: 1,
        };
        let prep = prepare(&k).unwrap();
        let run = |engine: Engine| {
            let out = SharedBuf::new(BufData::from(vec![0.0f32; 48]));
            let stats = launch_wg_engine(
                &prep,
                &[ArgBind::Buf(&out)],
                &[48],
                None,
                ExecMode::Fast,
                true,
                128,
                engine,
            )
            .unwrap();
            (stats, out.data().to_f64_vec())
        };
        let (_, to) = run(Engine::Tree);
        let (vs, vo) = run(Engine::Vector);
        assert_eq!(vs.backend, Backend::Vector);
        assert_eq!(to, vo);
        assert_eq!(vo[13], 39.0);
    }

    #[test]
    fn grouped_launch_under_vector_falls_back_to_scalar_tape() {
        // The vector engine covers flat NDRanges only; a barrier kernel must
        // transparently run on the scalar tape with identical results.
        let prep = prepare(&two_phase_lid_kernel()).unwrap();
        let out = SharedBuf::new(BufData::from(vec![0i32; 64]));
        let stats = launch_wg_engine(
            &prep,
            &[ArgBind::Buf(&out)],
            &[64],
            Some(32),
            ExecMode::Fast,
            false,
            128,
            Engine::Vector,
        )
        .unwrap();
        assert_eq!(stats.backend, Backend::Tape, "grouped launches fall back");
        assert_eq!(stats.divergent_warps, 0);
        let o = out.data().to_f64_vec();
        assert_eq!(o[5], 6.0);
        assert_eq!(o[37], 6.0);
    }

    #[test]
    fn vector_replans_kind_mismatched_buffers_to_tree() {
        // f64 buffers on f32 params: neither tape engine covers the launch,
        // so the plan routes it all the way back to the tree-walker.
        let prep = prepare(&saxpy_kernel()).unwrap();
        let x = SharedBuf::new(BufData::from(vec![3.0f64; 8]));
        let y = SharedBuf::new(BufData::from(vec![1.0f64; 8]));
        let stats = launch_wg_engine(
            &prep,
            &[
                ArgBind::Buf(&x),
                ArgBind::Buf(&y),
                ArgBind::Val(Value::F32(2.0)),
                ArgBind::Val(Value::I32(8)),
            ],
            &[8],
            None,
            ExecMode::Fast,
            true,
            128,
            Engine::Vector,
        )
        .unwrap();
        assert_eq!(stats.backend, Backend::Tree, "kind mismatch must replan");
        assert_eq!(y.data().to_f64_vec(), vec![7.0; 8]);
    }
}

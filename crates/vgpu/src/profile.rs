//! Device profiles: the four GPUs of the paper's Table III.
//!
//! The virtual device executes kernels functionally on the host CPU; these
//! profiles parameterise the *performance model* ([`crate::perfmodel`]) that
//! converts counted memory transactions and floating-point operations into a
//! modeled kernel time for each platform. Peak numbers come straight from
//! Table III; double-precision throughput ratios are the published
//! architectural ratios of each chip.

use serde::{Deserialize, Serialize};

/// A modeled GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Display name (as in the paper's figures).
    pub name: String,
    /// Peak memory bandwidth in GB/s (Table III).
    pub mem_bw_gbs: f64,
    /// Peak single-precision GFLOP/s (Table III).
    pub sp_gflops: f64,
    /// Double-precision : single-precision throughput ratio (architectural).
    pub dp_ratio: f64,
    /// Fraction of peak bandwidth achievable by well-coalesced streams
    /// (DRAM efficiency).
    pub bw_efficiency: f64,
    /// Fixed per-launch overhead in microseconds (driver + dispatch).
    pub launch_overhead_us: f64,
    /// Memory transaction (cache line) size in bytes — 128 B on all four
    /// GPUs' L1/texture path.
    pub transaction_bytes: u64,
    /// Inter-device link bandwidth in GB/s, charged for halo-exchange
    /// bytes when a grid is sharded across devices (PCIe 3.0 x16
    /// peer-to-peer class; none of the Table III platforms had NVLink).
    /// Defaults for profiles serialized before sharding existed.
    #[serde(default = "default_link_bw_gbs")]
    pub link_bw_gbs: f64,
}

/// Serde default for [`DeviceProfile::link_bw_gbs`].
fn default_link_bw_gbs() -> f64 {
    12.0
}

impl DeviceProfile {
    /// Peak GFLOP/s at the given precision.
    pub fn gflops(&self, double_precision: bool) -> f64 {
        if double_precision {
            self.sp_gflops * self.dp_ratio
        } else {
            self.sp_gflops
        }
    }

    /// NVIDIA GeForce GTX 780 (Kepler GK110, consumer DP 1/24).
    pub fn gtx780() -> Self {
        DeviceProfile {
            name: "GTX780".into(),
            mem_bw_gbs: 288.0,
            sp_gflops: 3977.0,
            dp_ratio: 1.0 / 24.0,
            bw_efficiency: 0.75,
            launch_overhead_us: 6.0,
            transaction_bytes: 128,
            link_bw_gbs: 12.0,
        }
    }

    /// AMD Radeon HD 7970 (Tahiti, DP 1/4).
    pub fn hd7970() -> Self {
        DeviceProfile {
            name: "AMD7970".into(),
            mem_bw_gbs: 288.0,
            sp_gflops: 4096.0,
            dp_ratio: 0.25,
            bw_efficiency: 0.7,
            launch_overhead_us: 8.0,
            transaction_bytes: 128,
            link_bw_gbs: 12.0,
        }
    }

    /// NVIDIA GTX TITAN Black (GK110B with full-rate DP enabled, 1/3).
    pub fn titan_black() -> Self {
        DeviceProfile {
            name: "Titan Black".into(),
            mem_bw_gbs: 337.0,
            sp_gflops: 5120.0,
            dp_ratio: 1.0 / 3.0,
            bw_efficiency: 0.75,
            launch_overhead_us: 6.0,
            transaction_bytes: 128,
            link_bw_gbs: 12.0,
        }
    }

    /// AMD Radeon R9 295X2 (one Hawaii GPU of the pair, DP 1/8).
    pub fn r9_295x2() -> Self {
        DeviceProfile {
            name: "RadeonR9".into(),
            mem_bw_gbs: 320.0,
            sp_gflops: 5733.0,
            dp_ratio: 0.125,
            bw_efficiency: 0.7,
            launch_overhead_us: 8.0,
            transaction_bytes: 128,
            link_bw_gbs: 12.0,
        }
    }

    /// All four platforms of Table III, in the paper's plotting order.
    pub fn paper_platforms() -> Vec<DeviceProfile> {
        vec![Self::hd7970(), Self::gtx780(), Self::r9_295x2(), Self::titan_black()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_metrics() {
        let p = DeviceProfile::gtx780();
        assert_eq!(p.mem_bw_gbs, 288.0);
        assert_eq!(p.sp_gflops, 3977.0);
        let t = DeviceProfile::titan_black();
        assert_eq!(t.mem_bw_gbs, 337.0);
        assert_eq!(t.sp_gflops, 5120.0);
    }

    #[test]
    fn dp_ratios_order_platforms() {
        // Titan Black is the DP monster; GTX 780 the weakest.
        let tb = DeviceProfile::titan_black().gflops(true);
        let gtx = DeviceProfile::gtx780().gflops(true);
        let amd = DeviceProfile::hd7970().gflops(true);
        assert!(tb > amd && amd > gtx);
    }

    #[test]
    fn four_platforms() {
        assert_eq!(DeviceProfile::paper_platforms().len(), 4);
    }
}

//! Tape → superinstruction lowering for the compiled engine
//! (`VGPU_ENGINE=compiled`).
//!
//! [`lower`] re-shapes a validated tape ([`Compiled`]) into basic blocks of
//! fused ops ([`Fused`]), in three steps:
//!
//! 1. **Block discovery** — leaders are the phase entries, every jump
//!    target, and every op after a terminator. Fusion windows never cross a
//!    leader, so jumps always land on a block start.
//! 2. **Use counting** — a register is a fusable *intermediate* only when it
//!    has exactly one reader in the whole tape (main ops + both preludes).
//!    Skipping its write is then unobservable: nothing reads it later, not
//!    even after a divergence hand-off to the vector interpreter or across
//!    loop iterations.
//! 3. **Peephole fusion** — longest-match-first within each block body:
//!    fused global loads (`Bin`·`AsI64`·`LdG`[·`Bin` accumulate]), fused
//!    stores (`AsI64`·`StG`), multiply-add (`Bin`·`Bin`), compare-select
//!    (`Bin`·`Sel`), and compare-branch block terminators (`Bin`·`Jz`).
//!
//! Lowering is best-effort and total: unmatched ops pass through as
//! [`FOp::Base`]. It *fails* (and the launch path falls back to the vector
//! engine, counting `vgpu.compiled.fallbacks`) only on structural grounds:
//! local-memory tapes (grouped-only; the flat compiled engine never runs
//! them) and malformed control flow the validator should have rejected.
//!
//! Bit-identity contract: a fused op performs the exact same arithmetic in
//! the exact same operand order as the sequence it replaced — multiply-add
//! stays two roundings (never an FMA), i32 index math wraps like
//! `bin_bits`, compare-select picks the same register. The 4-leg
//! differential suite (tree → tape → vector → compiled) enforces this.

use crate::bytecode::{visit_srcs, Acc, Compiled, FBlock, FOp, FTerm, Fused, Op, K, R};
use lift::prelude::BinOp;

/// True for the comparison operators (result kind `Bool`).
fn is_cmp(op: BinOp) -> bool {
    matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
}

/// True for the accumulate/offset operators fusable into load/mul chains.
fn is_addsub(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub)
}

/// Lowers a validated tape into superinstruction basic blocks. See the
/// module docs for the pass structure and the fusion legality rule.
pub(crate) fn lower(c: &Compiled) -> Result<Fused, String> {
    let n = c.ops.len();
    if n == 0 || c.phase_starts.is_empty() {
        return Err("empty tape".into());
    }
    for op in &c.ops {
        if matches!(op, Op::LdL { .. } | Op::StL { .. } | Op::DeclLocal { .. }) {
            return Err("local-memory ops (grouped launches fall back)".into());
        }
    }

    // -- block discovery --
    let mut leader = vec![false; n];
    leader[0] = true;
    for &p in &c.phase_starts {
        *leader.get_mut(p as usize).ok_or("phase entry out of bounds")? = true;
    }
    for (pc, op) in c.ops.iter().enumerate() {
        let ends_block = match *op {
            Op::Jmp { target } | Op::Jz { target, .. } | Op::JgeI64 { target, .. } => {
                *leader.get_mut(target as usize).ok_or("jump target out of bounds")? = true;
                true
            }
            Op::Ret | Op::Halt => true,
            _ => false,
        };
        if ends_block && pc + 1 < n {
            leader[pc + 1] = true;
        }
    }
    let starts: Vec<usize> = (0..n).filter(|&pc| leader[pc]).collect();
    // pc of a leader → its block index.
    let mut block_of = vec![u32::MAX; n];
    for (bi, &pc) in starts.iter().enumerate() {
        block_of[pc] = bi as u32;
    }
    let blk_at = |pc: usize| -> Result<u32, String> {
        match block_of.get(pc).copied() {
            Some(b) if b != u32::MAX => Ok(b),
            _ => Err(format!("jump to non-leader pc {pc}")),
        }
    };

    // -- use counting --
    let mut uses = vec![0u32; c.nregs];
    for op in c.ops.iter().chain(c.pre.iter()).chain(c.item_pre.iter()) {
        visit_srcs(op, &mut |r| uses[r as usize] += 1);
    }
    let single = |r: R| uses[r as usize] == 1;

    // -- per-block terminator + body fusion --
    let mut blocks = Vec::with_capacity(starts.len());
    let mut fused_ops = 0u32;
    for (bi, &lo) in starts.iter().enumerate() {
        let hi = starts.get(bi + 1).copied().unwrap_or(n);
        let last = &c.ops[hi - 1];
        let (term, mut body_end) = match *last {
            Op::Ret | Op::Halt => (FTerm::Halt, hi - 1),
            Op::Jmp { target } => (FTerm::Jmp { block: blk_at(target as usize)? }, hi - 1),
            Op::Jz { cond, k, target } => {
                if hi == n {
                    return Err("conditional fall-through past end of tape".into());
                }
                (
                    FTerm::Jz {
                        cond,
                        k,
                        on_zero: blk_at(target as usize)?,
                        on_nonzero: blk_at(hi)?,
                        orig_pc: (hi - 1) as u32,
                    },
                    hi - 1,
                )
            }
            Op::JgeI64 { a, b, target } => {
                if hi == n {
                    return Err("conditional fall-through past end of tape".into());
                }
                (
                    FTerm::JgeI64 {
                        a,
                        b,
                        on_ge: blk_at(target as usize)?,
                        on_lt: blk_at(hi)?,
                        orig_pc: (hi - 1) as u32,
                    },
                    hi - 1,
                )
            }
            _ => {
                // Fall-through into the next leader.
                if hi == n {
                    return Err("tape without trailing terminator".into());
                }
                (FTerm::Jmp { block: blk_at(hi)? }, hi)
            }
        };
        // Compare-branch terminator: absorb a single-use `Bin cmp` feeding
        // the `Jz`. Delegation re-runs from the compare (a pure op).
        let term = if let FTerm::Jz { cond, k: K::Bool, on_zero, on_nonzero, .. } = term {
            if body_end > lo {
                if let Op::Bin { dst, a, b, op, k } = c.ops[body_end - 1] {
                    if dst == cond && is_cmp(op) && single(dst) {
                        body_end -= 1;
                        fused_ops += 1;
                        FTerm::CmpJz { a, b, op, k, on_zero, on_nonzero, orig_pc: body_end as u32 }
                    } else {
                        term
                    }
                } else {
                    term
                }
            } else {
                term
            }
        } else {
            term
        };

        let mut ops = Vec::with_capacity(body_end - lo);
        let mut pc = lo;
        while pc < body_end {
            if let Some((fop, w)) = try_ldg(c, pc, body_end, &single) {
                fused_ops += (w - 1) as u32;
                ops.push(fop);
                pc += w;
            } else if let Some((fop, w)) = try_stg(c, pc, body_end, &single) {
                fused_ops += (w - 1) as u32;
                ops.push(fop);
                pc += w;
            } else if let Some((fop, w)) = try_muladd(c, pc, body_end, &single) {
                fused_ops += (w - 1) as u32;
                ops.push(fop);
                pc += w;
            } else if let Some((fop, w)) = try_cmpsel(c, pc, body_end, &single) {
                fused_ops += (w - 1) as u32;
                ops.push(fop);
                pc += w;
            } else {
                ops.push(FOp::Base(c.ops[pc]));
                pc += 1;
            }
        }
        blocks.push(FBlock { ops, term });
    }

    let mut entries = Vec::with_capacity(c.phase_starts.len());
    for &p in &c.phase_starts {
        entries.push(blk_at(p as usize)?);
    }
    let nsites = c
        .ops
        .iter()
        .map(|op| match *op {
            Op::LdG { site, .. } | Op::StG { site, .. } => site + 1,
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    Ok(Fused { blocks, entries, fused_ops, nsites })
}

/// `[Bin{t1,base,off,±,I32};] AsI64{t2,·,I32}; LdG{dst,…,t2} [; Bin acc]`
/// with every intermediate single-use. The executor recomputes indices per
/// 8-lane chunk from `base`/`off`, so neither may alias the fused op's own
/// register writes (`dst`, or the accumulator's destination/source).
fn try_ldg(
    c: &Compiled,
    pc: usize,
    end: usize,
    single: &impl Fn(R) -> bool,
) -> Option<(FOp, usize)> {
    let ops = &c.ops;
    // Optional i32 offset step.
    let (base, off, as_pc) = match ops[pc] {
        Op::Bin { dst, a, b, op, k: K::I32 } if is_addsub(op) && single(dst) && pc + 1 < end => {
            match ops[pc + 1] {
                Op::AsI64 { dst: t2, src, from: K::I32 } if src == dst && single(t2) => {
                    (a, Some((b, op == BinOp::Sub)), pc + 1)
                }
                _ => return None,
            }
        }
        Op::AsI64 { dst: t2, src, from: K::I32 } if single(t2) => (src, None, pc),
        _ => return None,
    };
    let Op::AsI64 { dst: t2, .. } = ops[as_pc] else { return None };
    let ld_pc = as_pc + 1;
    if ld_pc >= end {
        return None;
    }
    let Op::LdG { dst, buf, idx, site, constant } = ops[ld_pc] else { return None };
    if idx != t2 {
        return None;
    }
    // Cross-chunk hazard: the executor writes `dst` before computing the
    // next chunk's indices.
    if dst == base || off.is_some_and(|(o, _)| dst == o) {
        return None;
    }
    // Optional accumulate tail.
    if ld_pc + 1 < end && single(dst) {
        if let Op::Bin { dst: ad, a, b, op, k } = ops[ld_pc + 1] {
            if is_addsub(op) && (a == dst) != (b == dst) {
                let (src, rev) = if a == dst { (b, true) } else { (a, false) };
                let hazard = ad == base || ad == src || off.is_some_and(|(o, _)| ad == o);
                if !hazard {
                    let acc = Some(Acc { dst: ad, src, k, sub: op == BinOp::Sub, rev });
                    let w = ld_pc + 2 - pc;
                    return Some((FOp::LdGFused { dst, buf, base, off, acc, site, constant }, w));
                }
            }
        }
    }
    let w = ld_pc + 1 - pc;
    Some((FOp::LdGFused { dst, buf, base, off, acc: None, site, constant }, w))
}

/// `AsI64{t2,base,I32}; StG{buf,t2,val,vk,site}` with `t2` single-use.
fn try_stg(
    c: &Compiled,
    pc: usize,
    end: usize,
    single: &impl Fn(R) -> bool,
) -> Option<(FOp, usize)> {
    if pc + 1 >= end {
        return None;
    }
    let Op::AsI64 { dst: t2, src, from: K::I32 } = c.ops[pc] else { return None };
    if !single(t2) {
        return None;
    }
    let Op::StG { buf, idx, val, vk, site } = c.ops[pc + 1] else { return None };
    if idx != t2 {
        return None;
    }
    Some((FOp::StGAt { buf, base: src, val, vk, site }, 2))
}

/// `Bin{t,a,b,Mul,k}; Bin{dst,·,·,Add|Sub,k}` with `t` single-use and used
/// by exactly one operand of the second op.
fn try_muladd(
    c: &Compiled,
    pc: usize,
    end: usize,
    single: &impl Fn(R) -> bool,
) -> Option<(FOp, usize)> {
    if pc + 1 >= end {
        return None;
    }
    let Op::Bin { dst: t, a, b, op: BinOp::Mul, k } = c.ops[pc] else { return None };
    if !single(t) {
        return None;
    }
    let Op::Bin { dst, a: a2, b: b2, op: op2, k: k2 } = c.ops[pc + 1] else { return None };
    if !is_addsub(op2) || k2 != k || (a2 == t) == (b2 == t) {
        return None;
    }
    let (cc, rev) = if a2 == t { (b2, false) } else { (a2, true) };
    Some((FOp::MulAdd { dst, a, b, c: cc, k, sub: op2 == BinOp::Sub, rev }, 2))
}

/// `Bin{t,a,b,cmp,k}; Sel{dst,t,Bool,tr,fl}` with `t` single-use.
fn try_cmpsel(
    c: &Compiled,
    pc: usize,
    end: usize,
    single: &impl Fn(R) -> bool,
) -> Option<(FOp, usize)> {
    if pc + 1 >= end {
        return None;
    }
    let Op::Bin { dst: t, a, b, op, k } = c.ops[pc] else { return None };
    if !is_cmp(op) || !single(t) {
        return None;
    }
    let Op::Sel { dst, cond, ck: K::Bool, t: tr, f: fl } = c.ops[pc + 1] else { return None };
    if cond != t {
        return None;
    }
    Some((FOp::CmpSel { dst, a, b, op, k, tr, fl }, 2))
}

//! Static verification passes over compiled bytecode tapes.
//!
//! The tape compiler's structural `validate` (register/target bounds,
//! terminator presence) guarantees the interpreter cannot fault; the
//! passes here check *semantic* hygiene on top of it:
//!
//! * **def-before-use** — a forward definitely-assigned dataflow analysis
//!   over the tape CFG (meet = intersection) that flags any register read
//!   on some path before every possible write. The register file is
//!   zero-initialised at launch, so such a read is deterministic — but it
//!   means the compiled kernel consumes a value no statement produced;
//! * **barrier uniformity** — in a multi-phase (barrier-using) tape, no
//!   work-item early exit (`Ret`) may be reachable under control flow
//!   that can diverge between the work-items of one group: a lane that
//!   exits while its group-mates proceed to the barrier is exactly the
//!   divergent-barrier hazard that hangs real devices. Divergence is
//!   tracked by register taint (global/local ids and loaded values vary
//!   per item; sizes and group ids are group-uniform);
//! * **unreachable ops** — non-jump instructions no phase entry can
//!   reach; their presence signals a compiler bug. Dead `Jmp`s are
//!   tolerated: the structured `If` lowering emits a jump to the join
//!   point even when the branch ends in `Ret`.
//!
//! Findings feed the `vgpu.verify.*` counters and the `lift_verify`
//! driver's diagnostics table.

use crate::bytecode::{op_dst, visit_srcs, Compiled, Op, NO_JOIN};
use crate::exec::Prepared;
use crate::telemetry;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt;

/// Which verification pass produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TapePass {
    /// Definitely-assigned dataflow violation.
    DefBeforeUse,
    /// `Ret` reachable under divergent control flow before a barrier.
    BarrierUniformity,
    /// Instruction unreachable from every phase entry.
    Unreachable,
}

impl fmt::Display for TapePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapePass::DefBeforeUse => write!(f, "def-before-use"),
            TapePass::BarrierUniformity => write!(f, "barrier-uniformity"),
            TapePass::Unreachable => write!(f, "unreachable-op"),
        }
    }
}

/// One finding from a tape pass.
#[derive(Clone, Debug)]
pub struct TapeFinding {
    /// Producing pass.
    pub pass: TapePass,
    /// Program counter of the offending op in the main tape (for the
    /// `pre`/`item_pre` streams, the index within that stream).
    pub pc: usize,
    /// Human-readable description.
    pub detail: String,
}

/// Verification result for one compiled tape.
#[derive(Clone, Debug)]
pub struct TapeReport {
    /// Kernel name.
    pub kernel: String,
    /// Number of barrier-delimited phases.
    pub phases: usize,
    /// Total ops checked (main tape + preludes).
    pub ops: usize,
    /// All findings, in pass order.
    pub findings: Vec<TapeFinding>,
}

impl TapeReport {
    /// True when every pass came back empty.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs all tape passes over a prepared kernel's compiled tape. Returns
/// `None` when the kernel did not compile to a tape (it then runs on the
/// fully bounds-checked tree-walker, which these passes don't cover).
/// Bumps the `vgpu.verify.*` audit counters.
pub fn verify_prepared(prep: &Prepared) -> Option<TapeReport> {
    let c = prep.tape.as_ref()?;
    let mut findings = Vec::new();
    def_before_use(prep, c, &mut findings);
    barrier_uniformity(c, &mut findings);
    unreachable_ops(c, &mut findings);
    let reg = telemetry::registry();
    reg.counter("vgpu.verify.tapes_checked").inc();
    if !findings.is_empty() {
        reg.counter("vgpu.verify.findings").add(findings.len() as u64);
    }
    for f in &findings {
        let name = match f.pass {
            TapePass::DefBeforeUse => "vgpu.verify.uninit_reads",
            TapePass::BarrierUniformity => "vgpu.verify.divergent_barrier_rets",
            TapePass::Unreachable => "vgpu.verify.unreachable_ops",
        };
        reg.counter(name).inc();
    }
    Some(TapeReport {
        kernel: prep.name.clone(),
        phases: c.phase_starts.len(),
        ops: c.ops.len() + c.pre.len() + c.item_pre.len(),
        findings,
    })
}

/// Dense register bitset.
#[derive(Clone, PartialEq)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet(vec![0; n.div_ceil(64)])
    }

    fn set(&mut self, r: u32) {
        self.0[r as usize / 64] |= 1 << (r % 64);
    }

    fn get(&self, r: u32) -> bool {
        self.0[r as usize / 64] >> (r % 64) & 1 != 0
    }

    /// Intersects in place; reports whether anything changed.
    fn and_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let n = *a & b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
}

/// Zero-based index of the phase containing `pc`.
fn phase_of(c: &Compiled, pc: usize) -> usize {
    c.phase_starts.iter().take_while(|&&s| s as usize <= pc).count().saturating_sub(1)
}

/// Dataflow successors: `Ret` leaves the launch for this item; `Halt` of a
/// non-final phase continues (through the barrier) at the next phase
/// entry, with the register file preserved.
fn flow_succs(c: &Compiled, pc: usize) -> Vec<usize> {
    match c.ops[pc] {
        Op::Jmp { target } => vec![target as usize],
        Op::Jz { target, .. } | Op::JgeI64 { target, .. } => vec![pc + 1, target as usize],
        Op::Ret => vec![],
        Op::Halt => {
            let phase = phase_of(c, pc);
            match c.phase_starts.get(phase + 1) {
                Some(&next) => vec![next as usize],
                None => vec![],
            }
        }
        _ => vec![pc + 1],
    }
}

fn def_before_use(prep: &Prepared, c: &Compiled, findings: &mut Vec<TapeFinding>) {
    let mut init = BitSet::new(c.nregs);
    for slot in prep.scalar_slots.iter().flatten() {
        init.set(*slot as u32);
    }
    // The preludes are straight-line and run before any phase, in order:
    // `pre` once per register file, `item_pre` once per item.
    for (stream, label) in [(&c.pre, "pre"), (&c.item_pre, "item_pre")] {
        for (i, op) in stream.iter().enumerate() {
            visit_srcs(op, &mut |r| {
                if !init.get(r) {
                    findings.push(TapeFinding {
                        pass: TapePass::DefBeforeUse,
                        pc: i,
                        detail: format!("{label}[{i}] {op:?} reads r{r} before any write"),
                    });
                }
            });
            if let Some(d) = op_dst(op) {
                init.set(d);
            }
        }
    }
    if c.ops.is_empty() {
        return;
    }
    // Forward must-analysis to fixpoint: in-state per op, meet by
    // intersection at joins; findings are reported in a single pass after
    // convergence so loops don't duplicate them.
    let n = c.ops.len();
    let mut instate: Vec<Option<BitSet>> = vec![None; n];
    let entry = c.phase_starts[0] as usize;
    instate[entry] = Some(init);
    let mut work: VecDeque<usize> = VecDeque::from([entry]);
    while let Some(pc) = work.pop_front() {
        let mut st = instate[pc].clone().expect("queued with a state");
        if let Some(d) = op_dst(&c.ops[pc]) {
            st.set(d);
        }
        for s in flow_succs(c, pc) {
            let changed = match &mut instate[s] {
                Some(prev) => prev.and_with(&st),
                slot @ None => {
                    *slot = Some(st.clone());
                    true
                }
            };
            if changed {
                work.push_back(s);
            }
        }
    }
    let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
    for (pc, slot) in instate.iter().enumerate().take(n) {
        let Some(st) = slot else { continue };
        visit_srcs(&c.ops[pc], &mut |r| {
            if !st.get(r) && seen.insert((pc, r)) {
                findings.push(TapeFinding {
                    pass: TapePass::DefBeforeUse,
                    pc,
                    detail: format!("op {pc} {:?} may read r{r} before it is written", c.ops[pc]),
                });
            }
        });
    }
}

fn barrier_uniformity(c: &Compiled, findings: &mut Vec<TapeFinding>) {
    if c.phase_starts.len() <= 1 {
        return; // no barriers, nothing to converge on
    }
    // Flow-insensitive register taint: a register holds an item-varying
    // value when it derives from a per-item id or a loaded value. Sizes
    // and the group id are uniform across one group — the barrier scope.
    let mut taint = vec![false; c.nregs];
    let mut changed = true;
    while changed {
        changed = false;
        for op in c.pre.iter().chain(&c.item_pre).chain(&c.ops) {
            let Some(d) = op_dst(op) else { continue };
            let mut t = matches!(
                op,
                Op::Gid { .. } | Op::Lid { .. } | Op::LdG { .. } | Op::LdP { .. } | Op::LdL { .. }
            );
            visit_srcs(op, &mut |r| t |= taint[r as usize]);
            if t && !taint[d as usize] {
                taint[d as usize] = true;
                changed = true;
            }
        }
    }
    // A conditional branch on tainted data opens a divergent region that
    // closes at its reconvergence point (`joins`, computed by the warp
    // interpreter's postdominator analysis) — or, when no join exists,
    // runs to the end of the branch's phase.
    let mut divergent = vec![false; c.ops.len()];
    for pc in 0..c.ops.len() {
        let tainted = match c.ops[pc] {
            Op::Jz { cond, .. } => taint[cond as usize],
            Op::JgeI64 { a, b, .. } => taint[a as usize] || taint[b as usize],
            _ => continue,
        };
        if !tainted {
            continue;
        }
        let end = match c.joins.get(pc) {
            Some(&j) if j != NO_JOIN => j as usize,
            _ => {
                let phase = phase_of(c, pc);
                c.phase_starts.get(phase + 1).map_or(c.ops.len(), |&s| s as usize)
            }
        };
        for d in divergent.iter_mut().take(end.min(c.ops.len())).skip(pc + 1) {
            *d = true;
        }
    }
    let last_phase = c.phase_starts.len() - 1;
    for (pc, op) in c.ops.iter().enumerate() {
        if matches!(op, Op::Ret) && divergent[pc] && phase_of(c, pc) < last_phase {
            findings.push(TapeFinding {
                pass: TapePass::BarrierUniformity,
                pc,
                detail: format!(
                    "op {pc}: work-item exit under divergent control in phase {} — \
                     group-mates still reach the barrier",
                    phase_of(c, pc)
                ),
            });
        }
    }
}

fn unreachable_ops(c: &Compiled, findings: &mut Vec<TapeFinding>) {
    let n = c.ops.len();
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for &s in &c.phase_starts {
        if !seen[s as usize] {
            seen[s as usize] = true;
            stack.push(s as usize);
        }
    }
    while let Some(pc) = stack.pop() {
        let succs = match c.ops[pc] {
            Op::Jmp { target } => vec![target as usize],
            Op::Jz { target, .. } | Op::JgeI64 { target, .. } => {
                vec![pc + 1, target as usize]
            }
            Op::Ret | Op::Halt => vec![],
            _ => vec![pc + 1],
        };
        for s in succs {
            if s < n && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    for (pc, &v) in seen.iter().enumerate() {
        // Dead `Jmp`s are structural padding: the If lowering always emits
        // the then-branch's jump to the join point, which is unreachable
        // whenever the branch ends in `Ret`. They carry no computation, so
        // only dead non-jump ops indicate a compiler bug.
        if !v && !matches!(c.ops[pc], Op::Jmp { .. }) {
            findings.push(TapeFinding {
                pass: TapePass::Unreachable,
                pc,
                detail: format!("op {pc} {:?} is unreachable from every phase entry", c.ops[pc]),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::prepare;
    use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
    use lift::scalar::BinOp;
    use lift::types::ScalarKind;

    fn hand_tape(ops: Vec<Op>, phase_starts: Vec<u32>, nregs: usize) -> Compiled {
        Compiled {
            ops,
            phase_starts,
            nregs,
            pre: Vec::new(),
            item_pre: Vec::new(),
            optimized_ops: 0,
            joins: Vec::new(),
        }
    }

    fn hand_prep(c: Compiled) -> Prepared {
        let mut p =
            prepare(&Kernel { name: "hand".into(), params: vec![], body: vec![], work_dim: 1 })
                .unwrap();
        p.tape = Some(c);
        p
    }

    #[test]
    fn uninit_read_is_flagged() {
        // r1 = r0 + r0 with r0 never written.
        let c = hand_tape(vec![Op::AddI64 { dst: 1, a: 0, b: 0 }, Op::Halt], vec![0], 2);
        let rep = verify_prepared(&hand_prep(c)).unwrap();
        assert!(
            rep.findings.iter().any(|f| f.pass == TapePass::DefBeforeUse && f.pc == 0),
            "{rep:?}"
        );
    }

    #[test]
    fn branch_assigned_both_arms_is_clean() {
        // if (r0) r1 = k else r1 = k; use r1 — definitely assigned.
        let c = hand_tape(
            vec![
                Op::Const { dst: 0, bits: 1 },
                Op::Jz { cond: 0, k: crate::bytecode::K::I32, target: 4 },
                Op::Const { dst: 1, bits: 7 },
                Op::Jmp { target: 5 },
                Op::Const { dst: 1, bits: 9 },
                Op::Mov { dst: 2, src: 1 },
                Op::Halt,
            ],
            vec![0],
            3,
        );
        let rep = verify_prepared(&hand_prep(c)).unwrap();
        assert!(rep.is_clean(), "{rep:?}");
    }

    #[test]
    fn divergent_ret_before_barrier_is_flagged() {
        // Real kernel: guard-return on gid, then a barrier.
        let k = Kernel {
            name: "guarded_barrier".into(),
            params: vec![
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![
                KStmt::DeclLocalArray {
                    name: "sh".into(),
                    kind: ScalarKind::F32,
                    len: KExpr::int(4),
                },
                KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
                KStmt::Barrier,
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::real(0.0),
                },
            ],
            work_dim: 1,
        };
        let prep = prepare(&k.resolve_real(ScalarKind::F32)).unwrap();
        assert!(prep.has_tape(), "{:?}", prep.tape_err);
        let rep = verify_prepared(&prep).unwrap();
        assert!(rep.findings.iter().any(|f| f.pass == TapePass::BarrierUniformity), "{rep:?}");
    }

    #[test]
    fn uniform_multi_phase_kernel_is_clean() {
        let k = Kernel {
            name: "uniform_barrier".into(),
            params: vec![KernelParam::global_buf("out", ScalarKind::F32)],
            body: vec![
                KStmt::DeclLocalArray {
                    name: "sh".into(),
                    kind: ScalarKind::F32,
                    len: KExpr::int(4),
                },
                KStmt::Store {
                    mem: MemRef::Local("sh".into()),
                    idx: KExpr::LocalId(0),
                    value: KExpr::real(1.0),
                },
                KStmt::Barrier,
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::load(MemRef::Local("sh".into()), KExpr::LocalId(0)),
                },
            ],
            work_dim: 1,
        };
        let prep = prepare(&k.resolve_real(ScalarKind::F32)).unwrap();
        assert!(prep.has_tape(), "{:?}", prep.tape_err);
        let rep = verify_prepared(&prep).unwrap();
        assert!(rep.is_clean(), "{rep:?}");
    }

    #[test]
    fn unreachable_op_is_flagged() {
        let c = hand_tape(
            vec![Op::Jmp { target: 2 }, Op::Const { dst: 0, bits: 1 }, Op::Halt],
            vec![0],
            1,
        );
        let rep = verify_prepared(&hand_prep(c)).unwrap();
        assert!(
            rep.findings.iter().any(|f| f.pass == TapePass::Unreachable && f.pc == 1),
            "{rep:?}"
        );
    }
}

//! The room-acoustics kernels expressed in LIFT (§V, Listings 6–8).
//!
//! Each function builds the pattern-IR program for one kernel. Scalar
//! formulas live in `UserFun`s whose bodies reproduce the operation order of
//! the hand-written C listings exactly, so LIFT-generated kernels agree with
//! the golden reference bit-for-bit at either precision.
//!
//! Size-variable conventions: 3-D kernels use `Nx`/`Ny`/`Nz` (grid with
//! halo); boundary kernels view the grids as flat arrays of length `N` and
//! use `numB` boundary points, `MB` branches and `MBM = num_materials·MB`
//! coefficient entries.

use lift::funs;
use lift::ir::{self, ExprRef, ParamDef};
use lift::prelude::*;
use std::rc::Rc;

fn p0(i: usize) -> SExpr {
    SExpr::p(i)
}

fn real(v: f64) -> SExpr {
    SExpr::real(v)
}

fn to_real(e: SExpr) -> SExpr {
    SExpr::cast(ScalarKind::Real, e)
}

/// `volUpdate(prev, curr, s, nbr, l2) =
///    nbr > 0 ? (2 − l2·nbr)·curr + l2·s − prev : 0`
/// — Listing 2 kernel 1's element formula (association matches the C).
pub fn vol_update_fun() -> Rc<UserFun> {
    let (prev, curr, s, nbr, l2) = (0, 1, 2, 3, 4);
    let nbr_f = to_real(p0(nbr));
    let interior = (real(2.0) - p0(l2) * nbr_f) * p0(curr) + p0(l2) * p0(s) - p0(prev);
    UserFun::new(
        "volUpdate",
        vec![
            ("prev", ScalarKind::Real),
            ("curr", ScalarKind::Real),
            ("s", ScalarKind::Real),
            ("nbr", ScalarKind::I32),
            ("l2", ScalarKind::Real),
        ],
        ScalarKind::Real,
        SExpr::select(SExpr::cmp(BinOp::Gt, p0(nbr), SExpr::int(0)), interior, real(0.0)),
    )
}

/// Listing 1's full element formula for the naive one-kernel FI simulation:
/// interior update, with the wall loss folded in at points with `nbr < 6`.
pub fn fi_full_update_fun() -> Rc<UserFun> {
    let (prev, curr, s, nbr, l, l2, beta) = (0, 1, 2, 3, 4, 5, 6);
    let nbr_f = to_real(p0(nbr));
    let interior = (real(2.0) - p0(l2) * nbr_f.clone()) * p0(curr) + p0(l2) * p0(s) - p0(prev);
    let cf = real(0.5) * p0(l) * to_real(SExpr::int(6) - p0(nbr)) * p0(beta);
    let at_wall = ((real(2.0) - p0(l2) * nbr_f) * p0(curr)
        + p0(l2) * p0(s)
        + (cf.clone() - real(1.0)) * p0(prev))
        / (real(1.0) + cf);
    UserFun::new(
        "fiUpdate",
        vec![
            ("prev", ScalarKind::Real),
            ("curr", ScalarKind::Real),
            ("s", ScalarKind::Real),
            ("nbr", ScalarKind::I32),
            ("l", ScalarKind::Real),
            ("l2", ScalarKind::Real),
            ("beta", ScalarKind::Real),
        ],
        ScalarKind::Real,
        SExpr::select(
            SExpr::cmp(BinOp::Gt, p0(nbr), SExpr::int(0)),
            SExpr::select(SExpr::cmp(BinOp::Lt, p0(nbr), SExpr::int(6)), at_wall, interior),
            real(0.0),
        ),
    )
}

/// `cf(l, nbr, beta) = ((0.5·l)·(6−nbr))·beta` — the boundary loss
/// coefficient, associated as in Listing 3.
pub fn cf_fun() -> Rc<UserFun> {
    UserFun::new(
        "cfFun",
        vec![("l", ScalarKind::Real), ("nbr", ScalarKind::I32), ("beta", ScalarKind::Real)],
        ScalarKind::Real,
        real(0.5) * p0(0) * to_real(SExpr::int(6) - p0(1)) * p0(2),
    )
}

/// `boundaryHandle(next, prev, cf) = (next + cf·prev)/(1 + cf)` —
/// Listing 3's in-place update.
pub fn boundary_handle_fun() -> Rc<UserFun> {
    UserFun::new(
        "boundaryHandle",
        vec![("next", ScalarKind::Real), ("prev", ScalarKind::Real), ("cf", ScalarKind::Real)],
        ScalarKind::Real,
        (p0(0) + p0(2) * p0(1)) / (real(1.0) + p0(2)),
    )
}

/// The six-neighbour sum over a 3×3×3 window view, in the C listings'
/// order: −x, +x, −y, +y, −z, +z (left-associated).
fn window_sum(w: &ExprRef) -> ExprRef {
    let rd = |dz: i32, dy: i32, dx: i32| {
        ir::at(
            ir::at(ir::at(w.clone(), ir::lit(Lit::i32(dz))), ir::lit(Lit::i32(dy))),
            ir::lit(Lit::i32(dx)),
        )
    };
    let add = funs::add();
    let mut acc = rd(1, 1, 0);
    for term in [rd(1, 1, 2), rd(1, 0, 1), rd(1, 2, 1), rd(0, 1, 1), rd(2, 1, 1)] {
        acc = ir::call(&add, vec![acc, term]);
    }
    acc
}

/// A built LIFT kernel program: inputs + body, ready for
/// [`lift::lower::lower_kernel`] or [`lift::host::KernelDef`].
pub struct Program {
    /// Kernel name.
    pub name: &'static str,
    /// Kernel inputs in order.
    pub params: Vec<Rc<ParamDef>>,
    /// Kernel body.
    pub body: ExprRef,
}

impl Program {
    /// Lowers at the given precision.
    pub fn lower(&self, real: ScalarKind) -> Result<LoweredKernel, lift::lower::LowerError> {
        lower_kernel(self.name, &self.params, &self.body, real)
    }
}

/// Derives the contract a generated kernel is launched under from its
/// lowering: the launch global size, one `≥ 1` bound per size argument,
/// buffer lengths from the source program's parameter types (inputs) and
/// the lowered output type, and the boundary gather-table invariants
/// ([`room_acoustics::contracts::boundary_table_facts`]) layered on top.
///
/// The verify suite audits every generated kernel under exactly this
/// contract, and [`crate::hostprog`]'s sharding transform consults the
/// same one for its shard-time halo proofs — one definition, both
/// consumers.
pub fn launch_assumptions(p: &Program, lowered: &LoweredKernel) -> lift::verify::Assumptions {
    use lift::lower::ArgSpec;
    use lift::verify::{Assumptions, BufferFacts};
    let mut asm = Assumptions {
        global_size: lowered.global_size.iter().cloned().map(Some).collect(),
        ..Assumptions::default()
    };
    for (param, spec) in lowered.kernel.params.iter().zip(&lowered.args) {
        match spec {
            ArgSpec::Size(n) => asm.size_bounds.push((n.clone(), 1)),
            ArgSpec::Input(pid, pname) if param.is_buffer => {
                // Ids are fresh per `Program` construction, so a lowering
                // taken from an earlier instance (e.g. one embedded in a
                // compiled host program) matches by parameter name.
                let ty = p
                    .params
                    .iter()
                    .find(|d| d.id == *pid)
                    .or_else(|| p.params.iter().find(|d| d.name == *pname))
                    .and_then(|d| d.ty.clone());
                if let Some(ty) = ty {
                    asm.buffers.insert(param.name.clone(), BufferFacts::sized(ty.scalar_count()));
                }
            }
            ArgSpec::Output(_, ty) => {
                asm.buffers.insert(param.name.clone(), BufferFacts::sized(ty.scalar_count()));
            }
            _ => {}
        }
    }
    room_acoustics::contracts::boundary_table_facts(&mut asm);
    asm
}

/// Listing 2 kernel 1 in LIFT: the volume pass.
///
/// `map3(m → volUpdate(m), zip3(prev, slide3(pad3(curr)), nbrs))`, output
/// allocated by the system (the host binds it to the `next` grid).
/// Inputs: `curr, prev, nbrs : [[[ ]]]`, `l2 : Real`.
pub fn volume_program() -> Program {
    let grid3 = Type::array3(Type::real(), "Nx", "Ny", "Nz");
    let nbrs3 = Type::array3(Type::i32(), "Nx", "Ny", "Nz");
    let curr = ParamDef::typed("curr", grid3.clone());
    let prev = ParamDef::typed("prev", grid3);
    let nbrs = ParamDef::typed("nbrs", nbrs3);
    let l2 = ParamDef::typed("l2", Type::real());
    let f = vol_update_fun();
    let l2e = l2.to_expr();
    let body = ir::map3_glb(
        ir::zip3(vec![
            prev.to_expr(),
            ir::slide3(3, 1, ir::pad3(1, PadKind::Constant(Lit::real(0.0)), curr.to_expr())),
            nbrs.to_expr(),
        ]),
        "m",
        move |m| {
            let w = ir::get(m.clone(), 1);
            let s = window_sum(&w);
            let center = ir::at(
                ir::at(ir::at(ir::get(m.clone(), 1), ir::lit(Lit::i32(1))), ir::lit(Lit::i32(1))),
                ir::lit(Lit::i32(1)),
            );
            ir::call(&f, vec![ir::get(m.clone(), 0), center, s, ir::get(m, 2), l2e])
        },
    );
    Program { name: "volume_handling_lift", params: vec![curr, prev, nbrs, l2], body }
}

/// Listing 6 in LIFT: the naive one-kernel FI simulation (stencil +
/// uniform-β boundary in one kernel). Inputs: `curr, prev, nbrs` (3-D),
/// `l, l2, beta` scalars.
pub fn fi_single_program() -> Program {
    let grid3 = Type::array3(Type::real(), "Nx", "Ny", "Nz");
    let nbrs3 = Type::array3(Type::i32(), "Nx", "Ny", "Nz");
    let curr = ParamDef::typed("curr", grid3.clone());
    let prev = ParamDef::typed("prev", grid3);
    let nbrs = ParamDef::typed("nbrs", nbrs3);
    let l = ParamDef::typed("l", Type::real());
    let l2 = ParamDef::typed("l2", Type::real());
    let beta = ParamDef::typed("beta", Type::real());
    let f = fi_full_update_fun();
    let (le, l2e, be) = (l.to_expr(), l2.to_expr(), beta.to_expr());
    let body = ir::map3_glb(
        ir::zip3(vec![
            prev.to_expr(),
            ir::slide3(3, 1, ir::pad3(1, PadKind::Constant(Lit::real(0.0)), curr.to_expr())),
            nbrs.to_expr(),
        ]),
        "m",
        move |m| {
            let w = ir::get(m.clone(), 1);
            let s = window_sum(&w);
            let center = ir::at(
                ir::at(ir::at(ir::get(m.clone(), 1), ir::lit(Lit::i32(1))), ir::lit(Lit::i32(1))),
                ir::lit(Lit::i32(1)),
            );
            ir::call(&f, vec![ir::get(m.clone(), 0), center, s, ir::get(m, 2), le, l2e, be])
        },
    );
    Program { name: "fi_single_lift", params: vec![curr, prev, nbrs, l, l2, beta], body }
}

/// Listing 7 in LIFT: FI-MM boundary handling with the
/// `Concat(Skip, ArrayCons, Skip)` in-place idiom.
///
/// Inputs: `boundaryIndices, bnbrs, material : [numB]`, `beta : [NM]`,
/// `next, prev : [N]` (flat grids), `l : Real`.
pub fn fimm_program() -> Program {
    let bidx = ParamDef::typed("boundaryIndices", Type::array(Type::i32(), "numB"));
    let bnbrs = ParamDef::typed("bnbrs", Type::array(Type::i32(), "numB"));
    let material = ParamDef::typed("material", Type::array(Type::i32(), "numB"));
    let beta = ParamDef::typed("beta", Type::array(Type::real(), "NM"));
    let next = ParamDef::typed("next", Type::array(Type::real(), "N"));
    let prev = ParamDef::typed("prev", Type::array(Type::real(), "N"));
    let l = ParamDef::typed("l", Type::real());
    let (cf_f, bh_f, id_f) = (cf_fun(), boundary_handle_fun(), funs::id_real());
    let (betae, nexte, preve, le) = (beta.clone(), next.clone(), prev.clone(), l.to_expr());
    let restlen = funs::restlen();
    let body = ir::map_glb(
        ir::zip(vec![bidx.to_expr(), bnbrs.to_expr(), material.to_expr()]),
        "tup",
        move |tup| {
            ir::let_in("idx", ir::get(tup.clone(), 0), |idx| {
                ir::let_in("nbr", ir::get(tup.clone(), 1), |nbr| {
                    ir::let_in("m", ir::get(tup, 2), |m| {
                        let beta_val = ir::at(betae.to_expr(), m);
                        let next_val = ir::at(nexte.to_expr(), idx.clone());
                        let prev_val = ir::at(preve.to_expr(), idx.clone());
                        let cf = ir::call(&cf_f, vec![le, nbr, beta_val]);
                        let update = ir::call(&bh_f, vec![next_val, prev_val, cf]);
                        ir::write_to(
                            nexte.to_expr(),
                            ir::concat(vec![
                                ir::skip(idx.clone(), Type::real()),
                                ir::map_seq(ir::array_cons(update, 1usize), "x", |x| {
                                    ir::call(&id_f, vec![x])
                                }),
                                ir::skip(
                                    ir::call(&restlen, vec![ir::size_val("N"), idx]),
                                    Type::real(),
                                ),
                            ]),
                        )
                    })
                })
            })
        },
    );
    Program {
        name: "fimm_boundary_lift",
        params: vec![bidx, bnbrs, material, beta, next, prev, l],
        body,
    }
}

/// `cf1(l, nbr) = l·(6−nbr)`.
pub fn cf1_fun() -> Rc<UserFun> {
    UserFun::new(
        "cf1Fun",
        vec![("l", ScalarKind::Real), ("nbr", ScalarKind::I32)],
        ScalarKind::Real,
        p0(0) * to_real(SExpr::int(6) - p0(1)),
    )
}

/// `cfOf(cf1, beta) = (0.5·cf1)·beta`.
pub fn cf_of_cf1_fun() -> Rc<UserFun> {
    UserFun::new(
        "cfOfCf1",
        vec![("cf1", ScalarKind::Real), ("beta", ScalarKind::Real)],
        ScalarKind::Real,
        real(0.5) * p0(0) * p0(1),
    )
}

/// `branchCorrect(acc, cf1, bi, d, g, v) = acc − (cf1·bi)·((2·d)·v − f·g)`
/// — one term of Listing 4's first branch loop. (Parameter 5 is `f`.)
pub fn branch_correct_fun() -> Rc<UserFun> {
    let (acc, cf1, bi, d, g, v, f) = (0, 1, 2, 3, 4, 5, 6);
    UserFun::new(
        "branchCorrect",
        vec![
            ("acc", ScalarKind::Real),
            ("cf1", ScalarKind::Real),
            ("bi", ScalarKind::Real),
            ("d", ScalarKind::Real),
            ("g", ScalarKind::Real),
            ("v", ScalarKind::Real),
            ("f", ScalarKind::Real),
        ],
        ScalarKind::Real,
        p0(acc) - p0(cf1) * p0(bi) * (real(2.0) * p0(d) * p0(v) - p0(f) * p0(g)),
    )
}

/// `v1New(bi, next, prev, di, v, f, g) = bi·(next − prev + di·v − (2·f)·g)`
/// — Listing 4's second branch loop (velocity update).
pub fn v1_new_fun() -> Rc<UserFun> {
    let (bi, next, prev, di, v, f, g) = (0, 1, 2, 3, 4, 5, 6);
    UserFun::new(
        "v1New",
        vec![
            ("bi", ScalarKind::Real),
            ("next", ScalarKind::Real),
            ("prev", ScalarKind::Real),
            ("di", ScalarKind::Real),
            ("v", ScalarKind::Real),
            ("f", ScalarKind::Real),
            ("g", ScalarKind::Real),
        ],
        ScalarKind::Real,
        p0(bi) * (p0(next) - p0(prev) + p0(di) * p0(v) - real(2.0) * p0(f) * p0(g)),
    )
}

/// `g1New(v1, g, v2) = g + 0.5·(v1 + v2)` — the boundary-state trapezoid.
pub fn g1_new_fun() -> Rc<UserFun> {
    UserFun::new(
        "g1New",
        vec![("v1", ScalarKind::Real), ("g", ScalarKind::Real), ("v2", ScalarKind::Real)],
        ScalarKind::Real,
        p0(1) + real(0.5) * (p0(0) + p0(2)),
    )
}

/// Listing 8 in LIFT: FD-MM boundary handling — three in-place outputs
/// (`next`, `g1`, `v1`) via a tuple of `WriteTo`s, with the per-branch state
/// gathered through strided `Slice` views into private memory.
///
/// Inputs: `boundaryIndices, bnbrs, material : [numB]`; `beta : [NM]`;
/// `BI, D, DI, F : [MBM]`; `next, prev : [N]`; `g1, v1, v2 : [S]`
/// (`S = MB·numB`); `l : Real`.
pub fn fdmm_program() -> Program {
    let bidx = ParamDef::typed("boundaryIndices", Type::array(Type::i32(), "numB"));
    let bnbrs = ParamDef::typed("bnbrs", Type::array(Type::i32(), "numB"));
    let material = ParamDef::typed("material", Type::array(Type::i32(), "numB"));
    let beta = ParamDef::typed("beta", Type::array(Type::real(), "NM"));
    let bi_p = ParamDef::typed("BI", Type::array(Type::real(), "MBM"));
    let d_p = ParamDef::typed("D", Type::array(Type::real(), "MBM"));
    let di_p = ParamDef::typed("DI", Type::array(Type::real(), "MBM"));
    let f_p = ParamDef::typed("F", Type::array(Type::real(), "MBM"));
    let next = ParamDef::typed("next", Type::array(Type::real(), "N"));
    let prev = ParamDef::typed("prev", Type::array(Type::real(), "N"));
    let g1_p = ParamDef::typed("g1", Type::array(Type::real(), "S"));
    let v1_p = ParamDef::typed("v1", Type::array(Type::real(), "S"));
    let v2_p = ParamDef::typed("v2", Type::array(Type::real(), "S"));
    let l = ParamDef::typed("l", Type::real());

    let cf1_f = cf1_fun();
    let cf_f = cf_of_cf1_fun();
    let bc_f = branch_correct_fun();
    let v1_f = v1_new_fun();
    let g1_f = g1_new_fun();
    let bh_f = boundary_handle_fun();
    let id_f = funs::id_real();
    let madi = funs::mad_i32();

    let caps = (
        beta.clone(),
        bi_p.clone(),
        d_p.clone(),
        di_p.clone(),
        f_p.clone(),
        next.clone(),
        prev.clone(),
        g1_p.clone(),
        v1_p.clone(),
        v2_p.clone(),
        l.to_expr(),
    );
    let body = ir::map_glb(
        ir::zip(vec![ir::iota("numB"), bidx.to_expr(), bnbrs.to_expr(), material.to_expr()]),
        "tup",
        move |tup| {
            let (beta, bi_p, d_p, di_p, f_p, next, prev, g1_p, v1_p, v2_p, le) = caps;
            // coefficient index mc = mi*MB + b
            let mc = {
                let madi = madi.clone();
                move |mi: ExprRef, b: ExprRef| ir::call(&madi, vec![mi, ir::size_val("MB"), b])
            };
            ir::let_in("i", ir::get(tup.clone(), 0), move |i| {
                ir::let_in("idx", ir::get(tup.clone(), 1), move |idx| {
                    ir::let_in("nbr", ir::get(tup.clone(), 2), move |nbr| {
                        ir::let_in("mi", ir::get(tup, 3), move |mi| {
                            let next_val = ir::at(next.to_expr(), idx.clone());
                            let prev_val = ir::at(prev.to_expr(), idx.clone());
                            ir::let_in("_next0", next_val, move |n0| {
                                ir::let_in("_prev", prev_val, move |pv| {
                                    let gs_src = ir::slice(g1_p.to_expr(), i.clone(), "numB", "MB");
                                    let vs_src = ir::slice(v2_p.to_expr(), i.clone(), "numB", "MB");
                                    ir::let_in("gs", ir::to_private(gs_src), move |gs| {
                                        ir::let_in("vs", ir::to_private(vs_src), move |vs| {
                                            let cf1 =
                                                ir::call(&cf1_f, vec![le.clone(), nbr.clone()]);
                                            ir::let_in("cf1", cf1, move |cf1| {
                                                let cf = ir::call(
                                                    &cf_f,
                                                    vec![
                                                        cf1.clone(),
                                                        ir::at(beta.to_expr(), mi.clone()),
                                                    ],
                                                );
                                                ir::let_in("cf", cf, move |cf| {
                                                    // first branch loop: correct _next
                                                    let corrected = ir::reduce_seq(
                                                        n0,
                                                        ir::zip(vec![
                                                            ir::iota("MB"),
                                                            gs.clone(),
                                                            vs.clone(),
                                                        ]),
                                                        {
                                                            let (bc_f, bi_p, d_p, f_p, mi, cf1, mc) = (
                                                                bc_f.clone(),
                                                                bi_p.clone(),
                                                                d_p.clone(),
                                                                f_p.clone(),
                                                                mi.clone(),
                                                                cf1.clone(),
                                                                mc.clone(),
                                                            );
                                                            move |acc, t| {
                                                                let b = ir::get(t.clone(), 0);
                                                                let g = ir::get(t.clone(), 1);
                                                                let v = ir::get(t, 2);
                                                                let mce = mc(mi, b);
                                                                ir::let_in("mc", mce, move |mce| {
                                                                    ir::call(
                                                                        &bc_f,
                                                                        vec![
                                                                            acc,
                                                                            cf1,
                                                                            ir::at(
                                                                                bi_p.to_expr(),
                                                                                mce.clone(),
                                                                            ),
                                                                            ir::at(
                                                                                d_p.to_expr(),
                                                                                mce.clone(),
                                                                            ),
                                                                            g,
                                                                            v,
                                                                            ir::at(
                                                                                f_p.to_expr(),
                                                                                mce,
                                                                            ),
                                                                        ],
                                                                    )
                                                                })
                                                            }
                                                        },
                                                    );
                                                    let new_next = ir::call(
                                                        &bh_f,
                                                        vec![corrected, pv.clone(), cf],
                                                    );
                                                    ir::let_in("_next", new_next, move |nn| {
                                                        // second branch loop: new velocities
                                                        let vs_new_src = ir::map_seq(
                                                            ir::zip(vec![
                                                                ir::iota("MB"),
                                                                gs.clone(),
                                                                vs.clone(),
                                                            ]),
                                                            "t2",
                                                            {
                                                                let (
                                                                    v1_f,
                                                                    bi_p,
                                                                    di_p,
                                                                    f_p,
                                                                    mi,
                                                                    nn,
                                                                    pv,
                                                                    mc,
                                                                ) = (
                                                                    v1_f.clone(),
                                                                    bi_p.clone(),
                                                                    di_p.clone(),
                                                                    f_p.clone(),
                                                                    mi.clone(),
                                                                    nn.clone(),
                                                                    pv.clone(),
                                                                    mc.clone(),
                                                                );
                                                                move |t2| {
                                                                    let b = ir::get(t2.clone(), 0);
                                                                    let g = ir::get(t2.clone(), 1);
                                                                    let v = ir::get(t2, 2);
                                                                    let mce = mc(mi, b);
                                                                    ir::let_in(
                                                                        "mc2",
                                                                        mce,
                                                                        move |mce| {
                                                                            ir::call(
                                                                            &v1_f,
                                                                            vec![
                                                                                ir::at(bi_p.to_expr(), mce.clone()),
                                                                                nn,
                                                                                pv,
                                                                                ir::at(di_p.to_expr(), mce.clone()),
                                                                                v,
                                                                                ir::at(f_p.to_expr(), mce),
                                                                                g,
                                                                            ],
                                                                        )
                                                                        },
                                                                    )
                                                                }
                                                            },
                                                        );
                                                        ir::let_in(
                                                            "vsNew",
                                                            ir::to_private(vs_new_src),
                                                            move |vs_new| {
                                                                let g1_out = ir::map_seq(
                                                                    ir::zip(vec![
                                                                        vs_new.clone(),
                                                                        gs,
                                                                        vs,
                                                                    ]),
                                                                    "t3",
                                                                    {
                                                                        let g1_f = g1_f.clone();
                                                                        move |t3| {
                                                                            ir::call(
                                                                                &g1_f,
                                                                                vec![
                                                                                    ir::get(
                                                                                        t3.clone(),
                                                                                        0,
                                                                                    ),
                                                                                    ir::get(
                                                                                        t3.clone(),
                                                                                        1,
                                                                                    ),
                                                                                    ir::get(t3, 2),
                                                                                ],
                                                                            )
                                                                        }
                                                                    },
                                                                );
                                                                let v1_out =
                                                                    ir::map_seq(vs_new, "x", {
                                                                        let id_f = id_f.clone();
                                                                        move |x| {
                                                                            ir::call(&id_f, vec![x])
                                                                        }
                                                                    });
                                                                ir::tuple(vec![
                                                                    ir::write_to(
                                                                        ir::at(next.to_expr(), idx),
                                                                        nn,
                                                                    ),
                                                                    ir::write_to(
                                                                        ir::slice(
                                                                            g1_p.to_expr(),
                                                                            i.clone(),
                                                                            "numB",
                                                                            "MB",
                                                                        ),
                                                                        g1_out,
                                                                    ),
                                                                    ir::write_to(
                                                                        ir::slice(
                                                                            v1_p.to_expr(),
                                                                            i,
                                                                            "numB",
                                                                            "MB",
                                                                        ),
                                                                        v1_out,
                                                                    ),
                                                                ])
                                                            },
                                                        )
                                                    })
                                                })
                                            })
                                        })
                                    })
                                })
                            })
                        })
                    })
                })
            })
        },
    );
    Program {
        name: "fdmm_boundary_lift",
        params: vec![
            bidx, bnbrs, material, beta, bi_p, d_p, di_p, f_p, next, prev, g1_p, v1_p, v2_p, l,
        ],
        body,
    }
}

/// Every generated LIFT program of the repro suite — the enumeration the
/// `lift_verify` driver lowers and audits.
pub fn all_programs() -> Vec<Program> {
    vec![volume_program(), fi_single_program(), fimm_program(), fdmm_program()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_type_check() {
        for p in [volume_program(), fi_single_program(), fimm_program(), fdmm_program()] {
            lift::typecheck::check(&p.body).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn all_programs_lower_at_both_precisions() {
        for p in [volume_program(), fi_single_program(), fimm_program(), fdmm_program()] {
            for real in [ScalarKind::F32, ScalarKind::F64] {
                p.lower(real).unwrap_or_else(|e| panic!("{} @ {real:?}: {e}", p.name));
            }
        }
    }

    #[test]
    fn volume_program_allocates_output() {
        let lk = volume_program().lower(ScalarKind::F32).unwrap();
        assert!(lk.args.iter().any(|a| matches!(a, lift::lower::ArgSpec::Output(_, _))));
        assert_eq!(lk.kernel.work_dim, 3);
    }

    #[test]
    fn fimm_program_is_in_place() {
        let lk = fimm_program().lower(ScalarKind::F64).unwrap();
        assert!(lk.args.iter().all(|a| !matches!(a, lift::lower::ArgSpec::Output(_, _))));
        assert_eq!(lk.kernel.work_dim, 1);
    }

    #[test]
    fn fdmm_program_has_three_store_targets() {
        let lk = fdmm_program().lower(ScalarKind::F64).unwrap();
        let src = lift::opencl::emit_kernel(&lk.kernel);
        // stores into next, g1 and v1
        assert!(src.contains("next["), "{src}");
        assert!(src.contains("g1["), "{src}");
        assert!(src.contains("v1["), "{src}");
    }

    #[test]
    fn emitted_fimm_contains_single_offset_store() {
        let lk = fimm_program().lower(ScalarKind::F32).unwrap();
        let src = lift::opencl::emit_kernel(&lk.kernel);
        // exactly one store into the in-place buffer
        assert_eq!(src.matches("next[").count() - src.matches("= next[").count(), 1, "{src}");
    }
}

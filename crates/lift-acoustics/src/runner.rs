//! Driving LIFT-generated kernels on the virtual GPU.
//!
//! [`LiftSim`] is the generated-code counterpart of
//! [`room_acoustics::HandwrittenSim`]: the same leap-frog loop, but the
//! volume and boundary kernels come out of the LIFT code generator
//! ([`crate::programs`]). A [`lift::lower::LoweredKernel`]'s argument specs
//! are bound to device buffers by program-parameter name, so the driver is
//! robust to the generator adding or reordering size parameters.

use crate::programs::{self, Program};
use lift::lower::{ArgSpec, LoweredKernel};
use lift::prelude::Value;
use room_acoustics::reference::FdArrays;
use room_acoustics::sim::SimSetup;
use room_acoustics::vgpu_sim::Precision;
use std::collections::HashMap;
use vgpu::telemetry::{self, HOST_TRACK};
use vgpu::{Arg, BufId, Device, ExecMode, LaunchStats, Prepared};

/// Which boundary model a LIFT run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiftBoundary {
    /// Listing 7 (FI-MM).
    FiMm,
    /// Listing 8 (FD-MM).
    FdMm,
}

/// A lowered+compiled kernel with its launch recipe.
pub struct CompiledKernel {
    /// Generator output (args, global size).
    pub lowered: LoweredKernel,
    /// Prepared for the interpreter.
    pub prepared: Prepared,
}

/// Binds a lowered kernel's arguments by name.
///
/// `bufs` maps program-parameter names to device buffers, `scalars` maps
/// scalar parameter names to values, `sizes` maps size variables to values.
pub fn bind_args(
    lowered: &LoweredKernel,
    bufs: &HashMap<&str, BufId>,
    scalars: &HashMap<&str, Value>,
    sizes: &HashMap<&str, i64>,
    output: Option<BufId>,
) -> Vec<Arg> {
    lowered
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, name) => {
                if let Some(b) = bufs.get(name.as_str()) {
                    Arg::Buf(*b)
                } else if let Some(v) = scalars.get(name.as_str()) {
                    Arg::Val(*v)
                } else {
                    panic!("no binding for kernel input `{name}`")
                }
            }
            ArgSpec::Size(name) => Arg::Val(Value::I32(
                *sizes.get(name.as_str()).unwrap_or_else(|| panic!("unbound size `{name}`")) as i32,
            )),
            ArgSpec::Output(_, _) => {
                Arg::Buf(output.expect("kernel allocates an output; pass one"))
            }
        })
        .collect()
}

/// Evaluates a lowered kernel's global size against a size environment.
pub fn global_size(lowered: &LoweredKernel, sizes: &HashMap<&str, i64>) -> Vec<usize> {
    lowered
        .global_size
        .iter()
        .map(|g| g.eval(&|n| sizes.get(n).copied()).expect("global size evaluates") as usize)
        .collect()
}

/// LIFT-generated kernels running on the virtual GPU.
pub struct LiftSim {
    /// The device (exposed for profiling inspection).
    pub device: Device,
    setup: SimSetup,
    precision: Precision,
    volume: CompiledKernel,
    boundary: CompiledKernel,
    boundary_kind: LiftBoundary,
    prev: BufId,
    curr: BufId,
    next: BufId,
    nbrs: BufId,
    bidx: BufId,
    bnbrs: BufId,
    material: BufId,
    beta: BufId,
    fd: Option<FdState>,
    steps_done: usize,
}

struct FdState {
    bi: BufId,
    d: BufId,
    di: BufId,
    f: BufId,
    g1: BufId,
    v1: BufId,
    v2: BufId,
}

impl LiftSim {
    /// Lowers, compiles and uploads everything for a run.
    pub fn new(
        setup: SimSetup,
        precision: Precision,
        boundary_kind: LiftBoundary,
        mut device: Device,
    ) -> Self {
        let _span = telemetry::span(HOST_TRACK, "LiftSim::new");
        let real = precision.kind();
        let n = setup.dims().total();
        let nb = setup.num_b();
        let compile = |device: &Device, p: &Program| -> CompiledKernel {
            let lowered = p.lower(real).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let prepared = device.compile(&lowered.kernel).expect("kernel prepares");
            CompiledKernel { lowered, prepared }
        };
        let volume = compile(&device, &programs::volume_program());
        let boundary = match boundary_kind {
            LiftBoundary::FiMm => compile(&device, &programs::fimm_program()),
            LiftBoundary::FdMm => compile(&device, &programs::fdmm_program()),
        };
        let prev = device.create_buffer_zeroed(real, n);
        let curr = device.create_buffer_zeroed(real, n);
        let next = device.create_buffer_zeroed(real, n);
        let nbrs = device.upload(vgpu::BufData::from(setup.room.nbrs.clone()));
        let bidx = device.upload(vgpu::BufData::from(setup.room.boundary_indices.clone()));
        let bnbrs = device.upload(vgpu::BufData::from(setup.room.boundary_nbrs()));
        let material = device.upload(vgpu::BufData::from(setup.room.material.clone()));
        let beta = device.upload(precision.buf(&setup.betas));
        let fd = match boundary_kind {
            LiftBoundary::FdMm => {
                let c = setup.fd.as_ref().expect("FD setup");
                let fa: FdArrays<f64> = FdArrays::from_coeffs(c);
                let state = setup.mb * nb;
                Some(FdState {
                    bi: device.upload(precision.buf(&fa.bi)),
                    d: device.upload(precision.buf(&fa.d)),
                    di: device.upload(precision.buf(&fa.di)),
                    f: device.upload(precision.buf(&fa.f)),
                    g1: device.create_buffer_zeroed(real, state),
                    v1: device.create_buffer_zeroed(real, state),
                    v2: device.create_buffer_zeroed(real, state),
                })
            }
            LiftBoundary::FiMm => None,
        };
        LiftSim {
            device,
            setup,
            precision,
            volume,
            boundary,
            boundary_kind,
            prev,
            curr,
            next,
            nbrs,
            bidx,
            bnbrs,
            material,
            beta,
            fd,
            steps_done: 0,
        }
    }

    /// The shared setup.
    pub fn setup(&self) -> &SimSetup {
        &self.setup
    }

    /// Which boundary model this run uses.
    pub fn boundary_kind(&self) -> LiftBoundary {
        self.boundary_kind
    }

    /// OpenCL C source of the generated kernels (volume, boundary).
    pub fn generated_sources(&self) -> (String, String) {
        (
            lift::opencl::emit_kernel(&self.volume.lowered.kernel),
            lift::opencl::emit_kernel(&self.boundary.lowered.kernel),
        )
    }

    fn size_env(&self) -> HashMap<&'static str, i64> {
        let dims = self.setup.dims();
        let mut m = HashMap::new();
        m.insert("Nx", dims.nx as i64);
        m.insert("Ny", dims.ny as i64);
        m.insert("Nz", dims.nz as i64);
        m.insert("N", dims.total() as i64);
        m.insert("numB", self.setup.num_b() as i64);
        m.insert("NM", self.setup.betas.len() as i64);
        m.insert("MB", self.setup.mb.max(1) as i64);
        m.insert("MBM", (self.setup.betas.len() * self.setup.mb.max(1)) as i64);
        m.insert("S", (self.setup.mb.max(1) * self.setup.num_b()) as i64);
        m
    }

    /// Injects an impulse as a released initial displacement.
    pub fn impulse(&mut self, x: usize, y: usize, z: usize, amp: f64) {
        let idx = self.setup.dims().idx(x, y, z);
        for buf in [self.curr, self.prev] {
            let mut data = self.device.read(buf);
            data.set(idx, self.precision.val(amp));
            self.device.write(buf, data);
        }
    }

    /// Advances one step; returns (volume, boundary) launch stats.
    pub fn step(&mut self, mode: ExecMode) -> (LaunchStats, LaunchStats) {
        let _span = telemetry::span(HOST_TRACK, "LiftSim::step");
        let sizes = self.size_env();
        let l = self.precision.val(self.setup.l);
        let l2 = self.precision.val(self.setup.l2);

        // volume kernel: allocated output bound to our `next` buffer
        let vbufs: HashMap<&str, BufId> =
            [("curr", self.curr), ("prev", self.prev), ("nbrs", self.nbrs)].into();
        let vscalars: HashMap<&str, Value> = [("l2", l2)].into();
        let vargs = bind_args(&self.volume.lowered, &vbufs, &vscalars, &sizes, Some(self.next));
        let vglobal = global_size(&self.volume.lowered, &sizes);
        let vstats = self
            .device
            .launch(&self.volume.prepared, &vargs, &vglobal, mode)
            .expect("volume launch");

        // boundary kernel (in-place)
        let mut bbufs: HashMap<&str, BufId> = [
            ("boundaryIndices", self.bidx),
            ("bnbrs", self.bnbrs),
            ("material", self.material),
            ("beta", self.beta),
            ("next", self.next),
            ("prev", self.prev),
        ]
        .into();
        if let Some(fd) = &self.fd {
            bbufs.insert("BI", fd.bi);
            bbufs.insert("D", fd.d);
            bbufs.insert("DI", fd.di);
            bbufs.insert("F", fd.f);
            bbufs.insert("g1", fd.g1);
            bbufs.insert("v1", fd.v1);
            bbufs.insert("v2", fd.v2);
        }
        let bscalars: HashMap<&str, Value> = [("l", l)].into();
        let bargs = bind_args(&self.boundary.lowered, &bbufs, &bscalars, &sizes, None);
        let bglobal = global_size(&self.boundary.lowered, &sizes);
        let bstats = self
            .device
            .launch(&self.boundary.prepared, &bargs, &bglobal, mode)
            .expect("boundary launch");

        if let Some(fd) = &mut self.fd {
            std::mem::swap(&mut fd.v1, &mut fd.v2);
        }
        let old_prev = self.prev;
        self.prev = self.curr;
        self.curr = self.next;
        self.next = old_prev;
        self.steps_done += 1;
        (vstats, bstats)
    }

    /// Launches only the boundary kernel (no volume pass, no rotation) —
    /// the generated-code counterpart of
    /// [`room_acoustics::HandwrittenSim::boundary_step_only`].
    pub fn boundary_step_only(&mut self, mode: ExecMode) -> LaunchStats {
        let _span = telemetry::span(HOST_TRACK, "LiftSim::boundary_step_only");
        let sizes = self.size_env();
        let l = self.precision.val(self.setup.l);
        let mut bbufs: HashMap<&str, BufId> = [
            ("boundaryIndices", self.bidx),
            ("bnbrs", self.bnbrs),
            ("material", self.material),
            ("beta", self.beta),
            ("next", self.next),
            ("prev", self.prev),
        ]
        .into();
        if let Some(fd) = &self.fd {
            bbufs.insert("BI", fd.bi);
            bbufs.insert("D", fd.d);
            bbufs.insert("DI", fd.di);
            bbufs.insert("F", fd.f);
            bbufs.insert("g1", fd.g1);
            bbufs.insert("v1", fd.v1);
            bbufs.insert("v2", fd.v2);
        }
        let bscalars: HashMap<&str, Value> = [("l", l)].into();
        let bargs = bind_args(&self.boundary.lowered, &bbufs, &bscalars, &sizes, None);
        let bglobal = global_size(&self.boundary.lowered, &sizes);
        self.device
            .launch(&self.boundary.prepared, &bargs, &bglobal, mode)
            .expect("boundary launch")
    }

    /// Runs `n` fast steps.
    pub fn run(&mut self, n: usize) {
        let _span = telemetry::span_with(HOST_TRACK, || format!("LiftSim::run({n})"));
        for _ in 0..n {
            self.step(ExecMode::Fast);
        }
    }

    /// Current pressure field as f64.
    pub fn read_curr(&self) -> Vec<f64> {
        self.device.read(self.curr).to_f64_vec()
    }

    /// Pressure at a point.
    pub fn sample(&self, x: usize, y: usize, z: usize) -> f64 {
        let idx = self.setup.dims().idx(x, y, z);
        self.device.read(self.curr).get(idx).as_f64()
    }

    /// Steps executed.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }
}

/// Lowers and compiles the one-kernel FI program (Listing 6) — used by the
/// Figure 4 benchmark, which measures the naive FI simulation.
pub struct FiSingleLift {
    /// The device.
    pub device: Device,
    setup: SimSetup,
    precision: Precision,
    kernel: CompiledKernel,
    prev: BufId,
    curr: BufId,
    next: BufId,
    nbrs: BufId,
    beta: f64,
}

impl FiSingleLift {
    /// Builds the FI run (box rooms, uniform β).
    pub fn new(setup: SimSetup, precision: Precision, beta: f64, mut device: Device) -> Self {
        let _span = telemetry::span(HOST_TRACK, "FiSingleLift::new");
        let real = precision.kind();
        let n = setup.dims().total();
        let p = programs::fi_single_program();
        let lowered = p.lower(real).expect("fi program lowers");
        let prepared = device.compile(&lowered.kernel).expect("fi kernel prepares");
        let prev = device.create_buffer_zeroed(real, n);
        let curr = device.create_buffer_zeroed(real, n);
        let next = device.create_buffer_zeroed(real, n);
        let nbrs = device.upload(vgpu::BufData::from(setup.room.nbrs.clone()));
        FiSingleLift {
            device,
            setup,
            precision,
            kernel: CompiledKernel { lowered, prepared },
            prev,
            curr,
            next,
            nbrs,
            beta,
        }
    }

    /// The shared setup.
    pub fn setup(&self) -> &SimSetup {
        &self.setup
    }

    /// Injects an impulse (displacement release).
    pub fn impulse(&mut self, x: usize, y: usize, z: usize, amp: f64) {
        let idx = self.setup.dims().idx(x, y, z);
        for buf in [self.curr, self.prev] {
            let mut data = self.device.read(buf);
            data.set(idx, self.precision.val(amp));
            self.device.write(buf, data);
        }
    }

    /// One step; returns the kernel's launch stats.
    pub fn step(&mut self, mode: ExecMode) -> LaunchStats {
        let _span = telemetry::span(HOST_TRACK, "FiSingleLift::step");
        let dims = self.setup.dims();
        let sizes: HashMap<&str, i64> =
            [("Nx", dims.nx as i64), ("Ny", dims.ny as i64), ("Nz", dims.nz as i64)].into();
        let bufs: HashMap<&str, BufId> =
            [("curr", self.curr), ("prev", self.prev), ("nbrs", self.nbrs)].into();
        let scalars: HashMap<&str, Value> = [
            ("l", self.precision.val(self.setup.l)),
            ("l2", self.precision.val(self.setup.l2)),
            ("beta", self.precision.val(self.beta)),
        ]
        .into();
        let args = bind_args(&self.kernel.lowered, &bufs, &scalars, &sizes, Some(self.next));
        let global = global_size(&self.kernel.lowered, &sizes);
        let stats =
            self.device.launch(&self.kernel.prepared, &args, &global, mode).expect("fi launch");
        let old_prev = self.prev;
        self.prev = self.curr;
        self.curr = self.next;
        self.next = old_prev;
        stats
    }

    /// Runs `n` fast steps.
    pub fn run(&mut self, n: usize) {
        let _span = telemetry::span_with(HOST_TRACK, || format!("FiSingleLift::run({n})"));
        for _ in 0..n {
            self.step(ExecMode::Fast);
        }
    }

    /// Current field as f64.
    pub fn read_curr(&self) -> Vec<f64> {
        self.device.read(self.curr).to_f64_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use room_acoustics::geometry::{GridDims, RoomShape};
    use room_acoustics::sim::SimConfig;

    #[test]
    fn lift_step_loop_reuses_cached_launch_plans() {
        // Generated kernels go through the same plan cache as handwritten
        // ones: two kernels per step (volume + boundary) means exactly two
        // cached plans no matter how many steps run.
        let setup = SimSetup::new(&SimConfig::fimm(GridDims::cube(10), RoomShape::Box));
        let mut sim = LiftSim::new(setup, Precision::Double, LiftBoundary::FiMm, Device::gtx780());
        sim.impulse(5, 5, 5, 1.0);
        sim.run(4);
        assert_eq!(sim.device.plan_cache_len(), 2, "volume + boundary plans");
    }

    #[test]
    fn fi_single_step_loop_reuses_one_cached_plan() {
        let setup = SimSetup::new(&SimConfig::fimm(GridDims::cube(8), RoomShape::Box));
        let mut sim = FiSingleLift::new(setup, Precision::Single, 0.1, Device::gtx780());
        sim.impulse(4, 4, 4, 1.0);
        sim.run(4);
        assert_eq!(sim.device.plan_cache_len(), 1, "one kernel, one plan");
    }
}

//! # lift-acoustics — the paper's Listings 5–8 in the LIFT IR
//!
//! Room-acoustics simulations with complex boundary conditions expressed in
//! the extended LIFT language (crate `lift`), lowered to kernels, and driven
//! on the virtual GPU (crate `vgpu`):
//!
//! * [`programs`] — the LIFT programs: FI volume stencil, the naive
//!   one-kernel FI simulation, FI-MM boundary handling (the
//!   `Concat(Skip, ArrayCons, Skip)` in-place idiom of §IV-B), and FD-MM
//!   boundary handling (tuple-of-`WriteTo` multi-output of §V-D);
//! * [`hostprog`] — the Listing 5 host orchestration built from `ToGPU` /
//!   `OclKernel` / `WriteTo` / `ToHost`;
//! * [`runner`] — simulation drivers ([`runner::LiftSim`],
//!   [`runner::FiSingleLift`]) that step the generated kernels with rotated
//!   device buffers.

#![warn(missing_docs)]

pub mod hostprog;
pub mod programs;
pub mod runner;

pub use programs::Program;
pub use runner::{FiSingleLift, LiftBoundary, LiftSim};

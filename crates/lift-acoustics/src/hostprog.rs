//! Listing 5: host-side orchestration of the two-kernel simulation.
//!
//! Builds the paper's host expression —
//!
//! ```text
//! val prev2_g = ToGPU(prev2_h)
//! val next_g  = OclKernel(volume_handling_kernel, ToGPU(prev1_h), prev2_g, …)
//! ToHost(WriteTo(next_g,
//!        OclKernel(boundary_handling_kernel, ToGPU(boundaries), …, next_g, prev2_g)))
//! ```
//!
//! — compiles it with [`lift::host::compile_host`] (which lowers both
//! kernels, inserts the transfers, allocates the volume kernel's output and
//! routes the boundary kernel's in-place writes), and runs it on the
//! virtual device via [`vgpu::run_host_program`].

use crate::programs;
use lift::host::{self, HostExpr, HostProgram, KernelDef};
use lift::lower::LowerError;
use lift::types::ScalarKind;
use room_acoustics::sim::SimSetup;
use room_acoustics::vgpu_sim::Precision;
use vgpu::{BufData, Device, ExecMode, HostEnv};

/// Builds the Listing 5 host expression for one FI-MM simulation step.
///
/// Host inputs: `curr_h`, `prev_h` (flattened 3-D grids — the same memory
/// viewed as `[[[T]]]` by the volume kernel and `[T; N]` by the boundary
/// kernel), `nbrs_h`, `boundaries_h`, `bnbrs_h`, `material_h`, `beta_h`,
/// and scalars `l2`, `l`.
pub fn fimm_step_host_expr() -> HostExpr {
    let vol = programs::volume_program();
    let bnd = programs::fimm_program();
    let volume_kernel = KernelDef::new(vol.name, vol.params, vol.body);
    let boundary_kernel = KernelDef::new(bnd.name, bnd.params, bnd.body);

    let curr_h = lift::ir::ParamDef::typed(
        "curr_h",
        lift::types::Type::array3(lift::types::Type::real(), "Nx", "Ny", "Nz"),
    );
    let prev_h = lift::ir::ParamDef::typed(
        "prev_h",
        lift::types::Type::array3(lift::types::Type::real(), "Nx", "Ny", "Nz"),
    );
    let nbrs_h = lift::ir::ParamDef::typed(
        "nbrs_h",
        lift::types::Type::array3(lift::types::Type::i32(), "Nx", "Ny", "Nz"),
    );
    let l2_h = lift::ir::ParamDef::typed("l2", lift::types::Type::real());
    let boundaries_h = lift::ir::ParamDef::typed(
        "boundaries_h",
        lift::types::Type::array(lift::types::Type::i32(), "numB"),
    );
    let bnbrs_h = lift::ir::ParamDef::typed(
        "bnbrs_h",
        lift::types::Type::array(lift::types::Type::i32(), "numB"),
    );
    let material_h = lift::ir::ParamDef::typed(
        "material_h",
        lift::types::Type::array(lift::types::Type::i32(), "numB"),
    );
    let beta_h = lift::ir::ParamDef::typed(
        "beta_h",
        lift::types::Type::array(lift::types::Type::real(), "NM"),
    );
    let l_h = lift::ir::ParamDef::typed("l", lift::types::Type::real());

    // NOTE on types: the volume kernel's output has the 3-D grid type; the
    // boundary kernel's `next`/`prev` are the same buffers viewed flat. The
    // host layer identifies buffers by slot, not by type, exactly as OpenCL
    // `cl_mem`s are untyped — so passing `next_g` to the flat-typed
    // parameter is the paper's own reinterpretation.
    host::host_let("prev2_g", host::to_gpu(host::input(&prev_h)), move |prev2_g| {
        host::host_let(
            "next_g",
            host::ocl_kernel(
                &volume_kernel,
                vec![
                    host::to_gpu(host::input(&curr_h)),
                    prev2_g.clone(),
                    host::to_gpu(host::input(&nbrs_h)),
                    host::input(&l2_h),
                ],
            ),
            move |next_g| {
                host::to_host(host::host_write_to(
                    next_g.clone(),
                    host::ocl_kernel(
                        &boundary_kernel,
                        vec![
                            host::to_gpu(host::input(&boundaries_h)),
                            host::to_gpu(host::input(&bnbrs_h)),
                            host::to_gpu(host::input(&material_h)),
                            host::to_gpu(host::input(&beta_h)),
                            next_g,
                            prev2_g,
                            host::input(&l_h),
                        ],
                    ),
                ))
            },
        )
    })
}

/// Compiles the Listing 5 host program at the given precision.
pub fn fimm_step_host_program(real: ScalarKind) -> Result<HostProgram, LowerError> {
    host::compile_host(&fimm_step_host_expr(), real)
}

/// Runs one FI-MM step through the compiled host program and returns the
/// updated pressure grid (flattened).
///
/// This exercises the complete §IV-A pipeline — transfers, the generated
/// volume kernel, the in-place boundary kernel, and the final read-back —
/// in one shot. Iterating it with rotated host arrays reproduces the full
/// simulation (the drivers in [`crate::runner`] keep buffers device-
/// resident instead, as a real application would).
#[allow(clippy::too_many_arguments)]
pub fn run_fimm_step(
    setup: &SimSetup,
    precision: Precision,
    curr: &[f64],
    prev: &[f64],
    device: &mut Device,
    mode: ExecMode,
) -> Result<Vec<f64>, vgpu::ExecError> {
    let real = precision.kind();
    let prog = fimm_step_host_program(real).map_err(|e| vgpu::ExecError(e.to_string()))?;
    let dims = setup.dims();
    let env = HostEnv::new()
        .array("curr_h", precision.buf(curr))
        .array("prev_h", precision.buf(prev))
        .array("nbrs_h", BufData::from(setup.room.nbrs.clone()))
        .array("boundaries_h", BufData::from(setup.room.boundary_indices.clone()))
        .array("bnbrs_h", BufData::from(setup.room.boundary_nbrs()))
        .array("material_h", BufData::from(setup.room.material.clone()))
        .array("beta_h", precision.buf(&setup.betas))
        .scalar("l2", precision.val(setup.l2))
        .scalar("l", precision.val(setup.l))
        .size("Nx", dims.nx as i64)
        .size("Ny", dims.ny as i64)
        .size("Nz", dims.nz as i64)
        .size("N", dims.total() as i64)
        .size("numB", setup.num_b() as i64)
        .size("NM", setup.betas.len() as i64);
    let run = vgpu::run_host_program(&prog, &env, device, real, mode)?;
    let out = run
        .outputs
        .get(&run.result)
        .ok_or_else(|| vgpu::ExecError("host program produced no result".into()))?;
    Ok(out.to_f64_vec())
}

/// The generated host C source (Table I's host rows) for the FI-MM step.
pub fn fimm_step_host_source(real: ScalarKind) -> Result<String, LowerError> {
    Ok(host::emit_host_c(&fimm_step_host_program(real)?))
}

//! Listing 5: host-side orchestration of the two-kernel simulation.
//!
//! Builds the paper's host expression —
//!
//! ```text
//! val prev2_g = ToGPU(prev2_h)
//! val next_g  = OclKernel(volume_handling_kernel, ToGPU(prev1_h), prev2_g, …)
//! ToHost(WriteTo(next_g,
//!        OclKernel(boundary_handling_kernel, ToGPU(boundaries), …, next_g, prev2_g)))
//! ```
//!
//! — compiles it with [`lift::host::compile_host`] (which lowers both
//! kernels, inserts the transfers, allocates the volume kernel's output and
//! routes the boundary kernel's in-place writes), and runs it on the
//! virtual device via [`vgpu::run_host_program`].

use crate::programs;
use lift::arith::ArithExpr;
use lift::host::{self, BufRange, HostCmd, HostExpr, HostProgram, KernelDef, LaunchArg};
use lift::lower::LowerError;
use lift::types::{ScalarKind, Type};
use room_acoustics::shard_sim::{boundary_cuts, checked_boundary_cuts};
use room_acoustics::sim::SimSetup;
use room_acoustics::vgpu_sim::Precision;
use vgpu::{BufData, Device, ExecMode, HostEnv, SlabPartition};

/// Builds the Listing 5 host expression for one FI-MM simulation step.
///
/// Host inputs: `curr_h`, `prev_h` (flattened 3-D grids — the same memory
/// viewed as `[[[T]]]` by the volume kernel and `[T; N]` by the boundary
/// kernel), `nbrs_h`, `boundaries_h`, `bnbrs_h`, `material_h`, `beta_h`,
/// and scalars `l2`, `l`.
pub fn fimm_step_host_expr() -> HostExpr {
    let vol = programs::volume_program();
    let bnd = programs::fimm_program();
    let volume_kernel = KernelDef::new(vol.name, vol.params, vol.body);
    let boundary_kernel = KernelDef::new(bnd.name, bnd.params, bnd.body);

    let curr_h = lift::ir::ParamDef::typed(
        "curr_h",
        lift::types::Type::array3(lift::types::Type::real(), "Nx", "Ny", "Nz"),
    );
    let prev_h = lift::ir::ParamDef::typed(
        "prev_h",
        lift::types::Type::array3(lift::types::Type::real(), "Nx", "Ny", "Nz"),
    );
    let nbrs_h = lift::ir::ParamDef::typed(
        "nbrs_h",
        lift::types::Type::array3(lift::types::Type::i32(), "Nx", "Ny", "Nz"),
    );
    let l2_h = lift::ir::ParamDef::typed("l2", lift::types::Type::real());
    let boundaries_h = lift::ir::ParamDef::typed(
        "boundaries_h",
        lift::types::Type::array(lift::types::Type::i32(), "numB"),
    );
    let bnbrs_h = lift::ir::ParamDef::typed(
        "bnbrs_h",
        lift::types::Type::array(lift::types::Type::i32(), "numB"),
    );
    let material_h = lift::ir::ParamDef::typed(
        "material_h",
        lift::types::Type::array(lift::types::Type::i32(), "numB"),
    );
    let beta_h = lift::ir::ParamDef::typed(
        "beta_h",
        lift::types::Type::array(lift::types::Type::real(), "NM"),
    );
    let l_h = lift::ir::ParamDef::typed("l", lift::types::Type::real());

    // NOTE on types: the volume kernel's output has the 3-D grid type; the
    // boundary kernel's `next`/`prev` are the same buffers viewed flat. The
    // host layer identifies buffers by slot, not by type, exactly as OpenCL
    // `cl_mem`s are untyped — so passing `next_g` to the flat-typed
    // parameter is the paper's own reinterpretation.
    host::host_let("prev2_g", host::to_gpu(host::input(&prev_h)), move |prev2_g| {
        host::host_let(
            "next_g",
            host::ocl_kernel(
                &volume_kernel,
                vec![
                    host::to_gpu(host::input(&curr_h)),
                    prev2_g.clone(),
                    host::to_gpu(host::input(&nbrs_h)),
                    host::input(&l2_h),
                ],
            ),
            move |next_g| {
                host::to_host(host::host_write_to(
                    next_g.clone(),
                    host::ocl_kernel(
                        &boundary_kernel,
                        vec![
                            host::to_gpu(host::input(&boundaries_h)),
                            host::to_gpu(host::input(&bnbrs_h)),
                            host::to_gpu(host::input(&material_h)),
                            host::to_gpu(host::input(&beta_h)),
                            next_g,
                            prev2_g,
                            host::input(&l_h),
                        ],
                    ),
                ))
            },
        )
    })
}

/// Compiles the Listing 5 host program at the given precision.
pub fn fimm_step_host_program(real: ScalarKind) -> Result<HostProgram, LowerError> {
    host::compile_host(&fimm_step_host_expr(), real)
}

/// Runs one FI-MM step through the compiled host program and returns the
/// updated pressure grid (flattened).
///
/// This exercises the complete §IV-A pipeline — transfers, the generated
/// volume kernel, the in-place boundary kernel, and the final read-back —
/// in one shot. Iterating it with rotated host arrays reproduces the full
/// simulation (the drivers in [`crate::runner`] keep buffers device-
/// resident instead, as a real application would).
#[allow(clippy::too_many_arguments)]
pub fn run_fimm_step(
    setup: &SimSetup,
    precision: Precision,
    curr: &[f64],
    prev: &[f64],
    device: &mut Device,
    mode: ExecMode,
) -> Result<Vec<f64>, vgpu::ExecError> {
    run_fimm_step_traced(setup, precision, curr, prev, device, mode).map(|(out, _)| out)
}

/// [`run_fimm_step`] but also returns the run's host-transfer totals, for
/// comparison against the sharded program's accounting.
pub fn run_fimm_step_traced(
    setup: &SimSetup,
    precision: Precision,
    curr: &[f64],
    prev: &[f64],
    device: &mut Device,
    mode: ExecMode,
) -> Result<(Vec<f64>, vgpu::TransferTotals), vgpu::ExecError> {
    let real = precision.kind();
    let prog = fimm_step_host_program(real).map_err(|e| vgpu::ExecError(e.to_string()))?;
    let env = fimm_step_env(setup, precision, curr, prev)
        .array("boundaries_h", BufData::from(setup.room.boundary_indices.clone()));
    let run = vgpu::run_host_program(&prog, &env, device, real, mode)?;
    let out = run
        .outputs
        .get(&run.result)
        .ok_or_else(|| vgpu::ExecError("host program produced no result".into()))?;
    Ok((out.to_f64_vec(), run.transfers))
}

/// The host inputs shared by the single-device and sharded FI-MM step
/// programs (everything except the boundary-index list, whose sharded form
/// is rebased per device).
fn fimm_step_env(setup: &SimSetup, precision: Precision, curr: &[f64], prev: &[f64]) -> HostEnv {
    let dims = setup.dims();
    HostEnv::new()
        .array("curr_h", precision.buf(curr))
        .array("prev_h", precision.buf(prev))
        .array("nbrs_h", BufData::from(setup.room.nbrs.clone()))
        .array("bnbrs_h", BufData::from(setup.room.boundary_nbrs()))
        .array("material_h", BufData::from(setup.room.material.clone()))
        .array("beta_h", precision.buf(&setup.betas))
        .scalar("l2", precision.val(setup.l2))
        .scalar("l", precision.val(setup.l))
        .size("Nx", dims.nx as i64)
        .size("Ny", dims.ny as i64)
        .size("Nz", dims.nz as i64)
        .size("N", dims.total() as i64)
        .size("numB", setup.num_b() as i64)
        .size("NM", setup.betas.len() as i64)
}

/// The generated host C source (Table I's host rows) for the FI-MM step.
pub fn fimm_step_host_source(real: ScalarKind) -> Result<String, LowerError> {
    Ok(host::emit_host_c(&fimm_step_host_program(real)?))
}

// ---------------------------------------------------------------------------
// Domain-sharded host code generation (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Per-device size-variable names introduced by the sharding transform.
fn nzl_var(d: usize) -> String {
    format!("Nzl@d{d}")
}
fn owned_var(d: usize) -> String {
    format!("owned@d{d}")
}
fn numb_var(d: usize) -> String {
    format!("numB@d{d}")
}
/// Host-input name of device `d`'s localized boundary-index list.
fn local_bidx_name(d: usize) -> String {
    format!("boundaries_h@d{d}")
}

/// Proves the gid-shifted slab volume kernel's z-reach fits the `halo`
/// planes the sharding transform allocates and exchanges, auditing it
/// under the volume program's launch contract
/// ([`programs::launch_assumptions`]) restated for slab placement
/// (`gid_offsets = [0, 0, 1]`).
fn slab_halo_proof(
    lk: &lift::lower::LoweredKernel,
    halo: (usize, usize),
) -> Result<(usize, usize), LowerError> {
    let p = programs::volume_program();
    let mut asm = programs::launch_assumptions(&p, lk);
    asm.gid_offsets = vec![0, 0, 1];
    room_acoustics::contracts::check_slab_halo(&lk.kernel, &asm, halo).map_err(LowerError)
}

/// Proves the boundary kernel's z-reach on the grid buffers (a pure
/// per-node gather proves `(0, 0)`), used to validate the boundary-list
/// split at the partition's cut planes.
fn boundary_halo_proof(lk: &lift::lower::LoweredKernel) -> Result<(usize, usize), LowerError> {
    let p = programs::fimm_program();
    let asm = programs::launch_assumptions(&p, lk);
    room_acoustics::contracts::grid_halo(&lk.kernel, &asm).map_err(LowerError)
}

fn plane_expr() -> ArithExpr {
    ArithExpr::var("Nx") * ArithExpr::var("Ny")
}

fn planes(n: usize) -> ArithExpr {
    ArithExpr::Cst(n as i64) * plane_expr()
}

/// Transforms the compiled single-device FI-MM step program
/// ([`fimm_step_host_program`]) into a Z-slab sharded program over the
/// partition's devices:
///
/// * grid arrays (`curr_h`, `prev_h`, `nbrs_h` and the volume output) get a
///   per-device local buffer of `owned + 2` planes (one halo plane each
///   side), filled by *region* `CopyIn`s of the owned planes — so
///   host→device byte totals equal the unsharded program's;
/// * `curr_h`'s seam planes are exchanged with explicit [`HostCmd::DevCopy`]
///   commands (accounted under `vgpu.halo.*` on the destination device);
/// * the volume launch becomes one launch of the gid-shifted slab kernel
///   per device over `[Nx, Ny, owned]` work-items;
/// * boundary lists are sliced at the partition's boundary cuts; the
///   boundary-index values themselves are rebased into each slab's local
///   index space, which needs a per-device host input
///   ([`local_bidx_name`]) that [`shard_env`] provides;
/// * the replicated `beta_h` table is accounted once (device 0) with
///   replica uploads flagged for `vgpu.halo.replicate.*` accounting;
/// * per-device `CopyOut`s of the owned planes assemble the result into
///   the original output name (byte total again equal).
pub fn fimm_step_sharded_host_program(
    real: ScalarKind,
    setup: &SimSetup,
    part: &SlabPartition,
) -> Result<HostProgram, LowerError> {
    let mut prog = fimm_step_host_program(real)?;
    let ndev = part.device_count();
    let plane = setup.dims().nx * setup.dims().ny;
    // The slab volume kernel: the lowered volume kernel with every
    // get_global_id(2) shifted by +1. Its `Nz` size argument is re-bound to
    // the local plane count (owned + 2), after which the shifted bounds and
    // pad guards never fire for the launched range.
    let volume_idx = prog
        .cmds
        .iter()
        .find_map(|c| match c {
            HostCmd::Launch { kernel, global_size, .. } if global_size.len() == 3 => Some(*kernel),
            _ => None,
        })
        .expect("volume launch in step program");
    let mut slab_lk = prog.kernels[volume_idx].clone();
    slab_lk.kernel = slab_lk.kernel.shift_gid(2, 1, "_slab");
    // The transform allocates one halo plane per side and exchanges one
    // seam plane per step — license that width from the kernel's proven
    // access footprint instead of assuming it (a wider stencil would
    // silently read stale or foreign data).
    slab_halo_proof(&slab_lk, (1, 1))?;
    let boundary_reach = prog
        .kernels
        .iter()
        .find(|lk| lk.kernel.work_dim == 1)
        .map(boundary_halo_proof)
        .transpose()?
        .unwrap_or((0, 0));
    let bcuts =
        checked_boundary_cuts(part, plane, &setup.room.boundary_indices, boundary_reach, (1, 1))
            .map_err(LowerError)?;
    let slab_idx = prog.kernels.len();
    prog.kernels.push(slab_lk);

    let grid_elem = |host: &str| if host == "nbrs_h" { Type::i32() } else { Type::real() };
    let local_grid_ty =
        |host: &str, d: usize| Type::array3(grid_elem(host), "Nx", "Ny", nzl_var(d).as_str());
    let mut cmds = Vec::new();
    for cmd in &prog.cmds {
        match cmd {
            HostCmd::CopyIn { host, dev, ty, .. } => match host.as_str() {
                // Grid arrays: Alloc a local slab (halo planes zeroed) and
                // region-write the owned planes; Σ bytes = unsharded copy.
                "curr_h" | "prev_h" | "nbrs_h" => {
                    for d in 0..ndev {
                        cmds.push(HostCmd::Alloc {
                            dev: dev.clone(),
                            ty: local_grid_ty(host, d),
                            device: d,
                        });
                        cmds.push(HostCmd::CopyIn {
                            host: host.clone(),
                            dev: dev.clone(),
                            ty: ty.clone(),
                            device: d,
                            src: Some(BufRange {
                                off: planes(part.first_owned(d)),
                                len: ArithExpr::var(owned_var(d).as_str()) * plane_expr(),
                            }),
                            dst_off: Some(plane_expr()),
                            replica: false,
                        });
                    }
                    if host == "curr_h" {
                        // Halo exchange: each seam swaps one plane in each
                        // direction, before any volume launch reads it.
                        for d in 0..ndev - 1 {
                            cmds.push(HostCmd::DevCopy {
                                src_device: d,
                                src: dev.clone(),
                                src_off: planes(part.owned(d)),
                                dst_device: d + 1,
                                dst: dev.clone(),
                                dst_off: ArithExpr::Cst(0),
                                len: plane_expr(),
                            });
                            cmds.push(HostCmd::DevCopy {
                                src_device: d + 1,
                                src: dev.clone(),
                                src_off: plane_expr(),
                                dst_device: d,
                                dst: dev.clone(),
                                dst_off: planes(part.owned(d) + 1),
                                len: plane_expr(),
                            });
                        }
                    }
                }
                // Boundary indices are rebased into local coordinates —
                // value translation the host runtime provides as separate
                // per-device inputs (see `sharded_env`).
                "boundaries_h" => {
                    for d in 0..ndev {
                        if bcuts[d + 1] > bcuts[d] {
                            cmds.push(HostCmd::CopyIn {
                                host: local_bidx_name(d),
                                dev: dev.clone(),
                                ty: Type::array(Type::i32(), numb_var(d).as_str()),
                                device: d,
                                src: None,
                                dst_off: None,
                                replica: false,
                            });
                        }
                    }
                }
                // List-positional arrays: plain slices of the host input.
                "bnbrs_h" | "material_h" => {
                    for d in 0..ndev {
                        if bcuts[d + 1] > bcuts[d] {
                            cmds.push(HostCmd::CopyIn {
                                host: host.clone(),
                                dev: dev.clone(),
                                ty: ty.clone(),
                                device: d,
                                src: Some(BufRange {
                                    off: ArithExpr::Cst(bcuts[d] as i64),
                                    len: ArithExpr::var(numb_var(d).as_str()),
                                }),
                                dst_off: None,
                                replica: false,
                            });
                        }
                    }
                }
                // Replicated coefficient table: exactly-once accounting —
                // the first upload is a regular transfer, the rest are
                // replicas (vgpu.halo.replicate.*).
                "beta_h" => {
                    for d in 0..ndev {
                        if d == 0 || bcuts[d + 1] > bcuts[d] {
                            cmds.push(HostCmd::CopyIn {
                                host: host.clone(),
                                dev: dev.clone(),
                                ty: ty.clone(),
                                device: d,
                                src: None,
                                dst_off: None,
                                replica: d != 0,
                            });
                        }
                    }
                }
                other => panic!("unexpected host input `{other}` in FI-MM step program"),
            },
            // The volume kernel's output allocation becomes one local slab
            // per device.
            HostCmd::Alloc { dev, .. } => {
                for d in 0..ndev {
                    cmds.push(HostCmd::Alloc {
                        dev: dev.clone(),
                        ty: local_grid_ty("out", d),
                        device: d,
                    });
                }
            }
            HostCmd::Launch { kernel, args, global_size, .. } => {
                if global_size.len() == 3 {
                    for d in 0..ndev {
                        let args = args
                            .iter()
                            .map(|a| match a {
                                LaunchArg::SizeVar(n) if n == "Nz" => {
                                    LaunchArg::SizeVar(nzl_var(d))
                                }
                                a => a.clone(),
                            })
                            .collect();
                        cmds.push(HostCmd::Launch {
                            kernel: slab_idx,
                            args,
                            global_size: vec![
                                ArithExpr::var("Nx"),
                                ArithExpr::var("Ny"),
                                ArithExpr::var(owned_var(d).as_str()),
                            ],
                            device: d,
                        });
                    }
                } else {
                    for d in 0..ndev {
                        if bcuts[d + 1] == bcuts[d] {
                            continue; // no boundary points in this slab
                        }
                        let args = args
                            .iter()
                            .map(|a| match a {
                                LaunchArg::SizeVar(n) if n == "numB" => {
                                    LaunchArg::SizeVar(numb_var(d))
                                }
                                a => a.clone(),
                            })
                            .collect();
                        cmds.push(HostCmd::Launch {
                            kernel: *kernel,
                            args,
                            global_size: vec![ArithExpr::var(numb_var(d).as_str())],
                            device: d,
                        });
                    }
                }
            }
            // Owned planes of every slab assemble into the original host
            // output; Σ bytes = the unsharded read-back.
            HostCmd::CopyOut { dev, host, ty, .. } => {
                for d in 0..ndev {
                    cmds.push(HostCmd::CopyOut {
                        dev: dev.clone(),
                        host: host.clone(),
                        ty: ty.clone(),
                        device: d,
                        src: Some(BufRange {
                            off: plane_expr(),
                            len: ArithExpr::var(owned_var(d).as_str()) * plane_expr(),
                        }),
                        dst_off: Some(planes(part.first_owned(d))),
                        host_len: Some(ArithExpr::var("N")),
                    });
                }
            }
            HostCmd::DevCopy { .. } => unreachable!("single-device program has no DevCopy"),
        }
    }
    prog.cmds = cmds;
    Ok(prog)
}

/// Extends a [`HostEnv`] with the sharding transform's per-device inputs:
/// the localized boundary-index lists and the per-device size bindings.
fn shard_env(env: HostEnv, setup: &SimSetup, part: &SlabPartition) -> HostEnv {
    let plane = setup.dims().nx * setup.dims().ny;
    let bcuts = boundary_cuts(part, plane, &setup.room.boundary_indices);
    let mut env = env;
    for d in 0..part.device_count() {
        let shift = part.elem_shift(d, plane);
        let local: Vec<i32> = setup.room.boundary_indices[bcuts[d]..bcuts[d + 1]]
            .iter()
            .map(|&i| (i as isize - shift) as i32)
            .collect();
        env = env
            .size(&nzl_var(d), part.local_planes(d) as i64)
            .size(&owned_var(d), part.owned(d) as i64)
            .size(&numb_var(d), (bcuts[d + 1] - bcuts[d]) as i64)
            .array(&local_bidx_name(d), BufData::from(local));
    }
    env
}

/// Runs one FI-MM step through the sharded host program across `devices`
/// (Z-slab balanced partition) and returns the updated pressure grid plus
/// the run's transfer totals. Bit-identical to [`run_fimm_step`]; host
/// transfer *byte* totals are equal too, with halo and replica traffic
/// reported separately.
pub fn run_fimm_step_sharded(
    setup: &SimSetup,
    precision: Precision,
    curr: &[f64],
    prev: &[f64],
    devices: &mut [Device],
    mode: ExecMode,
) -> Result<(Vec<f64>, vgpu::TransferTotals), vgpu::ExecError> {
    let real = precision.kind();
    let part = SlabPartition::balanced(setup.dims().nz, devices.len());
    let prog = fimm_step_sharded_host_program(real, setup, &part)
        .map_err(|e| vgpu::ExecError(e.to_string()))?;
    let env = shard_env(fimm_step_env(setup, precision, curr, prev), setup, &part);
    let run = vgpu::run_host_program_on(&prog, &env, devices, real, mode)?;
    let out = run
        .outputs
        .get(&run.result)
        .ok_or_else(|| vgpu::ExecError("sharded host program produced no result".into()))?;
    Ok((out.to_f64_vec(), run.transfers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use room_acoustics::{GridDims, RoomShape, SimConfig};

    #[test]
    fn sharded_host_source_emits_multi_queue_code() {
        let s = SimSetup::new(&SimConfig::fimm(GridDims::new(12, 10, 9), RoomShape::Box));
        let part = SlabPartition::balanced(s.dims().nz, 3);
        let prog = fimm_step_sharded_host_program(ScalarKind::F32, &s, &part).unwrap();
        let src = host::emit_host_c(&prog);
        // Per-device queues, halo copies, and the gid-shifted slab kernel
        // all surface in the generated host C.
        assert!(src.contains("queues[1]"), "missing per-device queue:\n{src}");
        assert!(src.contains("queues[2]"), "missing third queue:\n{src}");
        assert!(src.contains("clEnqueueCopyBuffer"), "missing halo copy:\n{src}");
        assert!(src.contains("_slab"), "missing slab kernel reference:\n{src}");
    }
}

//! Property test: the rewrite rules are semantics-preserving and *enable
//! lowering* — exactly their role in LIFT.
//!
//! Random pattern chains of layout ops (split/join, nested pads, aliasing
//! lets) composed with chains of element-wise maps are not directly
//! lowerable (a map feeding a map must be fused first). After
//! [`lift::rewrite::optimize`] the program must lower, execute, and agree
//! with a host-side oracle of the same pattern semantics.

use lift::funs;
use lift::ir::{self, ExprRef, ParamDef};
use lift::lower::lower_kernel;
use lift::prelude::*;
use lift::rewrite::optimize;
use proptest::prelude::*;
use vgpu::{Arg, BufData, Device, ExecMode};

#[derive(Debug, Clone)]
enum Layout {
    SplitJoin { chunk: usize },
    PadPair { l1: usize, l2: usize },
    LetTrivial,
}

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop_oneof![
        prop_oneof![Just(2usize), Just(3), Just(4)].prop_map(|chunk| Layout::SplitJoin { chunk }),
        (1usize..3, 1usize..3).prop_map(|(l1, l2)| Layout::PadPair { l1, l2 }),
        Just(Layout::LetTrivial),
    ]
}

fn apply_layout(w: &Layout, e: ExprRef, data: Vec<f32>) -> (ExprRef, Vec<f32>) {
    match w {
        Layout::SplitJoin { chunk } => {
            if data.len().is_multiple_of(*chunk) && !data.is_empty() {
                (ir::join(ir::split(*chunk, e)), data)
            } else {
                (e, data)
            }
        }
        Layout::PadPair { l1, l2 } => {
            let e = ir::pad(
                *l1 as i64,
                *l1 as i64,
                PadKind::Clamp,
                ir::pad(*l2 as i64, *l2 as i64, PadKind::Clamp, e),
            );
            // oracle: clamp-pad twice == clamp-pad by l1+l2 on each side
            let l = l1 + l2;
            let mut out = Vec::with_capacity(data.len() + 2 * l);
            for _ in 0..l {
                out.push(*data.first().unwrap());
            }
            out.extend_from_slice(&data);
            for _ in 0..l {
                out.push(*data.last().unwrap());
            }
            (e, out)
        }
        Layout::LetTrivial => (ir::let_in("alias", e, |v| v), data),
    }
}

fn run(params: &[std::rc::Rc<ParamDef>], prog: &ExprRef, data: &[f32], out_len: usize) -> Vec<f32> {
    let lk = lower_kernel("rw", params, prog, ScalarKind::F32).expect("optimised program lowers");
    let mut dev = Device::gtx780();
    let prep = dev.compile(&lk.kernel).expect("prepares");
    let input = dev.upload(BufData::from(data.to_vec()));
    let out = dev.create_buffer(ScalarKind::F32, out_len);
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            lift::lower::ArgSpec::Input(_, _) => Arg::Buf(input),
            lift::lower::ArgSpec::Size(_) => unreachable!(),
            lift::lower::ArgSpec::Output(_, _) => Arg::Buf(out),
        })
        .collect();
    let global: Vec<usize> =
        lk.global_size.iter().map(|g| g.eval(&|_| None).expect("concrete") as usize).collect();
    dev.launch(&prep, &args, &global, ExecMode::Fast).expect("runs");
    match dev.read(out) {
        BufData::F32(v) => v,
        other => panic!("unexpected {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn optimize_enables_lowering_and_preserves_semantics(
        layouts in prop::collection::vec(layout_strategy(), 0..4),
        adds in prop::collection::vec(-5i32..6, 1..4),
        data in prop::collection::vec(-8i32..8, 6..16),
    ) {
        let data: Vec<f32> = data.into_iter().map(|v| v as f32).collect();
        let a = ParamDef::typed("a", Type::array(Type::real(), data.len()));
        let mut e = a.to_expr();
        let mut oracle = data.clone();
        for w in &layouts {
            let (ne, no) = apply_layout(w, e, oracle);
            e = ne;
            oracle = no;
        }
        // element-wise maps stacked on top (innermost applies first)
        let add = funs::add();
        for (j, k) in adds.iter().enumerate() {
            let kk = *k as f64;
            let addf = add.clone();
            e = ir::map_seq(e, "x", move |x| ir::call(&addf, vec![x, ir::lit(Lit::real(kk))]));
            for v in oracle.iter_mut() {
                *v += *k as f32;
            }
            let _ = j;
        }
        // the outermost map is the parallel one
        let id = funs::id_real();
        let prog = ir::map_glb(e, "x", move |x| ir::call(&id, vec![x]));

        // the raw program generally does NOT lower (maps feeding maps):
        // after optimisation it must.
        let opt = optimize(&prog);
        let opt = match &opt.kind {
            lift::ir::ExprKind::Param(_) => {
                let id = funs::id_real();
                ir::map_glb(opt, "x", move |x| ir::call(&id, vec![x]))
            }
            _ => opt,
        };
        let got = run(&[a], &opt, &data, oracle.len());
        prop_assert_eq!(got, oracle, "layouts {:?}, adds {:?}", layouts, adds);
    }
}

//! Workgroup execution and the overlapped-tiling rewrite, end-to-end.
//!
//! The tiled program (`mapWrg` + `toLocal` + `mapLcl`) must compute exactly
//! what the plain `mapGlb` stencil computes, while staging each input tile
//! in local memory — cutting global loads per output from the stencil size
//! `k` down to ~1 (the win the authors' tiling paper [8] measures).

use lift::funs;
use lift::ir::{self, ParamDef};
use lift::lower::{lower_kernel, ArgSpec};
use lift::prelude::*;
use lift::rewrite::overlapped_tile_1d;
use vgpu::{Arg, BufData, Device, ExecMode};

const N: usize = 256; // output length
const K: i64 = 5; // stencil size
const TILE: i64 = 32;

fn stencil_program() -> (std::rc::Rc<ParamDef>, ExprRef) {
    // out[i] = sum of a 5-wide clamped window
    let a = ParamDef::typed("a", Type::array(Type::real(), N));
    let add = funs::add();
    let prog = ir::map_glb(
        ir::slide(K, 1, ir::pad((K - 1) / 2, (K - 1) / 2, PadKind::Clamp, a.to_expr())),
        "w",
        move |w| ir::reduce_seq(ir::lit(Lit::real(0.0)), w, |acc, x| ir::call(&add, vec![acc, x])),
    );
    (a, prog)
}

fn run(lowered: &lift::lower::LoweredKernel, data: &[f32]) -> (Vec<f32>, vgpu::LaunchStats) {
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let prep = dev.compile(&lowered.kernel).expect("prepares");
    let input = dev.upload(BufData::from(data.to_vec()));
    let out = dev.create_buffer(ScalarKind::F32, N);
    let args: Vec<Arg> = lowered
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, _) => Arg::Buf(input),
            ArgSpec::Size(_) => unreachable!("concrete sizes"),
            ArgSpec::Output(_, _) => Arg::Buf(out),
        })
        .collect();
    let global: Vec<usize> =
        lowered.global_size.iter().map(|g| g.eval(&|_| None).expect("concrete") as usize).collect();
    let local = lowered.local_size.as_ref().map(|l| l.eval(&|_| None).expect("concrete") as usize);
    let stats = dev
        .launch_wg(&prep, &args, &global, local, ExecMode::Model { sample_stride: 1 })
        .expect("launches");
    let out = match dev.read(out) {
        BufData::F32(v) => v,
        other => panic!("unexpected {other:?}"),
    };
    (out, stats)
}

#[test]
fn tiled_stencil_matches_untiled_and_cuts_global_loads() {
    let data: Vec<f32> = (0..N).map(|i| ((i * 37) % 17) as f32 - 8.0).collect();

    let (a, plain) = stencil_program();
    let plain_lk =
        lower_kernel("stencil_plain", std::slice::from_ref(&a), &plain, ScalarKind::F32).unwrap();
    assert!(plain_lk.local_size.is_none());
    let (plain_out, plain_stats) = run(&plain_lk, &data);

    let tiled = overlapped_tile_1d(&plain, TILE).expect("rewrite applies");
    let tiled_lk = lower_kernel("stencil_tiled", &[a], &tiled, ScalarKind::F32).unwrap();
    assert_eq!(
        tiled_lk.local_size.as_ref().and_then(|l| l.as_cst()),
        Some(TILE),
        "workgroup size is the tile"
    );
    let (tiled_out, tiled_stats) = run(&tiled_lk, &data);

    // identical results, bit for bit
    assert_eq!(plain_out, tiled_out);

    // global loads per output: k for the plain version, ~ (T+k−1)/T for the
    // tiled one (the cooperative staging load).
    let plain_loads = plain_stats.counters.loads_global as f64 / N as f64;
    let tiled_loads = tiled_stats.counters.loads_global as f64 / N as f64;
    assert!(plain_loads >= K as f64 - 0.01, "plain: {plain_loads}");
    assert!(
        tiled_loads < plain_loads / 3.0,
        "tiling should cut global loads: {tiled_loads} vs {plain_loads}"
    );

    // and DRAM traffic drops too
    assert!(
        tiled_stats.transaction_bytes.unwrap() < plain_stats.transaction_bytes.unwrap(),
        "tiled {:?} vs plain {:?}",
        tiled_stats.transaction_bytes,
        plain_stats.transaction_bytes
    );
}

#[test]
fn tiled_kernel_emits_local_memory_and_barrier() {
    let (a, plain) = stencil_program();
    let tiled = overlapped_tile_1d(&plain, TILE).unwrap();
    let lk = lower_kernel("stencil_tiled_src", &[a], &tiled, ScalarKind::F32).unwrap();
    let src = lift::opencl::emit_kernel(&lk.kernel);
    assert!(src.contains("__local float"), "{src}");
    assert!(src.contains("barrier(CLK_LOCAL_MEM_FENCE);"), "{src}");
    assert!(src.contains("get_local_id(0)"), "{src}");
    assert!(src.contains("get_group_id(0)"), "{src}");
}

#[test]
fn rewrite_rejects_non_stencil_shapes() {
    let a = ParamDef::typed("a", Type::array(Type::real(), N));
    let id = funs::id_real();
    let not_stencil = ir::map_glb(a.to_expr(), "x", move |x| ir::call(&id, vec![x]));
    assert!(overlapped_tile_1d(&not_stencil, TILE).is_none());
}

#[test]
fn workgroup_kernel_requires_local_size() {
    let (a, plain) = stencil_program();
    let tiled = overlapped_tile_1d(&plain, TILE).unwrap();
    let lk = lower_kernel("needs_local", &[a], &tiled, ScalarKind::F32).unwrap();
    let mut dev = Device::gtx780();
    let prep = dev.compile(&lk.kernel).unwrap();
    let input = dev.upload(BufData::from(vec![0.0f32; N]));
    let out = dev.create_buffer(ScalarKind::F32, N);
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, _) => Arg::Buf(input),
            ArgSpec::Size(_) => unreachable!(),
            ArgSpec::Output(_, _) => Arg::Buf(out),
        })
        .collect();
    // no local size → error
    let r = dev.launch(&prep, &args, &[N], ExecMode::Fast);
    assert!(r.is_err());
}

//! The 2-D pattern family (`map2`, `zip2`, `slide2`, `pad2`) end-to-end:
//! a 3×3 box blur with clamped edges and a two-field 2-D combination are
//! generated, executed on the virtual GPU, and compared against host
//! oracles. (The 3-D forms carry the acoustics volume kernel; the 2-D forms
//! serve image-like and §VIII-style planar workloads.)

use lift::funs;
use lift::ir::{self, ParamDef};
use lift::lower::{lower_kernel, ArgSpec};
use lift::prelude::*;
use vgpu::{Arg, BufData, Device, ExecMode};

const NX: usize = 20;
const NY: usize = 14;

fn run2d(lk: &lift::lower::LoweredKernel, inputs: &[(&str, Vec<f32>)]) -> Vec<f32> {
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let prep = dev.compile(&lk.kernel).unwrap();
    let bufs: Vec<(String, vgpu::BufId)> =
        inputs.iter().map(|(n, d)| (n.to_string(), dev.upload(BufData::from(d.clone())))).collect();
    let out = dev.create_buffer(ScalarKind::F32, NX * NY);
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, name) => Arg::Buf(bufs.iter().find(|(n, _)| n == name).unwrap().1),
            ArgSpec::Size(n) => Arg::Val(Value::I32(match n.as_str() {
                "Nx" => NX as i32,
                "Ny" => NY as i32,
                other => panic!("{other}"),
            })),
            ArgSpec::Output(_, _) => Arg::Buf(out),
        })
        .collect();
    let global: Vec<usize> = lk
        .global_size
        .iter()
        .map(|g| {
            g.eval(&|n| match n {
                "Nx" => Some(NX as i64),
                "Ny" => Some(NY as i64),
                _ => None,
            })
            .unwrap() as usize
        })
        .collect();
    dev.launch(&prep, &args, &global, ExecMode::Fast).unwrap();
    match dev.read(out) {
        BufData::F32(v) => v,
        other => panic!("{other:?}"),
    }
}

fn sample_image() -> Vec<f32> {
    (0..NX * NY).map(|i| ((i * 29) % 13) as f32 - 6.0).collect()
}

#[test]
fn box_blur_2d_matches_oracle() {
    let img = ParamDef::typed("img", Type::array2(Type::real(), "Nx", "Ny"));
    let add = funs::add();
    let prog =
        ir::map2_glb(ir::slide2(3, 1, ir::pad2(1, PadKind::Clamp, img.to_expr())), "w", move |w| {
            // sum the 3×3 window: reduce over rows of the window
            let row_sums = ir::map_seq(w, "row", {
                let add = add.clone();
                move |row| {
                    ir::reduce_seq(ir::lit(Lit::real(0.0)), row, |acc, x| {
                        ir::call(&add, vec![acc, x])
                    })
                }
            });
            ir::reduce_seq(ir::lit(Lit::real(0.0)), ir::to_private(row_sums), |acc, x| {
                ir::call(&add, vec![acc, x])
            })
        });
    let lk = lower_kernel("blur2d", &[img], &prog, ScalarKind::F32).unwrap();
    assert_eq!(lk.kernel.work_dim, 2);
    let data = sample_image();
    let got = run2d(&lk, &[("img", data.clone())]);
    // oracle
    let at = |x: i64, y: i64| {
        let xc = x.clamp(0, NX as i64 - 1) as usize;
        let yc = y.clamp(0, NY as i64 - 1) as usize;
        data[yc * NX + xc]
    };
    for y in 0..NY {
        for x in 0..NX {
            let mut expect = 0.0f32;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    expect += at(x as i64 + dx, y as i64 + dy);
                }
            }
            let g = got[y * NX + x];
            assert!((g - expect).abs() < 1e-4, "({x},{y}): {g} vs {expect}");
        }
    }
}

#[test]
fn zip2_combines_two_fields() {
    let a = ParamDef::typed("a", Type::array2(Type::real(), "Nx", "Ny"));
    let b = ParamDef::typed("b", Type::array2(Type::real(), "Nx", "Ny"));
    let sub = funs::sub();
    let prog = ir::map2_glb(ir::zip2(vec![a.to_expr(), b.to_expr()]), "t", move |t| {
        ir::call(&sub, vec![ir::get(t.clone(), 0), ir::get(t, 1)])
    });
    let lk = lower_kernel("diff2d", &[a, b], &prog, ScalarKind::F32).unwrap();
    let da = sample_image();
    let db: Vec<f32> = da.iter().map(|v| v * 0.5).collect();
    let got = run2d(&lk, &[("a", da.clone()), ("b", db.clone())]);
    for i in 0..NX * NY {
        assert_eq!(got[i], da[i] - db[i]);
    }
}

#[test]
fn dsl_supports_2d_forms() {
    let k = lift::dsl::parse_kernel(
        "(kernel edge
           (params (img (array (array real Nx) Ny)))
           (map2-glb (slide2 3 1 (pad2 1 clamp img)) (w)
             (- (* 9.0 (at (at w 1) 1))
                (reduce (acc row)
                        (+ acc (reduce (a2 x) (+ a2 x) 0.0 row))
                        0.0 w))))",
    )
    .unwrap();
    let lk = k.lower(ScalarKind::F32).unwrap();
    assert_eq!(lk.kernel.work_dim, 2);
    let src = lift::opencl::emit_kernel(&lk.kernel);
    assert!(src.contains("get_global_id(1)"), "{src}");
}

//! Differential verification of the vgpu bytecode engine.
//!
//! Every kernel this repo generates or hand-writes is run under
//! [`vgpu::Engine::Differential`], which executes the tree-walking oracle
//! and the bytecode tape back-to-back on identical inputs and fails the
//! launch unless the two produced bit-identical buffers, identical
//! [`vgpu::Counters`] and identical modeled transaction bytes. A proptest
//! over randomly generated arithmetic kernels additionally sweeps the
//! promotion/cast/intrinsic space the acoustics kernels don't reach.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::*;
use lift_acoustics::{programs, LiftBoundary, LiftSim};
use proptest::prelude::*;
use room_acoustics::{
    handwritten, BoundaryKernel, GridDims, HandwrittenSim, Precision, ReferenceSim, RoomShape,
    SimConfig, SimSetup,
};
use vgpu::{Arg, BufData, Device, Engine, ExecMode};

/// Every generated program and hand-written kernel, at both precisions,
/// must actually compile to a tape — a silent fall-back to the tree-walker
/// would make the differential tests below vacuous.
#[test]
fn all_acoustics_kernels_compile_to_tapes() {
    let dev = Device::gtx780();
    for real in [ScalarKind::F32, ScalarKind::F64] {
        for p in [
            programs::volume_program(),
            programs::fi_single_program(),
            programs::fimm_program(),
            programs::fdmm_program(),
        ] {
            let lowered = p.lower(real).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let prep = dev.compile(&lowered.kernel).expect("prepares");
            assert!(prep.has_tape(), "no tape for generated `{}` at {real:?}", p.name);
        }
        for (name, k) in [
            ("volume", handwritten::volume_kernel()),
            ("fi_single", handwritten::fi_single_kernel()),
            ("fimm", handwritten::fimm_kernel(false)),
            ("fimm_const", handwritten::fimm_kernel(true)),
            ("fdmm", handwritten::fdmm_kernel()),
        ] {
            let prep = dev.compile(&k.resolve_real(real)).expect("prepares");
            assert!(prep.has_tape(), "no tape for handwritten `{name}` at {real:?}");
        }
    }
}

fn diff_device() -> Device {
    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Differential);
    dev.set_race_check(true);
    dev
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{what}: mismatch at {i}: {x} vs {y}");
    }
}

/// Generated FI-MM and FD-MM simulations under the differential engine:
/// every volume + boundary launch runs on both backends, and the result
/// must still match the golden reference.
#[test]
fn lift_sims_run_differentially() {
    for (boundary, shape) in [
        (LiftBoundary::FiMm, RoomShape::LShape),
        (LiftBoundary::FiMm, RoomShape::Box),
        (LiftBoundary::FdMm, RoomShape::LShape),
    ] {
        let dims = GridDims::new(14, 14, 10);
        let cfg = match boundary {
            LiftBoundary::FiMm => SimConfig::fimm(dims, shape),
            LiftBoundary::FdMm => SimConfig::fdmm(dims, shape),
        };
        let s = SimSetup::new(&cfg);
        let mut lift = LiftSim::new(s.clone(), Precision::Double, boundary, diff_device());
        let mut rf = ReferenceSim::<f64>::new(s);
        lift.impulse(4, 4, 4, 1.0);
        rf.impulse(4, 4, 4, 1.0);
        lift.run(10);
        rf.run(10);
        assert_close(&lift.read_curr(), &rf.curr, 1e-12, &format!("{boundary:?} {shape:?}"));
    }
}

/// Same for the f32 pipeline: the tape's monomorphised f32 arithmetic must
/// round identically to the tree-walker's `Value`-based evaluation.
#[test]
fn lift_fimm_runs_differentially_f32() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::new(14, 12, 10), RoomShape::Dome));
    let mut lift = LiftSim::new(s.clone(), Precision::Single, LiftBoundary::FiMm, diff_device());
    let mut rf = ReferenceSim::<f32>::new(s);
    lift.impulse(7, 6, 4, 1.0);
    rf.impulse(7, 6, 4, 1.0);
    lift.run(10);
    rf.run(10);
    let rf_curr: Vec<f64> = rf.curr.iter().map(|&x| x as f64).collect();
    assert_close(&lift.read_curr(), &rf_curr, 1e-5, "FI-MM dome f32 differential");
}

/// Hand-written kernels (including the `__constant`-β FI-MM variant) under
/// the differential engine.
#[test]
fn handwritten_sims_run_differentially() {
    for (boundary, shape) in [
        (BoundaryKernel::FiMm { beta_constant: false }, RoomShape::LShape),
        (BoundaryKernel::FiMm { beta_constant: true }, RoomShape::Box),
        (BoundaryKernel::FdMm, RoomShape::LShape),
    ] {
        let dims = GridDims::new(14, 14, 10);
        let cfg = match boundary {
            BoundaryKernel::FdMm => SimConfig::fdmm(dims, shape),
            _ => SimConfig::fimm(dims, shape),
        };
        let s = SimSetup::new(&cfg);
        let mut hw = HandwrittenSim::new(s.clone(), Precision::Double, boundary, diff_device());
        let mut rf = ReferenceSim::<f64>::new(s);
        hw.impulse(4, 4, 4, 1.0);
        rf.impulse(4, 4, 4, 1.0);
        hw.run(10);
        rf.run(10);
        assert_close(&hw.read_curr(), &rf.curr, 1e-12, &format!("hw {boundary:?} {shape:?}"));
    }
}

/// The differential check must also hold in `Model` mode, where both
/// backends record transaction traces and flop counts.
#[test]
fn differential_holds_in_model_mode() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::new(14, 12, 10), RoomShape::Box));
    let mut lift = LiftSim::new(s.clone(), Precision::Double, LiftBoundary::FiMm, diff_device());
    lift.impulse(7, 6, 5, 1.0);
    for _ in 0..3 {
        lift.step(ExecMode::Model { sample_stride: 1 });
    }
    for _ in 0..3 {
        lift.step(ExecMode::Model { sample_stride: 4 });
    }
    assert!(lift.device.events().iter().all(|e| e.modeled_s.unwrap() > 0.0));
}

// --- random-kernel proptest -------------------------------------------------

/// A random scalar expression over `x[gid]` (real-typed), `gid` (i32) and
/// literals, exercising promotion, casts, intrinsics and selects. Division
/// is excluded (the interpreter faithfully panics on division by zero), as
/// is float `%` (rejected by both backends).
fn expr_strategy() -> impl Strategy<Value = KExpr> {
    let x = || KExpr::load(MemRef::Param(0), KExpr::GlobalId(0));
    let leaf = prop_oneof![
        Just(x()),
        Just(KExpr::GlobalId(0)),
        (-8i32..8).prop_map(KExpr::int),
        (-4.0f64..4.0).prop_map(KExpr::real),
        Just(KExpr::Lit(Lit::f32(0.5))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Lt),
                    Just(BinOp::Ge),
                ]
            )
                .prop_map(|(a, b, op)| KExpr::bin(op, a, b)),
            // Both arms cast to one kind: a select whose arms have
            // *different* kinds has a data-dependent result type, which the
            // tape compiler rejects by design (real OpenCL ternaries are
            // statically typed, so lowered kernels never produce one).
            (
                inner.clone(),
                inner.clone(),
                inner.clone(),
                prop_oneof![Just(ScalarKind::F32), Just(ScalarKind::F64), Just(ScalarKind::I32)]
            )
                .prop_map(|(c, t, f, k)| KExpr::select(
                    KExpr::bin(BinOp::Lt, c, KExpr::real(1.0)),
                    KExpr::cast(k, t),
                    KExpr::cast(k, f),
                )),
            (
                inner.clone(),
                prop_oneof![
                    Just(Intrinsic::Fabs),
                    Just(Intrinsic::Exp),
                    Just(Intrinsic::Sin),
                    Just(Intrinsic::Cos),
                ]
            )
                .prop_map(|(a, i)| KExpr::Call(i, vec![a])),
            inner.clone().prop_map(|a| KExpr::Call(
                Intrinsic::Sqrt,
                vec![KExpr::Call(Intrinsic::Fabs, vec![a])]
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| KExpr::Call(Intrinsic::Min, vec![a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| KExpr::Call(Intrinsic::Max, vec![a, b])),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| KExpr::Call(Intrinsic::Fma, vec![a, b, c])),
            inner
                .clone()
                .prop_map(|a| KExpr::cast(ScalarKind::I32, KExpr::Call(Intrinsic::Fabs, vec![a]))),
            inner.clone().prop_map(|a| KExpr::cast(ScalarKind::F32, a)),
        ]
    })
}

fn random_kernel(expr: KExpr, real: ScalarKind) -> Kernel {
    Kernel {
        name: "randexpr".into(),
        params: vec![
            KernelParam::global_buf("x", ScalarKind::Real),
            KernelParam::global_buf("y", ScalarKind::Real),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store { mem: MemRef::Param(1), idx: KExpr::GlobalId(0), value: expr },
        ],
        work_dim: 1,
    }
    .resolve_real(real)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random expression kernels, both precisions: a `Differential` launch
    /// asserts bit-identical buffers/counters/bytes internally, so the test
    /// only has to drive it (in `Model` mode so traces are compared too).
    #[test]
    fn random_kernels_match_tree_walker(
        expr in expr_strategy(),
        double in proptest::bool::ANY,
        data in proptest::collection::vec(-100i32..100, 40..70),
    ) {
        let real = if double { ScalarKind::F64 } else { ScalarKind::F32 };
        let k = random_kernel(expr, real);
        let mut dev = diff_device();
        let n = data.len();
        let input: BufData = if double {
            BufData::from(data.iter().map(|&v| v as f64 / 8.0).collect::<Vec<f64>>())
        } else {
            BufData::from(data.iter().map(|&v| v as f32 / 8.0).collect::<Vec<f32>>())
        };
        let x = dev.upload(input);
        let y = dev.create_buffer(real, n);
        let prep = dev.compile(&k).expect("prepares");
        prop_assert!(prep.has_tape(), "random kernel did not compile to a tape");
        dev.launch(
            &prep,
            &[Arg::Buf(x), Arg::Buf(y), Arg::Val(Value::I32(n as i32))],
            &[n.next_multiple_of(32)],
            ExecMode::Model { sample_stride: 1 },
        )
        .expect("differential launch agrees");
    }
}

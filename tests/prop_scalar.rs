//! Property test: scalar semantics survive code generation.
//!
//! A random scalar user function evaluated directly (`UserFun::eval`) must
//! equal the same function inlined by the code generator and executed by
//! the `vgpu` interpreter — i.e. `SExpr::eval`, `sexpr_to_kexpr` and the
//! interpreter's expression evaluator implement one semantics.

use lift::ir::{self, ParamDef};
use lift::lower::lower_kernel;
use lift::prelude::*;
use proptest::prelude::*;
use vgpu::{Arg, BufData, Device, ExecMode};

/// Random scalar expression over two Real parameters. Division avoided
/// (denominator could be zero); select/compare/min/max/neg included.
#[derive(Debug, Clone)]
enum RS {
    P0,
    P1,
    K(i32),
    Add(Box<RS>, Box<RS>),
    Sub(Box<RS>, Box<RS>),
    Mul(Box<RS>, Box<RS>),
    Neg(Box<RS>),
    Min(Box<RS>, Box<RS>),
    Max(Box<RS>, Box<RS>),
    Sel(Box<RS>, Box<RS>, Box<RS>),
}

impl RS {
    fn sexpr(&self) -> SExpr {
        match self {
            RS::P0 => SExpr::p(0),
            RS::P1 => SExpr::p(1),
            RS::K(k) => SExpr::real(*k as f64),
            RS::Add(a, b) => a.sexpr() + b.sexpr(),
            RS::Sub(a, b) => a.sexpr() - b.sexpr(),
            RS::Mul(a, b) => a.sexpr() * b.sexpr(),
            RS::Neg(a) => -a.sexpr(),
            RS::Min(a, b) => SExpr::Call(Intrinsic::Min, vec![a.sexpr(), b.sexpr()]),
            RS::Max(a, b) => SExpr::Call(Intrinsic::Max, vec![a.sexpr(), b.sexpr()]),
            RS::Sel(c, t, f) => SExpr::select(
                SExpr::cmp(BinOp::Gt, c.sexpr(), SExpr::real(0.0)),
                t.sexpr(),
                f.sexpr(),
            ),
        }
    }
}

fn rs_strategy() -> impl Strategy<Value = RS> {
    let leaf = prop_oneof![Just(RS::P0), Just(RS::P1), (-4i32..5).prop_map(RS::K)];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RS::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RS::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RS::Mul(a.into(), b.into())),
            inner.clone().prop_map(|a| RS::Neg(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RS::Min(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RS::Max(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| RS::Sel(
                c.into(),
                t.into(),
                f.into()
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scalar_semantics_survive_codegen(
        rs in rs_strategy(),
        xs in prop::collection::vec((-6i32..7, -6i32..7), 1..12),
    ) {
        let f = UserFun::new(
            "randf",
            vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
            ScalarKind::Real,
            rs.sexpr(),
        );
        // direct evaluation (f32 semantics)
        let expected: Vec<f32> = xs
            .iter()
            .map(|&(a, b)| {
                match f.eval(&[Value::F32(a as f32), Value::F32(b as f32)], ScalarKind::F32) {
                    Value::F32(v) => v,
                    other => panic!("unexpected {other:?}"),
                }
            })
            .collect();
        // through the code generator + interpreter
        let n = xs.len();
        let pa = ParamDef::typed("A", Type::array(Type::real(), n));
        let pb = ParamDef::typed("B", Type::array(Type::real(), n));
        let f2 = f.clone();
        let prog = ir::map_glb(ir::zip(vec![pa.to_expr(), pb.to_expr()]), "t", move |t| {
            ir::call(&f2, vec![ir::get(t.clone(), 0), ir::get(t, 1)])
        });
        let lk = lower_kernel("randk", &[pa, pb], &prog, ScalarKind::F32).expect("lowers");
        let mut dev = Device::gtx780();
        let prep = dev.compile(&lk.kernel).expect("prepares");
        let abuf = dev.upload(BufData::from(xs.iter().map(|&(a, _)| a as f32).collect::<Vec<_>>()));
        let bbuf = dev.upload(BufData::from(xs.iter().map(|&(_, b)| b as f32).collect::<Vec<_>>()));
        let out = dev.create_buffer(ScalarKind::F32, n);
        let args: Vec<Arg> = lk.args.iter().map(|spec| match spec {
            lift::lower::ArgSpec::Input(_, name) if name == "A" => Arg::Buf(abuf),
            lift::lower::ArgSpec::Input(_, _) => Arg::Buf(bbuf),
            lift::lower::ArgSpec::Size(_) => unreachable!(),
            lift::lower::ArgSpec::Output(_, _) => Arg::Buf(out),
        }).collect();
        dev.launch(&prep, &args, &[n], ExecMode::Fast).expect("runs");
        let got = match dev.read(out) {
            BufData::F32(v) => v,
            other => panic!("unexpected {other:?}"),
        };
        // bit-exact: same f32 operations in the same order
        prop_assert_eq!(got, expected, "fun {:?}", rs);
    }
}

//! Property tests across the whole pipeline: random pattern programs are
//! lowered by the code generator, executed on the virtual GPU, and compared
//! against a direct semantic evaluation of the patterns on host vectors.
//!
//! This is the strongest check of the view system: every slide/pad/split/
//! join/zip/gather composition must collapse to index expressions that
//! reproduce the pattern semantics exactly.

use lift::funs;
use lift::ir::{self, ExprRef, ParamDef};
use lift::lower::lower_kernel;
use lift::prelude::*;
use proptest::prelude::*;
use vgpu::{Arg, BufData, Device, ExecMode};

/// One random 1-D layout stage applied between the input and the map.
#[derive(Debug, Clone)]
enum Stage {
    SlideSum { size: usize, step: usize },
    PadClampSlideSum { pad: usize, size: usize },
    PadConstSlideSum { pad: usize, size: usize, c: i32 },
    SplitSum { chunk: usize },
    Reverse, // gather via At over iota-like reversed indexing
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (2usize..5, 1usize..3).prop_map(|(size, step)| Stage::SlideSum { size, step }),
        (1usize..3, 2usize..5).prop_map(|(pad, size)| Stage::PadClampSlideSum { pad, size }),
        (1usize..3, 2usize..5, -4i32..5).prop_map(|(pad, size, c)| Stage::PadConstSlideSum {
            pad,
            size,
            c
        }),
        prop_oneof![Just(2usize), Just(4usize)].prop_map(|chunk| Stage::SplitSum { chunk }),
        Just(Stage::Reverse),
    ]
}

/// Builds the LIFT program for a stage and computes its expected output on
/// the host. Inputs are i32-valued but flow through `Real` arithmetic.
fn apply_stage(stage: &Stage, n: usize, data: &[f32]) -> Option<(ExprRef, Vec<Rc>, Vec<f32>)> {
    let a = ParamDef::typed("a", Type::array(Type::real(), n));
    let add = funs::add();
    let sum_window = |w: ExprRef| {
        ir::reduce_seq(ir::lit(Lit::real(0.0)), w, |acc, x| ir::call(&add, vec![acc, x]))
    };
    match stage {
        Stage::SlideSum { size, step } => {
            if n < *size {
                return None;
            }
            let windows = (n - size) / step + 1;
            let prog =
                ir::map_glb(ir::slide(*size as i64, *step as i64, a.to_expr()), "w", sum_window);
            let expected: Vec<f32> = (0..windows)
                .map(|w| {
                    let mut acc = 0.0f32;
                    for j in 0..*size {
                        acc += data[w * step + j];
                    }
                    acc
                })
                .collect();
            Some((prog, vec![a], expected))
        }
        Stage::PadClampSlideSum { pad, size } => {
            let padded = n + 2 * pad;
            if padded < *size {
                return None;
            }
            let windows = padded - size + 1;
            let prog = ir::map_glb(
                ir::slide(
                    *size as i64,
                    1,
                    ir::pad(*pad as i64, *pad as i64, PadKind::Clamp, a.to_expr()),
                ),
                "w",
                sum_window,
            );
            let at = |i: i64| {
                let idx = (i - *pad as i64).clamp(0, n as i64 - 1) as usize;
                data[idx]
            };
            let expected: Vec<f32> = (0..windows)
                .map(|w| (0..*size).map(|j| at((w + j) as i64)).fold(0.0f32, |a, b| a + b))
                .collect();
            Some((prog, vec![a], expected))
        }
        Stage::PadConstSlideSum { pad, size, c } => {
            let padded = n + 2 * pad;
            if padded < *size {
                return None;
            }
            let windows = padded - size + 1;
            let prog = ir::map_glb(
                ir::slide(
                    *size as i64,
                    1,
                    ir::pad(
                        *pad as i64,
                        *pad as i64,
                        PadKind::Constant(Lit::real(*c as f64)),
                        a.to_expr(),
                    ),
                ),
                "w",
                sum_window,
            );
            let at = |i: i64| {
                let idx = i - *pad as i64;
                if idx < 0 || idx >= n as i64 {
                    *c as f32
                } else {
                    data[idx as usize]
                }
            };
            let expected: Vec<f32> = (0..windows)
                .map(|w| (0..*size).map(|j| at((w + j) as i64)).fold(0.0f32, |a, b| a + b))
                .collect();
            Some((prog, vec![a], expected))
        }
        Stage::SplitSum { chunk } => {
            if !n.is_multiple_of(*chunk) {
                return None;
            }
            let prog = ir::map_glb(ir::split(*chunk, a.to_expr()), "chunkv", sum_window);
            let expected: Vec<f32> =
                data.chunks(*chunk).map(|c| c.iter().fold(0.0f32, |x, y| x + y)).collect();
            Some((prog, vec![a], expected))
        }
        Stage::Reverse => {
            // out[i] = a[N-1-i] via the gather primitive
            let a2 = a.clone();
            let prog = ir::map_glb(ir::iota(n), "i", move |i| {
                ir::at(a2.to_expr(), ir::call(&funs::restlen(), vec![ir::size_val(n), i]))
            });
            let expected: Vec<f32> = data.iter().rev().copied().collect();
            Some((prog, vec![a], expected))
        }
    }
}

type Rc = std::rc::Rc<ParamDef>;

fn run_program(prog: &ExprRef, params: &[Rc], data: &[f32], out_len: usize) -> Vec<f32> {
    let lk = lower_kernel("prop", params, prog, ScalarKind::F32).expect("lowers");
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let prep = dev.compile(&lk.kernel).expect("prepares");
    let input = dev.upload(BufData::from(data.to_vec()));
    let out = dev.create_buffer(ScalarKind::F32, out_len);
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            lift::lower::ArgSpec::Input(_, _) => Arg::Buf(input),
            lift::lower::ArgSpec::Size(_) => unreachable!("sizes are concrete"),
            lift::lower::ArgSpec::Output(_, _) => Arg::Buf(out),
        })
        .collect();
    let global: Vec<usize> =
        lk.global_size.iter().map(|g| g.eval(&|_| None).expect("concrete") as usize).collect();
    dev.launch(&prep, &args, &global, ExecMode::Fast).expect("launches");
    match dev.read(out) {
        BufData::F32(v) => v,
        other => panic!("unexpected buffer {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated code computes the pattern semantics for every random
    /// layout stage and input.
    #[test]
    fn generated_code_matches_pattern_semantics(
        stage in stage_strategy(),
        data in prop::collection::vec(-8i32..8, 4..24),
    ) {
        let data: Vec<f32> = data.into_iter().map(|v| v as f32).collect();
        let n = data.len();
        if let Some((prog, params, expected)) = apply_stage(&stage, n, &data) {
            let got = run_program(&prog, &params, &data, expected.len());
            prop_assert_eq!(got, expected, "stage {:?}", stage);
        }
    }

    /// The in-place `Concat(Skip, ArrayCons, Skip)` idiom writes exactly
    /// the gathered positions and nothing else.
    #[test]
    fn in_place_scatter_touches_only_targets(
        n in 8usize..40,
        picks in prop::collection::btree_set(0usize..40, 1..8),
    ) {
        let picks: Vec<i32> = picks.into_iter().filter(|&i| i < n).map(|i| i as i32).collect();
        prop_assume!(!picks.is_empty());
        let num_b = picks.len();
        let indices = ParamDef::typed("indices", Type::array(Type::i32(), num_b));
        let data = ParamDef::typed("data", Type::array(Type::real(), n));
        let d2 = data.clone();
        let add = funs::add();
        let prog = ir::map_glb(indices.to_expr(), "idx", move |idx| {
            let upd = ir::call(&add, vec![ir::at(d2.to_expr(), idx.clone()), ir::lit(Lit::real(100.0))]);
            ir::write_to(
                d2.to_expr(),
                ir::concat(vec![
                    ir::skip(idx.clone(), Type::real()),
                    ir::array_cons(upd, 1usize),
                    ir::skip(ir::call(&funs::restlen(), vec![ir::size_val(n), idx]), Type::real()),
                ]),
            )
        });
        let lk = lower_kernel("scatter", &[indices, data], &prog, ScalarKind::F32).unwrap();
        let mut dev = Device::gtx780();
        dev.set_race_check(true);
        let prep = dev.compile(&lk.kernel).unwrap();
        let idx_buf = dev.upload(BufData::from(picks.clone()));
        let base: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let data_buf = dev.upload(BufData::from(base.clone()));
        let args: Vec<Arg> = lk.args.iter().map(|spec| match spec {
            lift::lower::ArgSpec::Input(_, name) if name == "indices" => Arg::Buf(idx_buf),
            lift::lower::ArgSpec::Input(_, _) => Arg::Buf(data_buf),
            lift::lower::ArgSpec::Size(_) => unreachable!(),
            lift::lower::ArgSpec::Output(_, _) => unreachable!("in-place"),
        }).collect();
        dev.launch(&prep, &args, &[num_b], ExecMode::Fast).unwrap();
        let got = dev.read(data_buf).to_f64_vec();
        for (i, v) in got.iter().enumerate() {
            let expected = if picks.contains(&(i as i32)) { i as f64 + 100.0 } else { i as f64 };
            prop_assert_eq!(*v, expected, "at {}", i);
        }
    }
}

//! The textual front-end, end-to-end: kernels written as s-expression text
//! are parsed, lowered and executed on the virtual GPU, and must compute
//! correctly — including the paper's in-place boundary idiom.

use lift::dsl::parse_kernel;
use lift::lower::ArgSpec;
use lift::prelude::*;
use vgpu::{Arg, BufData, Device, ExecMode};

fn bind_and_run(
    lk: &lift::lower::LoweredKernel,
    bufs: &[(&str, vgpu::BufId)],
    sizes: &[(&str, i64)],
    dev: &mut Device,
    out: Option<vgpu::BufId>,
) {
    let prep = dev.compile(&lk.kernel).unwrap();
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, name) => {
                let b = bufs.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("{name}"));
                Arg::Buf(b.1)
            }
            ArgSpec::Size(n) => {
                let v = sizes.iter().find(|(s, _)| s == n).unwrap_or_else(|| panic!("{n}"));
                Arg::Val(Value::I32(v.1 as i32))
            }
            ArgSpec::Output(_, _) => Arg::Buf(out.expect("output buffer")),
        })
        .collect();
    let global: Vec<usize> = lk
        .global_size
        .iter()
        .map(|g| {
            g.eval(&|n| sizes.iter().find(|(s, _)| *s == n).map(|(_, v)| *v)).unwrap() as usize
        })
        .collect();
    let local = lk.local_size.as_ref().map(|l| {
        l.eval(&|n| sizes.iter().find(|(s, _)| *s == n).map(|(_, v)| *v)).unwrap() as usize
    });
    dev.launch_wg(&prep, &args, &global, local, ExecMode::Fast).unwrap();
}

#[test]
fn dsl_saxpy_computes() {
    let k = parse_kernel(
        "(kernel saxpy
           (params (x (array real N)) (y (array real N)))
           (map-glb (zip x y) (t) (+ (* 2.0 (get t 0)) (get t 1))))",
    )
    .unwrap();
    let lk = k.lower(ScalarKind::F32).unwrap();
    let mut dev = Device::gtx780();
    let x = dev.upload(BufData::from(vec![1.0f32, 2.0, 3.0]));
    let y = dev.upload(BufData::from(vec![10.0f32, 20.0, 30.0]));
    let out = dev.create_buffer(ScalarKind::F32, 3);
    bind_and_run(&lk, &[("x", x), ("y", y)], &[("N", 3)], &mut dev, Some(out));
    assert_eq!(dev.read(out), BufData::from(vec![12.0f32, 24.0, 36.0]));
}

#[test]
fn dsl_in_place_scatter_matches_semantics() {
    let k = parse_kernel(
        "(kernel scatter
           (params (indices (array int numB)) (data (array real N)))
           (map-glb indices (idx)
             (write-to data
               (concat (skip idx real)
                       (array-cons (* (at data idx) 10.0) 1)
                       (skip (- (- (size-val N) idx) 1) real)))))",
    )
    .unwrap();
    let lk = k.lower(ScalarKind::F64).unwrap();
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let idx = dev.upload(BufData::from(vec![1i32, 4]));
    let data = dev.upload(BufData::from(vec![0.0f64, 1.0, 2.0, 3.0, 4.0, 5.0]));
    bind_and_run(
        &lk,
        &[("indices", idx), ("data", data)],
        &[("numB", 2), ("N", 6)],
        &mut dev,
        None,
    );
    assert_eq!(dev.read(data), BufData::from(vec![0.0f64, 10.0, 2.0, 3.0, 40.0, 5.0]));
}

#[test]
fn dsl_tiled_stencil_runs_with_workgroups() {
    let k = parse_kernel(
        "(kernel tiled
           (params (a (array real 128)))
           (map-wrg (slide 34 32 (pad 1 1 clamp a)) (tile)
             (map-lcl (slide 3 1 (to-local tile)) (w)
               (reduce (acc x) (+ acc x) 0.0 w))))",
    )
    .unwrap();
    let lk = k.lower(ScalarKind::F32).unwrap();
    let mut dev = Device::gtx780();
    let data: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let a = dev.upload(BufData::from(data.clone()));
    let out = dev.create_buffer(ScalarKind::F32, 128);
    bind_and_run(&lk, &[("a", a)], &[], &mut dev, Some(out));
    let got = dev.read(out).to_f64_vec();
    // interior: 3-point sums; edges use clamp
    assert_eq!(got[5], (4 + 5 + 6) as f64);
    #[allow(clippy::identity_op)]
    {
        assert_eq!(got[0], (0 + 0 + 1) as f64);
    }
    assert_eq!(got[127], (126 + 127 + 127) as f64);
}

#[test]
fn dsl_and_builder_programs_generate_identical_code() {
    // The FI-MM update written in the DSL equals the builder version.
    let dsl = parse_kernel(
        "(kernel bh
           (params (bidx (array int numB)) (bnbrs (array int numB))
                   (next (array real N)) (prev (array real N)) (l real))
           (map-glb (zip bidx bnbrs) (t)
             (let (idx (get t 0))
               (let (cf (* (* (* 0.5 l) (real (- 6 (get t 1)))) 0.04))
                 (write-to (at next idx)
                   (/ (+ (at next idx) (* cf (at prev idx))) (+ 1.0 cf)))))))",
    )
    .unwrap();
    let lk = dsl.lower(ScalarKind::F64).unwrap();
    let src = lift::opencl::emit_kernel(&lk.kernel);
    assert!(src.contains("__kernel void bh"), "{src}");
    assert!(src.contains("next["), "{src}");
    // run it against the reference formula
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let bidx = dev.upload(BufData::from(vec![2i32, 5]));
    let bnbrs = dev.upload(BufData::from(vec![5i32, 3]));
    let next = dev.upload(BufData::from(vec![1.0f64; 8]));
    let prev = dev.upload(BufData::from(vec![0.5f64; 8]));
    let prep = dev.compile(&lk.kernel).unwrap();
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, name) => match name.as_str() {
                "bidx" => Arg::Buf(bidx),
                "bnbrs" => Arg::Buf(bnbrs),
                "next" => Arg::Buf(next),
                "prev" => Arg::Buf(prev),
                "l" => Arg::Val(Value::F64(1.0 / 3.0f64.sqrt())),
                other => panic!("{other}"),
            },
            ArgSpec::Size(n) => Arg::Val(Value::I32(match n.as_str() {
                "numB" => 2,
                "N" => 8,
                other => panic!("{other}"),
            })),
            ArgSpec::Output(_, _) => unreachable!(),
        })
        .collect();
    dev.launch(&prep, &args, &[2], ExecMode::Fast).unwrap();
    let got = dev.read(next).to_f64_vec();
    let l = 1.0 / 3.0f64.sqrt();
    for (i, nbr) in [(2usize, 5i32), (5, 3)] {
        let cf = 0.5 * l * (6 - nbr) as f64 * 0.04;
        let expect = (1.0 + cf * 0.5) / (1.0 + cf);
        assert!((got[i] - expect).abs() < 1e-15, "{} vs {}", got[i], expect);
    }
}

//! End-to-end verification: LIFT-generated kernels vs the golden reference
//! and the hand-written baselines.
//!
//! This is the correctness claim behind the paper's Figures 4–6: the code
//! generator must produce kernels that compute the *same simulation* as the
//! hand-tuned codes. We check the generated volume + FI-MM / FD-MM boundary
//! kernels (run on the virtual GPU) against the pure-Rust golden models, at
//! both precisions, on both room shapes.

use lift_acoustics::{FiSingleLift, LiftBoundary, LiftSim};
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, MaterialAssignment, Precision, ReferenceSim,
    RoomShape, SimConfig, SimSetup,
};
use vgpu::Device;

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    let mut worst = 0.0f64;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let d = (x - y).abs();
        assert!(d <= tol * (1.0 + y.abs()), "{what}: mismatch at {i}: {x} vs {y} (|Δ|={d:.3e})");
        worst = worst.max(d);
    }
}

fn fimm_setup(shape: RoomShape) -> SimSetup {
    SimSetup::new(&SimConfig::fimm(GridDims::new(14, 12, 10), shape))
}

fn fdmm_setup(shape: RoomShape) -> SimSetup {
    SimSetup::new(&SimConfig::fdmm(GridDims::new(14, 12, 10), shape))
}

#[test]
fn lift_fimm_matches_reference_f64_box() {
    let s = fimm_setup(RoomShape::Box);
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut lift = LiftSim::new(s.clone(), Precision::Double, LiftBoundary::FiMm, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    lift.impulse(7, 6, 5, 1.0);
    rf.impulse(7, 6, 5, 1.0);
    lift.run(20);
    rf.run(20);
    assert_close(&lift.read_curr(), &rf.curr, 1e-12, "FI-MM box f64");
}

#[test]
fn lift_fimm_matches_reference_f64_dome() {
    let s = fimm_setup(RoomShape::Dome);
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut lift = LiftSim::new(s.clone(), Precision::Double, LiftBoundary::FiMm, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    lift.impulse(7, 6, 4, 1.0);
    rf.impulse(7, 6, 4, 1.0);
    lift.run(20);
    rf.run(20);
    assert_close(&lift.read_curr(), &rf.curr, 1e-12, "FI-MM dome f64");
}

#[test]
fn lift_fimm_matches_reference_f32() {
    let s = fimm_setup(RoomShape::Box);
    let mut lift = LiftSim::new(s.clone(), Precision::Single, LiftBoundary::FiMm, Device::gtx780());
    let mut rf = ReferenceSim::<f32>::new(s);
    lift.impulse(7, 6, 5, 1.0);
    rf.impulse(7, 6, 5, 1.0);
    lift.run(15);
    rf.run(15);
    let rf_curr: Vec<f64> = rf.curr.iter().map(|&x| x as f64).collect();
    assert_close(&lift.read_curr(), &rf_curr, 1e-5, "FI-MM box f32");
}

#[test]
fn lift_fdmm_matches_reference_f64_box() {
    let s = fdmm_setup(RoomShape::Box);
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut lift = LiftSim::new(s.clone(), Precision::Double, LiftBoundary::FdMm, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    lift.impulse(7, 6, 5, 1.0);
    rf.impulse(7, 6, 5, 1.0);
    lift.run(20);
    rf.run(20);
    assert_close(&lift.read_curr(), &rf.curr, 1e-12, "FD-MM box f64");
}

#[test]
fn lift_fdmm_matches_reference_f64_dome() {
    let s = fdmm_setup(RoomShape::Dome);
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut lift = LiftSim::new(s.clone(), Precision::Double, LiftBoundary::FdMm, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    lift.impulse(7, 6, 4, 1.0);
    rf.impulse(7, 6, 4, 1.0);
    lift.run(20);
    rf.run(20);
    assert_close(&lift.read_curr(), &rf.curr, 1e-12, "FD-MM dome f64");
}

#[test]
fn lift_fdmm_matches_reference_f64_lshape() {
    let s = SimSetup::new(&SimConfig::fdmm(GridDims::new(14, 14, 10), RoomShape::LShape));
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut lift = LiftSim::new(s.clone(), Precision::Double, LiftBoundary::FdMm, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    lift.impulse(4, 4, 4, 1.0);
    rf.impulse(4, 4, 4, 1.0);
    lift.run(20);
    rf.run(20);
    assert_close(&lift.read_curr(), &rf.curr, 1e-12, "FD-MM L-shape f64");
}

#[test]
fn lift_fdmm_matches_handwritten_across_shapes_and_precisions() {
    for shape in [RoomShape::Box, RoomShape::Dome] {
        for precision in [Precision::Single, Precision::Double] {
            let s = fdmm_setup(shape);
            let mut lift = LiftSim::new(s.clone(), precision, LiftBoundary::FdMm, Device::gtx780());
            let mut hw = HandwrittenSim::new(s, precision, BoundaryKernel::FdMm, Device::gtx780());
            lift.impulse(6, 6, 4, 1.0);
            hw.impulse(6, 6, 4, 1.0);
            lift.run(10);
            hw.run(10);
            let tol = match precision {
                Precision::Single => 1e-5,
                Precision::Double => 1e-13,
            };
            assert_close(
                &lift.read_curr(),
                &hw.read_curr(),
                tol,
                &format!("FD-MM {:?} {:?}", shape, precision),
            );
        }
    }
}

#[test]
fn lift_fi_single_kernel_matches_reference() {
    // Figure 4's benchmark: the naive one-kernel FI simulation, box only.
    let dims = GridDims::new(16, 12, 10);
    let cfg = SimConfig {
        dims,
        shape: RoomShape::Box,
        assignment: MaterialAssignment::Uniform,
        boundary: room_acoustics::BoundaryModel::Fi { beta: 0.25 },
    };
    let s = SimSetup::new(&cfg);
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut lift = FiSingleLift::new(s.clone(), Precision::Double, 0.25, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    lift.impulse(8, 6, 5, 1.0);
    rf.impulse(8, 6, 5, 1.0);
    lift.run(25);
    rf.run(25);
    assert_close(&lift.read_curr(), &rf.curr, 1e-12, "FI single-kernel f64");
}

#[test]
fn host_program_step_matches_reference_step() {
    // Listing 5: a full ToGPU → volume kernel → in-place boundary kernel →
    // ToHost round trip must equal one reference step.
    let s = fimm_setup(RoomShape::Dome);
    let mut rf = ReferenceSim::<f64>::new(s.clone());
    rf.impulse(7, 6, 4, 1.0);
    let curr = rf.curr.iter().map(|x| x.f64_of()).collect::<Vec<f64>>();
    let prev = rf.prev.iter().map(|x| x.f64_of()).collect::<Vec<f64>>();
    rf.step();
    let mut dev = Device::gtx780();
    let out = lift_acoustics::hostprog::run_fimm_step(
        &s,
        Precision::Double,
        &curr,
        &prev,
        &mut dev,
        vgpu::ExecMode::Fast,
    )
    .expect("host program runs");
    assert_close(&out, &rf.curr, 1e-13, "host program step");
}

#[test]
fn sharded_host_program_matches_single_device() {
    // Tentpole identity: the Z-slab sharded host program (per-device slabs,
    // halo DevCopies, replicated tables, assembling read-back) must be
    // bit-identical to the single-device Listing 5 program, with equal
    // host-transfer *byte* totals and all extra traffic under vgpu.halo.*.
    for shape in [RoomShape::Box, RoomShape::Dome] {
        let s = fimm_setup(shape);
        let mut rf = ReferenceSim::<f64>::new(s.clone());
        rf.impulse(7, 6, 4, 1.0);
        let curr = rf.curr.clone();
        let prev = rf.prev.clone();
        let mut dev = Device::gtx780();
        let (single, t1) = lift_acoustics::hostprog::run_fimm_step_traced(
            &s,
            Precision::Double,
            &curr,
            &prev,
            &mut dev,
            vgpu::ExecMode::Fast,
        )
        .expect("single-device host program runs");
        let plane = s.dims().nx * s.dims().ny;
        for ndev in [2usize, 3] {
            let mut devices: Vec<Device> = (0..ndev).map(|_| Device::gtx780()).collect();
            let (sharded, t2) = lift_acoustics::hostprog::run_fimm_step_sharded(
                &s,
                Precision::Double,
                &curr,
                &prev,
                &mut devices,
                vgpu::ExecMode::Fast,
            )
            .expect("sharded host program runs");
            assert_eq!(sharded.len(), single.len());
            for (i, (a, b)) in sharded.iter().zip(&single).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{shape:?} x{ndev}: bit mismatch at {i}: {a} vs {b}"
                );
            }
            // Host transfers account exactly once: byte totals match the
            // unsharded program even though the transfer *count* scales
            // with the device count.
            assert_eq!(t2.to_gpu_bytes, t1.to_gpu_bytes, "{shape:?} x{ndev}: to_gpu bytes");
            assert_eq!(t2.to_host_bytes, t1.to_host_bytes, "{shape:?} x{ndev}: to_host bytes");
            assert!(t2.to_gpu_transfers > t1.to_gpu_transfers);
            // Halo traffic: one plane in each direction per seam.
            assert_eq!(t2.halo_bytes, (2 * (ndev - 1) * plane * 8) as u64);
            assert_eq!(t2.halo_copies, (2 * (ndev - 1)) as u64);
            // The beta table is re-uploaded once per extra device that owns
            // boundary points.
            assert!(t2.replicate_transfers >= 1);
            assert_eq!(t2.replicate_bytes, t2.replicate_transfers * (s.betas.len() * 8) as u64);
            assert_eq!(t1.replicate_bytes, 0);
            assert_eq!(t1.halo_bytes, 0);
        }
    }
}

/// Small helper since `f64: Real` uses the method name `f64`.
trait F64Of {
    fn f64_of(&self) -> f64;
}
impl F64Of for f64 {
    fn f64_of(&self) -> f64 {
        *self
    }
}

// --- L-shape boundary probes -----------------------------------------------
//
// The L-shaped room has concave edges where a boundary node's missing
// neighbours point *into* the cut-out; these configurations exercised the
// `nbrs`/`bnbrs` tables differently from Box/Dome and were the subject of
// two checked-in regression seeds (see `crates/acoustics/tests/
// seed_replay.rs`). Until these probes, only FD-MM ran against the
// reference on the L-shape; FI-MM (generated and hand-written) was a
// coverage hole.

#[test]
fn lift_fimm_matches_reference_f64_lshape() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::new(14, 14, 10), RoomShape::LShape));
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut lift = LiftSim::new(s.clone(), Precision::Double, LiftBoundary::FiMm, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    lift.impulse(4, 4, 4, 1.0);
    rf.impulse(4, 4, 4, 1.0);
    lift.run(20);
    rf.run(20);
    assert_close(&lift.read_curr(), &rf.curr, 1e-12, "FI-MM L-shape f64");
}

#[test]
fn hw_fimm_matches_reference_f64_lshape() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::new(14, 14, 10), RoomShape::LShape));
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut hw = HandwrittenSim::new(
        s.clone(),
        Precision::Double,
        BoundaryKernel::FiMm { beta_constant: false },
        dev,
    );
    let mut rf = ReferenceSim::<f64>::new(s);
    hw.impulse(4, 4, 4, 1.0);
    rf.impulse(4, 4, 4, 1.0);
    hw.run(20);
    rf.run(20);
    assert_close(&hw.read_curr(), &rf.curr, 1e-12, "handwritten FI-MM L-shape f64");
}

#[test]
fn hw_fdmm_matches_reference_f64_lshape() {
    let s = SimSetup::new(&SimConfig::fdmm(GridDims::new(14, 14, 10), RoomShape::LShape));
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let mut hw = HandwrittenSim::new(s.clone(), Precision::Double, BoundaryKernel::FdMm, dev);
    let mut rf = ReferenceSim::<f64>::new(s);
    hw.impulse(4, 4, 4, 1.0);
    rf.impulse(4, 4, 4, 1.0);
    hw.run(20);
    rf.run(20);
    assert_close(&hw.read_curr(), &rf.curr, 1e-12, "handwritten FD-MM L-shape f64");
}

#[test]
fn generated_opencl_sources_have_expected_structure() {
    let s = fimm_setup(RoomShape::Box);
    let lift = LiftSim::new(s, Precision::Single, LiftBoundary::FiMm, Device::gtx780());
    let (vol_src, bnd_src) = lift.generated_sources();
    assert!(vol_src.contains("__kernel void volume_handling_lift"), "{vol_src}");
    assert!(vol_src.contains("get_global_id(2)"), "{vol_src}");
    assert!(bnd_src.contains("__kernel void fimm_boundary_lift"), "{bnd_src}");
    // In-place: the boundary kernel reads and writes `next` at a gathered
    // offset and has no allocated `out` buffer.
    assert!(!bnd_src.contains("* out"), "{bnd_src}");
}

//! Writing kernels as text: the s-expression front-end (`lift::dsl`).
//!
//! LIFT is "meant to be targeted by DSLs or libraries" (§III); this example
//! loads a boundary-handling kernel from text — including the paper's
//! in-place `concat/skip/array-cons` idiom — lowers it at both precisions,
//! prints the OpenCL, and runs it on the virtual GPU.
//!
//! ```sh
//! cargo run --example dsl_kernel
//! ```

use room_acoustics_lift::lift::dsl::parse_kernel;
use room_acoustics_lift::lift::lower::ArgSpec;
use room_acoustics_lift::lift::opencl;
use room_acoustics_lift::lift::prelude::*;
use room_acoustics_lift::vgpu::{Arg, BufData, Device, ExecMode};

const KERNEL_SRC: &str = "
;; Frequency-independent boundary relaxation, written as text.
;; next[idx] = (next[idx] + cf*prev[idx]) / (1 + cf),
;; cf = 0.5*l*(6 - nbr)*beta — the paper's Listing 3, in-place.
(kernel boundary_relax
  (params (bidx  (array int numB))
          (bnbrs (array int numB))
          (next  (array real N))
          (prev  (array real N))
          (l real)
          (beta real))
  (map-glb (zip bidx bnbrs) (t)
    (let (idx (get t 0))
      (let (cf (* (* (* 0.5 l) (real (- 6 (get t 1)))) beta))
        (write-to next
          (concat (skip idx real)
                  (array-cons (/ (+ (at next idx) (* cf (at prev idx)))
                                 (+ 1.0 cf))
                              1)
                  (skip (- (- (size-val N) idx) 1) real)))))))";

fn main() {
    let kernel = parse_kernel(KERNEL_SRC).expect("parses");
    println!("parsed kernel `{}` with {} parameters\n", kernel.name, kernel.params.len());

    for (label, real) in [("single", ScalarKind::F32), ("double", ScalarKind::F64)] {
        let lk = kernel.lower(real).expect("lowers");
        println!("// ---- {label} precision ----");
        println!("{}", opencl::emit_kernel(&lk.kernel));
    }

    // run it: an 8-point 1-D "room" with two boundary cells
    let lk = kernel.lower(ScalarKind::F64).unwrap();
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    let prep = dev.compile(&lk.kernel).unwrap();
    let bidx = dev.upload(BufData::from(vec![0i32, 7]));
    let bnbrs = dev.upload(BufData::from(vec![5i32, 5]));
    let next = dev.upload(BufData::from(vec![1.0f64; 8]));
    let prev = dev.upload(BufData::from(vec![0.0f64; 8]));
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, name) => match name.as_str() {
                "bidx" => Arg::Buf(bidx),
                "bnbrs" => Arg::Buf(bnbrs),
                "next" => Arg::Buf(next),
                "prev" => Arg::Buf(prev),
                "l" => Arg::Val(Value::F64(1.0 / 3.0f64.sqrt())),
                "beta" => Arg::Val(Value::F64(0.5)),
                other => panic!("unexpected param {other}"),
            },
            ArgSpec::Size(n) => Arg::Val(Value::I32(match n.as_str() {
                "numB" => 2,
                "N" => 8,
                other => panic!("unexpected size {other}"),
            })),
            ArgSpec::Output(_, _) => unreachable!("in-place kernel"),
        })
        .collect();
    dev.launch(&prep, &args, &[2], ExecMode::Fast).unwrap();
    let out = dev.read(next).to_f64_vec();
    println!("field after one boundary relaxation: {out:?}");
    assert!(out[0] < 1.0 && out[7] < 1.0, "boundary cells absorbed energy");
    assert!(out[1..7].iter().all(|&v| v == 1.0), "interior untouched");
    println!("in-place semantics verified ✓");
}

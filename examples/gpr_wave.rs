//! §VIII "Beyond room acoustics": a ground-penetrating-radar-style
//! electromagnetic FDTD expressed with the same extended-LIFT primitives.
//!
//! A 2-D TMz Yee scheme updates three field arrays (`Ez`, `Hx`, `Hy`)
//! **in place** every step — the multi-array in-place pattern the paper
//! says geophysical codes need even for their *volume* kernels. A lossy
//! subsurface half-space (per-cell conductivity → per-cell update
//! coefficients) plays the role of "multiple materials".
//!
//! The two kernels are built from scratch here with the public `lift` API —
//! no acoustics code involved — demonstrating that the §IV primitives
//! (`WriteTo`, `At`, tuples of writes) generalise beyond the paper's
//! domain. Results are verified against a plain Rust reference.
//!
//! ```sh
//! cargo run --release --example gpr_wave
//! ```

use room_acoustics_lift::lift::ir::{self, ParamDef};
use room_acoustics_lift::lift::lower::lower_kernel;
use room_acoustics_lift::lift::prelude::*;
use room_acoustics_lift::vgpu::{Arg, BufData, Device, ExecMode};
use std::collections::HashMap;

const NX: usize = 96;
const NY: usize = 72;
const C: f64 = 0.5; // Courant number (≤ 1/√2 in 2-D)

/// `x(i, nx) = i % nx`, `y(i, nx) = i / nx`.
fn xy_funs() -> (std::rc::Rc<UserFun>, std::rc::Rc<UserFun>) {
    let x = UserFun::new(
        "xof",
        vec![("i", ScalarKind::I32), ("nx", ScalarKind::I32)],
        ScalarKind::I32,
        SExpr::Bin(BinOp::Rem, SExpr::p(0).into(), SExpr::p(1).into()),
    );
    let y = UserFun::new(
        "yof",
        vec![("i", ScalarKind::I32), ("nx", ScalarKind::I32)],
        ScalarKind::I32,
        SExpr::Bin(BinOp::Div, SExpr::p(0).into(), SExpr::p(1).into()),
    );
    (x, y)
}

/// H-field kernel: updates `Hx` and `Hy` in place (two `WriteTo`s per
/// element — the multi-output pattern of §V-D applied to a volume kernel).
fn h_kernel(real: ScalarKind) -> lift::lower::LoweredKernel {
    let ez = ParamDef::typed("Ez", Type::array(Type::real(), "N"));
    let hx = ParamDef::typed("Hx", Type::array(Type::real(), "N"));
    let hy = ParamDef::typed("Hy", Type::array(Type::real(), "N"));
    let ch = ParamDef::typed("ch", Type::real());
    let (xof, yof) = xy_funs();
    // Clamped neighbour index: min(i+d, n−1). User-function arguments are
    // evaluated eagerly, so out-of-range neighbour loads must be clamped
    // (the select below then discards the clamped value at edges) — the
    // same trick `pad(Clamp)` uses.
    let addc = UserFun::new(
        "addClamped",
        vec![("i", ScalarKind::I32), ("d", ScalarKind::I32), ("n", ScalarKind::I32)],
        ScalarKind::I32,
        SExpr::Call(Intrinsic::Min, vec![SExpr::p(0) + SExpr::p(1), SExpr::p(2) - SExpr::int(1)]),
    );
    // guarded update: u(old, a, b, ch, edge) = edge ? old : old − ch·(a−b)
    let upd = UserFun::new(
        "hupd",
        vec![
            ("old", ScalarKind::Real),
            ("a", ScalarKind::Real),
            ("b", ScalarKind::Real),
            ("ch", ScalarKind::Real),
            ("edge", ScalarKind::Bool),
        ],
        ScalarKind::Real,
        SExpr::select(
            SExpr::p(4),
            SExpr::p(0),
            SExpr::p(0) - SExpr::p(3) * (SExpr::p(1) - SExpr::p(2)),
        ),
    );
    let (ez2, hx2, hy2, ch2) = (ez.clone(), hx.clone(), hy.clone(), ch.clone());
    let body = ir::map_glb(ir::iota("N"), "i", move |i| {
        ir::let_in("x", ir::call(&xof, vec![i.clone(), ir::size_val("Nx")]), move |x| {
            ir::let_in("y", ir::call(&yof, vec![i.clone(), ir::size_val("Nx")]), move |y| {
                let at_edge_y = edge_pred(y.clone(), "Ny");
                let at_edge_x = edge_pred(x, "Nx");
                // Hx[i] −= ch·(Ez[i+Nx] − Ez[i]) ; frozen at y = Ny−1 (the
                // clamped load's value is discarded by the select).
                let i_up = ir::call(&addc, vec![i.clone(), ir::size_val("Nx"), ir::size_val("N")]);
                let hx_new = ir::call(
                    &upd,
                    vec![
                        ir::at(hx2.to_expr(), i.clone()),
                        ir::at(ez2.to_expr(), i_up),
                        ir::at(ez2.to_expr(), i.clone()),
                        ch2.to_expr(),
                        at_edge_y,
                    ],
                );
                // Hy[i] += ch·(Ez[i+1] − Ez[i]) — use upd(old, b, a, …) to
                // flip the subtraction's sign.
                let i_right =
                    ir::call(&addc, vec![i.clone(), ir::lit(Lit::i32(1)), ir::size_val("N")]);
                let hy_new = ir::call(
                    &upd,
                    vec![
                        ir::at(hy2.to_expr(), i.clone()),
                        ir::at(ez2.to_expr(), i.clone()),
                        ir::at(ez2.to_expr(), i_right),
                        ch2.to_expr(),
                        at_edge_x,
                    ],
                );
                ir::tuple(vec![
                    ir::write_to(ir::at(hx2.to_expr(), i.clone()), hx_new),
                    ir::write_to(ir::at(hy2.to_expr(), i), hy_new),
                ])
            })
        })
    });
    lower_kernel("gpr_h_update", &[ez, hx, hy, ch], &body, real).expect("H kernel lowers")
}

/// `edge(v, limit) = v == limit − 1` as an IR expression.
fn edge_pred(v: ExprRef, limit: &str) -> ExprRef {
    let eq = UserFun::new(
        "isLast",
        vec![("v", ScalarKind::I32), ("n", ScalarKind::I32)],
        ScalarKind::Bool,
        SExpr::cmp(BinOp::Eq, SExpr::p(0), SExpr::p(1) - SExpr::int(1)),
    );
    ir::call(&eq, vec![v, ir::size_val(limit)])
}

/// E-field kernel: `Ez[i] = ca[i]·Ez[i] + cb[i]·((Hy[i]−Hy[i−1]) −
/// (Hx[i]−Hx[i−Nx]))`, in place, with per-cell material coefficients.
fn e_kernel(real: ScalarKind) -> lift::lower::LoweredKernel {
    let ez = ParamDef::typed("Ez", Type::array(Type::real(), "N"));
    let hx = ParamDef::typed("Hx", Type::array(Type::real(), "N"));
    let hy = ParamDef::typed("Hy", Type::array(Type::real(), "N"));
    let ca = ParamDef::typed("ca", Type::array(Type::real(), "N"));
    let cb = ParamDef::typed("cb", Type::array(Type::real(), "N"));
    let (xof, yof) = xy_funs();
    // Clamped backwards index: max(a − b, 0).
    let subc = UserFun::new(
        "subClamped",
        vec![("a", ScalarKind::I32), ("b", ScalarKind::I32)],
        ScalarKind::I32,
        SExpr::Call(Intrinsic::Max, vec![SExpr::p(0) - SExpr::p(1), SExpr::int(0)]),
    );
    // e(old, hyr, hyl, hxu, hxd, ca, cb, interior) =
    //   interior ? ca·old + cb·((hyr−hyl) − (hxu−hxd)) : old
    let upd = UserFun::new(
        "eupd",
        vec![
            ("old", ScalarKind::Real),
            ("hyr", ScalarKind::Real),
            ("hyl", ScalarKind::Real),
            ("hxu", ScalarKind::Real),
            ("hxd", ScalarKind::Real),
            ("ca", ScalarKind::Real),
            ("cb", ScalarKind::Real),
            ("interior", ScalarKind::Bool),
        ],
        ScalarKind::Real,
        SExpr::select(
            SExpr::p(7),
            SExpr::p(5) * SExpr::p(0)
                + SExpr::p(6) * ((SExpr::p(1) - SExpr::p(2)) - (SExpr::p(3) - SExpr::p(4))),
            SExpr::p(0),
        ),
    );
    let interior = UserFun::new(
        "interior",
        vec![("x", ScalarKind::I32), ("y", ScalarKind::I32)],
        ScalarKind::Bool,
        SExpr::cmp(
            BinOp::And,
            SExpr::cmp(BinOp::Gt, SExpr::p(0), SExpr::int(0)),
            SExpr::cmp(BinOp::Gt, SExpr::p(1), SExpr::int(0)),
        ),
    );
    let (ez2, hx2, hy2, ca2, cb2) = (ez.clone(), hx.clone(), hy.clone(), ca.clone(), cb.clone());
    let body = ir::map_glb(ir::iota("N"), "i", move |i| {
        ir::let_in("x", ir::call(&xof, vec![i.clone(), ir::size_val("Nx")]), move |x| {
            ir::let_in("y", ir::call(&yof, vec![i.clone(), ir::size_val("Nx")]), move |y| {
                let inside = ir::call(&interior, vec![x, y]);
                let i_left = ir::call(&subc, vec![i.clone(), ir::lit(Lit::i32(1))]);
                let i_down = ir::call(&subc, vec![i.clone(), ir::size_val("Nx")]);
                let val = ir::call(
                    &upd,
                    vec![
                        ir::at(ez2.to_expr(), i.clone()),
                        ir::at(hy2.to_expr(), i.clone()),
                        ir::at(hy2.to_expr(), i_left),
                        ir::at(hx2.to_expr(), i.clone()),
                        ir::at(hx2.to_expr(), i_down),
                        ir::at(ca2.to_expr(), i.clone()),
                        ir::at(cb2.to_expr(), i.clone()),
                        inside,
                    ],
                );
                ir::write_to(ir::at(ez2.to_expr(), i), val)
            })
        })
    });
    lower_kernel("gpr_e_update", &[ez, hx, hy, ca, cb], &body, real).expect("E kernel lowers")
}

/// Plain Rust reference for verification.
#[allow(clippy::too_many_arguments)]
fn reference_step(ez: &mut [f64], hx: &mut [f64], hy: &mut [f64], ca: &[f64], cb: &[f64], ch: f64) {
    for y in 0..NY {
        for x in 0..NX {
            let i = y * NX + x;
            if y < NY - 1 {
                hx[i] -= ch * (ez[i + NX] - ez[i]);
            }
            if x < NX - 1 {
                hy[i] -= ch * (ez[i] - ez[i + 1]);
            }
        }
    }
    for y in 1..NY {
        for x in 1..NX {
            let i = y * NX + x;
            ez[i] = ca[i] * ez[i] + cb[i] * ((hy[i] - hy[i - 1]) - (hx[i] - hx[i - NX]));
        }
    }
}

fn main() {
    let real = ScalarKind::F64;
    let n = NX * NY;
    // materials: free space above y = NY/2, lossy soil below (GPR's
    // subsurface), a very lossy "bedrock" stripe at the bottom as a crude
    // absorbing layer.
    let mut ca = vec![1.0f64; n];
    let mut cb = vec![C; n];
    for y in 0..NY {
        for x in 0..NX {
            let i = y * NX + x;
            let sigma = if y < NY / 8 {
                0.30 // bedrock / absorber
            } else if y < NY / 2 {
                0.02 // soil
            } else {
                0.0 // air
            };
            ca[i] = (1.0 - sigma) / (1.0 + sigma);
            cb[i] = C / (1.0 + sigma);
        }
    }

    let mut device = Device::gtx780();
    let hk = h_kernel(real);
    let ek = e_kernel(real);
    let hprep = device.compile(&hk.kernel).unwrap();
    let eprep = device.compile(&ek.kernel).unwrap();
    println!("generated H kernel:\n{}", lift::opencl::emit_kernel(&hk.kernel));

    let mut ez0 = vec![0.0f64; n];
    ez0[(3 * NY / 4) * NX + NX / 2] = 1.0; // antenna above the surface
    let ez = device.upload(BufData::from(ez0.clone()));
    let hx = device.upload(BufData::from(vec![0.0f64; n]));
    let hy = device.upload(BufData::from(vec![0.0f64; n]));
    let cab = device.upload(BufData::from(ca.clone()));
    let cbb = device.upload(BufData::from(cb.clone()));

    // reference state
    let (mut rez, mut rhx, mut rhy) = (ez0, vec![0.0f64; n], vec![0.0f64; n]);

    let sizes: HashMap<&str, i64> = [("N", n as i64), ("Nx", NX as i64), ("Ny", NY as i64)].into();
    let bind = |lk: &lift::lower::LoweredKernel, bufs: &HashMap<&str, vgpu::BufId>| -> Vec<Arg> {
        lk.args
            .iter()
            .map(|spec| match spec {
                lift::lower::ArgSpec::Input(_, name) => match name.as_str() {
                    "ch" => Arg::Val(Value::F64(C)),
                    other => Arg::Buf(*bufs.get(other).expect(other)),
                },
                lift::lower::ArgSpec::Size(s) => Arg::Val(Value::I32(sizes[s.as_str()] as i32)),
                lift::lower::ArgSpec::Output(_, _) => unreachable!("in-place kernels"),
            })
            .collect()
    };
    let bufs: HashMap<&str, vgpu::BufId> =
        [("Ez", ez), ("Hx", hx), ("Hy", hy), ("ca", cab), ("cb", cbb)].into();
    let hargs = bind(&hk, &bufs);
    let eargs = bind(&ek, &bufs);

    for step in 0..80 {
        device.launch(&hprep, &hargs, &[n], ExecMode::Fast).unwrap();
        device.launch(&eprep, &eargs, &[n], ExecMode::Fast).unwrap();
        reference_step(&mut rez, &mut rhx, &mut rhy, &ca, &cb, C);
        if step % 20 == 19 {
            let g = device.read(ez).to_f64_vec();
            let err = g.iter().zip(&rez).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            let energy: f64 = g.iter().map(|v| v * v).sum();
            println!(
                "step {:3}: max|LIFT − reference| = {err:.3e}, field energy {energy:.5}",
                step + 1
            );
            assert!(err < 1e-12, "generated kernels must match the reference");
        }
    }
    println!("\nLIFT-generated GPR kernels match the reference — §VIII pattern works ✓");
}

//! Quickstart: simulate a small room with multi-material absorbing walls
//! using LIFT-generated kernels, and print the impulse response at a
//! receiver.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use room_acoustics::{GridDims, Precision, ReferenceSim, RoomShape, SimConfig, SimSetup};
use room_acoustics_lift::lift_acoustics::{LiftBoundary, LiftSim};
use room_acoustics_lift::vgpu::Device;

fn main() {
    // 1. Describe the room: a 3.2 m × 2.4 m × 2.0 m box at 10 cm resolution
    //    (34×26×22 grid incl. halo), with the default carpet/plaster/glass
    //    material set on floor/ceiling/walls and frequency-dependent (FD-MM)
    //    boundary physics.
    let dims = GridDims::new(34, 26, 22);
    let cfg = SimConfig::fdmm(dims, RoomShape::Box);
    let setup = SimSetup::new(&cfg);
    println!(
        "room: {}×{}×{} grid, {} boundary points, {} materials, MB = {}",
        dims.nx,
        dims.ny,
        dims.nz,
        setup.num_b(),
        setup.betas.len(),
        setup.mb
    );

    // 2. Build the LIFT pipeline: the volume and FD-MM boundary kernels are
    //    generated from pattern-IR programs and run on the virtual GPU.
    let mut sim =
        LiftSim::new(setup.clone(), Precision::Single, LiftBoundary::FdMm, Device::gtx780());
    let (vol_src, _) = sim.generated_sources();
    println!(
        "\ngenerated volume kernel (first lines):\n{}",
        vol_src.lines().take(6).collect::<Vec<_>>().join("\n")
    );

    // 3. Excite with an impulse and record a receiver.
    sim.impulse(10, 13, 11, 1.0);
    let rx = (24, 13, 11);
    println!("\nimpulse response at {rx:?}:");
    let mut peak: f64 = 0.0;
    for t in 0..60 {
        sim.run(1);
        let p = sim.sample(rx.0, rx.1, rx.2);
        peak = peak.max(p.abs());
        if t % 5 == 0 {
            let bar = "#".repeat((50.0 * p.abs() / peak.max(1e-12)).round() as usize);
            println!("t={t:3}  p={p:+.5}  {bar}");
        }
    }

    // 4. Cross-check against the pure-Rust golden model.
    let mut golden = ReferenceSim::<f32>::new(setup);
    golden.impulse(10, 13, 11, 1.0);
    golden.run(60);
    let a = sim.sample(rx.0, rx.1, rx.2);
    let b = golden.sample(rx.0, rx.1, rx.2);
    println!("\nLIFT-generated vs reference at receiver: {a:+.6} vs {b:+.6}");
    assert!((a - b).abs() < 1e-4, "generated code must match the reference");
    println!("match ✓");
}

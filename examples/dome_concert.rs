//! Domain example: reverberation of a dome-shaped hall under different wall
//! treatments — the workload the paper's introduction motivates (Figure 1).
//!
//! Runs the FD-MM simulation in a voxelised dome three times (reflective,
//! mixed, and heavily damped material sets), measures the energy-decay
//! curve, and reports a T20-style reverberation estimate for each
//! treatment.
//!
//! ```sh
//! cargo run --release --example dome_concert
//! ```

use room_acoustics::materials::{BranchParams, Material};
use room_acoustics::{
    BoundaryModel, GridDims, MaterialAssignment, ReferenceSim, RoomShape, SimConfig, SimSetup,
};

/// Steps until the energy proxy decays by `db` decibels, with a cap.
fn decay_steps(sim: &mut ReferenceSim<f64>, db: f64, cap: usize) -> Option<usize> {
    let e0 = sim.energy();
    let target = e0 * 10f64.powf(-db / 10.0);
    for t in 0..cap {
        sim.run(1);
        if sim.energy() <= target {
            return Some(t + 1);
        }
    }
    None
}

fn treatment(name: &str, materials: Vec<Material>) {
    let dims = GridDims::new(42, 42, 24);
    let cfg = SimConfig {
        dims,
        shape: RoomShape::Dome,
        assignment: MaterialAssignment::FloorWallsCeiling,
        boundary: BoundaryModel::FdMm { materials, mb: 3 },
    };
    let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
    sim.impulse(21, 21, 8, 1.0);
    sim.run(30); // let the direct field spread before measuring decay
    match decay_steps(&mut sim, 20.0, 6000) {
        Some(steps) => {
            // With a 5 cm grid at the Courant limit, one step ≈ 85 µs; a
            // T20 extrapolates ×3 to a T60-style figure.
            let dt_us = 0.05 / 343.0 / 3f64.sqrt() * 1e6;
            println!(
                "{name:<22} −20 dB in {steps:5} steps  (≈ T60 {:.2} s at 5 cm resolution)",
                3.0 * steps as f64 * dt_us * 1e-6
            );
        }
        None => println!("{name:<22} did not decay 20 dB within the step budget"),
    }
}

fn main() {
    println!("dome hall, FD-MM boundaries, three wall treatments:\n");
    treatment(
        "stone (reflective)",
        vec![
            Material::fi("stone floor", 0.004),
            Material::plaster(),
            Material::fi("stone wall", 0.006),
        ],
    );
    treatment("default (mixed)", Material::default_set());
    treatment(
        "treated (damped)",
        vec![
            Material::carpet(),
            Material {
                name: "absorber panels".into(),
                beta0: 0.35,
                branches: vec![
                    BranchParams::new(2.0, 2.5, 0.05),
                    BranchParams::new(5.0, 1.5, 0.30),
                    BranchParams::new(12.0, 1.0, 0.90),
                ],
            },
            Material::carpet(),
        ],
    );
    println!("\nlonger decay for reflective surfaces, shorter for damped — as built.");
}

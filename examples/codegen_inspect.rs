//! Prints the OpenCL C that the extended LIFT code generator produces for
//! every kernel of the paper (Listings 6–8) plus the Listing 5 host
//! program — the textual artifacts behind Tables I and the §V listings.
//!
//! ```sh
//! cargo run --example codegen_inspect [--double]
//! ```

use room_acoustics_lift::lift::opencl;
use room_acoustics_lift::lift::types::ScalarKind;
use room_acoustics_lift::lift_acoustics::{hostprog, programs};

fn main() {
    let double = std::env::args().any(|a| a == "--double");
    let real = if double { ScalarKind::F64 } else { ScalarKind::F32 };
    println!(
        "// precision: {} (pass --double for f64)\n",
        if double { "double" } else { "single" }
    );
    for p in [
        programs::volume_program(),
        programs::fi_single_program(),
        programs::fimm_program(),
        programs::fdmm_program(),
    ] {
        let lk = p.lower(real).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        println!("// ===== {} =====", p.name);
        println!("// NDRange: {:?} (innermost first)", lk.global_size);
        println!("{}", opencl::emit_kernel(&lk.kernel));
    }
    println!("// ===== Listing 5: host orchestration (one FI-MM step) =====");
    match hostprog::fimm_step_host_source(real) {
        Ok(src) => println!("{src}"),
        Err(e) => eprintln!("host generation failed: {e}"),
    }
}

#!/usr/bin/env bash
# Snapshots the perf-tracking benchmarks into BENCH_*.json at the repo
# root, stamped with the git revision they were measured at. The committed
# files are the before/after records behind EXPERIMENTS.md's
# dispatch-overhead, warp-vectorization, and batch-throughput entries:
# re-run this script after perf-relevant changes and commit the diff so
# regressions show up in review. Every record carries provenance fields
# (engine, threads, warm/cold plan-cache state) — see
# crates/bench/src/provenance.rs.
#
# Every record also carries the virtual device count (VGPU_DEVICES, via
# crates/bench/src/provenance.rs) — sharded and unsharded numbers are not
# wall-clock-comparable — and the shard_bench leg snapshots the full
# device-scaling curve (ms/step and vgpu.halo.* bytes at 1/2/4 devices).
#
# Usage: scripts/bench_snapshot.sh [cube-edge] [steps] [rooms] [batch-threads]
#        (defaults 32, 60, 64, 4)
set -euo pipefail
cd "$(dirname "$0")/.."

cube="${1:-32}"
steps="${2:-60}"
rooms="${3:-64}"
batch_threads="${4:-4}"

sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Splices provenance fields into a single-line JSON record, writes it, and
# appends it to BENCH_history.jsonl — an append-only log of every snapshot
# ever taken on this machine. The committed BENCH_*.json files only ever
# show the latest numbers; the history line (same record, same git_sha/date
# provenance) is what lets `bench_compare` diff against *any* past
# revision, not just the previous commit.
snapshot() {
  local record="$1" out_file="$2"
  local out="${record%\}},\"git_sha\":\"${sha}\",\"date\":\"${date}\"}"
  echo "$out" | tee "$out_file"
  echo "$out" >> BENCH_history.jsonl
}

cargo build --release -p bench --bin dispatch_bench --bin batch_bench --bin shard_bench

snapshot "$(./target/release/dispatch_bench "$cube" "$steps")" BENCH_dispatch.json
# Each bench runs in its own process, so all records start plan-cold.
snapshot "$(./target/release/batch_bench "$rooms" "$batch_threads")" BENCH_batch.json
# Device-scaling curve: smaller cube, the sweep runs 12 configurations.
snapshot "$(./target/release/shard_bench "$((cube / 2))" "$steps")" BENCH_shard.json

#!/usr/bin/env bash
# Snapshots the dispatch-overhead benchmark into BENCH_dispatch.json at the
# repo root, stamped with the git revision it was measured at. The committed
# file is the before/after record behind EXPERIMENTS.md's dispatch-overhead
# and warp-vectorization entries: re-run this script after perf-relevant
# changes and commit the diff so regressions show up in review.
#
# Usage: scripts/bench_snapshot.sh [cube-edge] [steps]   (defaults 32, 60)
set -euo pipefail
cd "$(dirname "$0")/.."

cube="${1:-32}"
steps="${2:-60}"

cargo build --release -p bench --bin dispatch_bench
record="$(./target/release/dispatch_bench "$cube" "$steps")"

sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Splice provenance fields into the single-line JSON record.
out="${record%\}},\"git_sha\":\"${sha}\",\"date\":\"${date}\"}"
echo "$out" | tee BENCH_dispatch.json

#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation.
# REPRO_QUICK=1 runs reduced sizes (minutes instead of tens of minutes).
# --trace additionally writes Perfetto-loadable Chrome traces and telemetry
# summaries next to each report (results/*.trace.json, results/*.telemetry.json).
set -euo pipefail
cd "$(dirname "$0")/.."
for arg in "$@"; do
  case "$arg" in
    --trace) export VGPU_TRACE=chrome ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
cargo build --release -p bench
for bin in repro_table2 repro_fig2 repro_fig4 repro_fig5 repro_fig6 repro_ablations; do
  echo "==================== $bin ===================="
  ./target/release/$bin
done
echo "results written to results/*.json"
if [ "${VGPU_TRACE:-off}" = chrome ]; then
  echo "traces written to results/*.trace.json (open at https://ui.perfetto.dev)"
fi

#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation.
# REPRO_QUICK=1 runs reduced sizes (minutes instead of tens of minutes).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p bench
for bin in repro_table2 repro_fig2 repro_fig4 repro_fig5 repro_fig6 repro_ablations; do
  echo "==================== $bin ===================="
  ./target/release/$bin
done
echo "results written to results/*.json"

#!/usr/bin/env bash
# Regression-checks two benchmark snapshots (committed BENCH_*.json files
# or results/run_report.json run reports) with the direction-aware
# bench_compare tool: timing/miss/failure metrics must not grow, and
# throughput/hit-rate metrics must not shrink, by more than the threshold.
# Exits nonzero on any regression — wire it between "before" and "after"
# snapshots when reviewing perf-relevant changes, or pass --warn-only for
# informational CI steps. See DESIGN.md §11.
#
# Usage: scripts/bench_compare.sh <baseline.json> <current.json>
#            [--threshold PCT] [--warn-only]
#        scripts/bench_compare.sh --check <report.json>
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin bench_compare >/dev/null
exec ./target/release/bench_compare "$@"

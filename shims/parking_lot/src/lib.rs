//! Offline shim for `parking_lot`: a `Mutex` with the parking_lot calling
//! convention (non-poisoning `lock()` returning the guard directly),
//! implemented over `std::sync::Mutex`. Poisoning is deliberately erased —
//! parking_lot has no poison concept, and callers here rely on that.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`
/// for the surface this workspace uses.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static` initialisers).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. A panic while a
    /// previous guard was held does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        static M: Mutex<i32> = Mutex::new(0);
        *M.lock() += 41;
        *M.lock() += 1;
        assert_eq!(*M.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }
}

//! Offline shim for `proptest`: strategies are deterministic seeded samplers
//! (seeded from the test function's name, so runs are reproducible) and the
//! `proptest!` macro drives N cases per test. No shrinking — a failing case
//! panics with the case number so it can be re-run under a debugger; the
//! workspace's properties are cheap enough that raw counterexamples are
//! readable without minimisation.
//!
//! Covered surface: range strategies (ints and floats, half-open), `Just`,
//! tuple strategies to 5 elements, `prop_map`, `prop_recursive`, `boxed`,
//! `prop_oneof!`, `prop::collection::{vec, btree_set}`, `prop::array::
//! uniform4`, `proptest::bool::ANY`, `ProptestConfig::with_cases`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.

pub mod test_runner {
    /// Deterministic RNG (SplitMix64) seeded from a label.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `label`.
        pub fn deterministic(label: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Why a generated case did not complete.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of type `Value`. Object-safe core (`gen_value`);
    /// combinators are `Sized`-gated.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds recursive values: applies `recurse` to the strategy `depth`
        /// times, starting from `self` as the leaf. The `_desired_size` and
        /// `_expected_branch_size` hints are accepted for API compatibility
        /// and ignored (depth alone bounds this sampler).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms` (picked uniformly).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let x = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + x) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let x = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + x) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy};

/// `bool`-valued strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A collection size: a half-open range or an exact count.
    #[derive(Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.0.clone().gen_value(rng)
        }
    }

    /// `Vec<T>` with a length drawn from `len` and elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    /// `BTreeSet<T>` with a target size drawn from `len`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Builds a [`BTreeSetStrategy`].
    pub fn btree_set<S>(elem: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, len: len.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.len.draw(rng);
            let mut out = BTreeSet::new();
            // Duplicate draws shrink the set; bounded retries top it back up
            // without risking a spin when the element domain is small.
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.gen_value(rng));
            }
            out
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `[T; 4]` with elements drawn from `elem`.
    pub struct Uniform4<S>(S);

    /// Builds a [`Uniform4`].
    pub fn uniform4<S: Strategy>(elem: S) -> Uniform4<S> {
        Uniform4(elem)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn gen_value(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.gen_value(rng),
                self.0.gen_value(rng),
                self.0.gen_value(rng),
                self.0.gen_value(rng),
            ]
        }
    }
}

/// Convenience re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use super::{ProptestConfig, TestCaseError};

    /// The `prop::` module alias the real prelude exports.
    pub mod prop {
        pub use crate::{array, bool, collection, strategy};
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a proptest case (fails the case, not the process, so the
/// runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Rejects the current case (the runner draws fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_no: u64 = 0;
            while passed < cfg.cases {
                case_no += 1;
                let __strat = ($($strat,)+);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::gen_value(&__strat, &mut rng);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 4096,
                            "proptest shim: too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of `{}` failed: {}",
                            case_no, stringify!($name), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = prop_oneof![(-10i64..10).prop_map(Tree::Leaf), Just(Tree::Leaf(0))];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                inner,
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(
            a in 3usize..9,
            x in -2.5f64..4.0,
            flag in crate::bool::ANY,
            arr in prop::array::uniform4(-5i64..5),
            v in prop::collection::vec(0u32..100, 2..6),
            s in prop::collection::btree_set(0usize..40, 1..8),
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.5..4.0).contains(&x));
            let _ = flag;
            prop_assert!(arr.iter().all(|e| (-5..5).contains(e)));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn recursion_is_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 3, "depth {} too deep: {:?}", depth(&t), t);
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut r1), s.gen_value(&mut r2));
        }
    }
}

//! Offline shim for `rand` 0.8: `SeedableRng::seed_from_u64`, `StdRng` /
//! `SmallRng` (both xoshiro256++ seeded via SplitMix64), and the `Rng`
//! methods this workspace uses (`gen_range` over half-open ranges,
//! `gen_bool`, `gen`). Deterministic for a given seed across platforms.

use std::ops::Range;

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a range can be sampled from via [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire-style widening multiply; the tiny modulo bias of a
                // plain `% span` is irrelevant here, but this is just as easy.
                let x = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + x) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::draw(self) < p
    }

    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// xoshiro256++ state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        // SplitMix64 expansion, per the xoshiro authors' recommendation.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256::from_u64(seed)
    }
}

/// Named RNG types (all the same generator in this shim).
pub mod rngs {
    /// The default seedable RNG.
    pub type StdRng = super::Xoshiro256;
    /// The small fast RNG.
    pub type SmallRng = super::Xoshiro256;
}

/// A process-unique loosely-seeded RNG (not cryptographic).
pub fn thread_rng() -> Xoshiro256 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CTR: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    Xoshiro256::from_u64(t ^ CTR.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

pub use rngs::{SmallRng, StdRng};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = r.gen_range(-20i32..-10);
            assert!((-20..-10).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}

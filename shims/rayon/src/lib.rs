//! Offline shim for `rayon`: the data-parallel surface this workspace uses
//! (`par_chunks`, `par_chunks_mut().enumerate()`, range `into_par_iter`,
//! `map`/`for_each`/`collect`, the global-pool thread count), implemented
//! with `std::thread::scope`.
//!
//! Semantics preserved from rayon for the covered surface:
//! - `map(..).collect()` keeps input order;
//! - closures run concurrently on up to [`current_num_threads`] workers, so
//!   they must be `Sync` and items `Send` (same bounds rayon demands);
//! - `ThreadPoolBuilder::num_threads(n).build_global()` pins the worker
//!   count once per process (first call wins, like rayon's global pool).
//!
//! Work is split into one contiguous run per worker rather than
//! work-stolen. With the small launch grids this repo dispatches the
//! difference is noise, and on a single-CPU host everything runs inline
//! with zero thread overhead.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = not yet fixed; otherwise the pinned global worker count.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads parallel operations fan out over.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Error type for [`ThreadPoolBuilder::build_global`] (the shim never
/// actually fails; rayon errors on double initialisation, we keep first-wins
/// semantics and report success).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global pool; only the thread count is configurable.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = auto).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Installs this configuration as the global pool. First call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        let _ = GLOBAL_THREADS.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
        Ok(())
    }
}

/// Runs `f` over `n` items split into one contiguous run per worker,
/// invoking `f(start..end, w)` on worker `w`. Returns per-worker results in
/// worker order.
fn split_runs<R: Send>(n: usize, f: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    let workers = current_num_threads().max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return vec![f(0..n)];
    }
    let per = n.div_ceil(workers);
    let ranges: Vec<Range<usize>> =
        (0..workers).map(|w| (w * per).min(n)..((w + 1) * per).min(n)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                s.spawn(move || f(r))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon-shim worker panicked")).collect()
    })
}

/// Subset of rayon's `ParallelIterator`: the adapters this workspace calls.
pub mod iter {
    use super::split_runs;
    use std::ops::Range;

    /// Parallel iterator over immutable chunks of a slice.
    pub struct ParChunks<'a, T> {
        pub(crate) slice: &'a [T],
        pub(crate) size: usize,
    }

    /// [`ParChunks`] with a mapping function applied.
    pub struct ParChunksMap<'a, T, F> {
        chunks: ParChunks<'a, T>,
        f: F,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Applies `f` to every chunk.
        pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
        {
            ParChunksMap { chunks: self, f }
        }

        /// Runs `f` on every chunk.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a [T]) + Sync,
        {
            let _ = self.map(f).collect::<Vec<()>>();
        }
    }

    impl<'a, T: Sync, R: Send, F: Fn(&'a [T]) -> R + Sync> ParChunksMap<'a, T, F> {
        /// Collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let ParChunksMap { chunks, f } = self;
            let slice = chunks.slice;
            let size = chunks.size.max(1);
            let nchunks = slice.len().div_ceil(size);
            let runs = split_runs(nchunks, |r: Range<usize>| {
                r.map(|i| f(&slice[i * size..((i + 1) * size).min(slice.len())]))
                    .collect::<Vec<R>>()
            });
            runs.into_iter().flatten().collect()
        }
    }

    /// Parallel iterator over mutable chunks of a slice.
    pub struct ParChunksMut<'a, T> {
        pub(crate) slice: &'a mut [T],
        pub(crate) size: usize,
    }

    /// [`ParChunksMut`] with chunk indices attached.
    pub struct ParChunksMutEnumerate<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pairs every chunk with its index.
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate { inner: self }
        }

        /// Runs `f` on every chunk.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, c)| f(c));
        }
    }

    /// A taken-once cell handing one disjoint `&mut` chunk to a worker.
    type ChunkCell<'a, T> = std::sync::Mutex<Option<(usize, &'a mut [T])>>;

    impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
        /// Runs `f` on every `(index, chunk)` pair.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            let size = self.inner.size.max(1);
            // Pre-split into disjoint &mut chunks so workers never alias.
            let chunks: Vec<(usize, &mut [T])> =
                self.inner.slice.chunks_mut(size).enumerate().collect();
            let cells: Vec<ChunkCell<'_, T>> =
                chunks.into_iter().map(|c| std::sync::Mutex::new(Some(c))).collect();
            let _ = split_runs(cells.len(), |r: Range<usize>| {
                for i in r {
                    let item = cells[i].lock().unwrap().take().expect("chunk taken twice");
                    f(item);
                }
            });
        }
    }

    /// Parallel iterator over a `Range<usize>`.
    pub struct ParRange {
        pub(crate) range: Range<usize>,
    }

    /// [`ParRange`] with a mapping function applied.
    pub struct ParRangeMap<F> {
        range: Range<usize>,
        f: F,
    }

    impl ParRange {
        /// Applies `f` to every index.
        pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
        where
            R: Send,
            F: Fn(usize) -> R + Sync,
        {
            ParRangeMap { range: self.range, f }
        }

        /// Runs `f` on every index.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(usize) + Sync,
        {
            let _ = self.map(f).collect::<Vec<()>>();
        }
    }

    impl<R: Send, F: Fn(usize) -> R + Sync> ParRangeMap<F> {
        /// Collects results in index order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let ParRangeMap { range, f } = self;
            let lo = range.start;
            let runs =
                split_runs(range.len(), |r: Range<usize>| r.map(|i| f(lo + i)).collect::<Vec<R>>());
            runs.into_iter().flatten().collect()
        }
    }
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    use super::iter::{ParChunks, ParChunksMut, ParRange};
    use std::ops::Range;

    /// `slice.par_chunks(n)` (rayon's `ParallelSlice`).
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over `n`-sized chunks.
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
            ParChunks { slice: self, size }
        }
    }

    /// `slice.par_chunks_mut(n)` (rayon's `ParallelSliceMut`).
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over mutable `n`-sized chunks.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut { slice: self, size }
        }
    }

    /// `range.into_par_iter()` (rayon's `IntoParallelIterator`).
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let sums: Vec<u64> = v.par_chunks(7).map(|c| c.iter().map(|&x| x as u64).sum()).collect();
        let want: Vec<u64> = v.chunks(7).map(|c| c.iter().map(|&x| x as u64).sum()).collect();
        assert_eq!(sums, want);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjoint() {
        let mut v = vec![0usize; 100];
        v.par_chunks_mut(9).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 9);
        }
    }

    #[test]
    fn range_into_par_iter() {
        let sq: Vec<usize> = (0..64usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq[63], 63 * 63);
        assert_eq!(sq.len(), 64);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}

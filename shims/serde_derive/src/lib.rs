//! Offline shim for `serde_derive`. Parses the item's token stream by hand
//! (no `syn`/`quote` in this container) and emits `to_json`/`from_json`
//! implementations for the serde shim's tree-model traits.
//!
//! Supported shapes — exactly what this workspace derives on:
//! - named-field structs (with `#[serde(flatten)]` on a field)
//! - newtype (single-field tuple) structs
//! - enums with unit, newtype, and struct variants; externally tagged by
//!   default, internally tagged with `#[serde(tag = "...")]`, and
//!   `#[serde(rename_all = "snake_case")]` on the container
//!
//! Anything else (generics, unsupported attributes) panics at compile time
//! with a pointer to extend this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    tag: Option<String>,
    rename_all: bool,
    flatten: bool,
    default: Option<String>,
}

struct Field {
    name: String,
    flatten: bool,
    /// Path of a `fn() -> T` supplying the value when the key is absent
    /// (`#[serde(default = "path")]`).
    default: Option<String>,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn take_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_attr_group(g.stream(), &mut out);
                *i += 2;
            }
            _ => return out,
        }
    }
}

fn parse_attr_group(stream: TokenStream, out: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment, derive, repr, ... — not ours
    }
    let inner: Vec<TokenTree> = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect()
        }
        _ => panic!("serde shim: malformed #[serde(...)] attribute"),
    };
    let mut j = 0;
    while j < inner.len() {
        let key = match &inner[j] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde shim: unexpected token in #[serde(...)]: {t}"),
        };
        j += 1;
        let val = match inner.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                j += 1;
                let lit = match &inner[j] {
                    TokenTree::Literal(l) => l.to_string(),
                    t => panic!("serde shim: expected literal after `{key} =`, got {t}"),
                };
                j += 1;
                Some(lit.trim_matches('"').to_string())
            }
            _ => None,
        };
        if matches!(inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
        match (key.as_str(), val) {
            ("tag", Some(v)) => out.tag = Some(v),
            ("rename_all", Some(v)) => {
                assert!(
                    v == "snake_case",
                    "serde shim: only rename_all = \"snake_case\" is supported, got {v:?}"
                );
                out.rename_all = true;
            }
            ("flatten", None) => out.flatten = true,
            ("default", Some(v)) => out.default = Some(v),
            (k, _) => panic!(
                "serde shim: unsupported #[serde({k})] — extend shims/serde_derive to cover it"
            ),
        }
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skips one type, stopping after the comma that ends it (or at end of
/// tokens). Commas inside `<...>` belong to the type; commas inside
/// parens/brackets are invisible here because those are single `Group` trees.
fn skip_type_and_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i64;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde shim: expected field name, got {t}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde shim: expected `:` after field `{name}`, got {t}"),
        }
        skip_type_and_comma(&toks, &mut i);
        fields.push(Field { name, flatten: attrs.flatten, default: attrs.default });
    }
    fields
}

fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < toks.len() {
        skip_type_and_comma(&toks, &mut i);
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _attrs = take_attrs(&toks, &mut i); // doc comments etc.
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde shim: expected variant name, got {t}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                assert!(
                    arity == 1,
                    "serde shim: tuple variant `{name}` has {arity} fields; only newtype variants are supported"
                );
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim: expected `struct` or `enum`, got {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim: expected item name, got {t}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: derive on generic type `{name}` is not supported");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                assert!(
                    arity == 1,
                    "serde shim: tuple struct `{name}` has {arity} fields; only newtype structs are supported"
                );
                Shape::NewtypeStruct
            }
            t => panic!("serde shim: unsupported struct body for `{name}`: {t:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde shim: unsupported enum body for `{name}`: {t:?}"),
        },
        other => panic!("serde shim: cannot derive on `{other}` items"),
    };
    Item { name, attrs, shape }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// serde's `rename_all = "snake_case"` transform for PascalCase names.
fn snake(s: &str) -> String {
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_tag(item: &Item, variant: &str) -> String {
    if item.attrs.rename_all {
        snake(variant)
    } else {
        variant.to_string()
    }
}

const VALUE: &str = "::serde::json::Value";
const ERROR: &str = "::serde::json::Error";

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let n = &f.name;
        let access = format!("{access_prefix}{n}");
        if f.flatten {
            s.push_str(&format!(
                "match ::serde::Serialize::to_json(&{access}) {{ \
                   {VALUE}::Object(m) => obj.extend(m), \
                   other => obj.push((\"{n}\".to_string(), other)), \
                 }};\n"
            ));
        } else {
            s.push_str(&format!(
                "obj.push((\"{n}\".to_string(), ::serde::Serialize::to_json(&{access})));\n"
            ));
        }
    }
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes = ser_named_fields(fields, "self.");
            format!(
                "let mut obj: Vec<(String, {VALUE})> = Vec::new();\n{pushes}{VALUE}::Object(obj)"
            )
        }
        Shape::NewtypeStruct => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let tag_str = variant_tag(item, vn);
                let arm = match (&v.kind, &item.attrs.tag) {
                    (VariantKind::Unit, None) => {
                        format!("Self::{vn} => {VALUE}::String(\"{tag_str}\".to_string()),\n")
                    }
                    (VariantKind::Unit, Some(tag)) => format!(
                        "Self::{vn} => {VALUE}::Object(vec![(\"{tag}\".to_string(), \
                         {VALUE}::String(\"{tag_str}\".to_string()))]),\n"
                    ),
                    (VariantKind::Newtype, None) => format!(
                        "Self::{vn}(x0) => {VALUE}::Object(vec![(\"{tag_str}\".to_string(), \
                         ::serde::Serialize::to_json(x0))]),\n"
                    ),
                    (VariantKind::Newtype, Some(_)) => {
                        panic!("serde shim: newtype variant `{vn}` cannot be internally tagged")
                    }
                    (VariantKind::Struct(fields), tag) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pat = pat.join(", ");
                        let pushes = ser_named_fields(fields, "*");
                        let head = match tag {
                            Some(tag) => format!(
                                "obj.push((\"{tag}\".to_string(), \
                                 {VALUE}::String(\"{tag_str}\".to_string())));\n"
                            ),
                            None => String::new(),
                        };
                        let close = match tag {
                            Some(_) => format!("{VALUE}::Object(obj)"),
                            None => format!(
                                "{VALUE}::Object(vec![(\"{tag_str}\".to_string(), \
                                 {VALUE}::Object(obj))])"
                            ),
                        };
                        format!(
                            "Self::{vn} {{ {pat} }} => {{ \
                               let mut obj: Vec<(String, {VALUE})> = Vec::new(); \
                               {head}{pushes}{close} \
                             }},\n"
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> {VALUE} {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Expression producing one deserialized named field. `obj` names the local
/// `&[(String, Value)]` binding; `whole` names the `&Value` a flattened field
/// reads from.
fn de_field_expr(f: &Field, obj: &str, whole: &str) -> String {
    let n = &f.name;
    if f.flatten {
        format!("{n}: ::serde::Deserialize::from_json({whole})?")
    } else if let Some(path) = &f.default {
        format!(
            "{n}: match ::serde::json::obj_get({obj}, \"{n}\") {{ \
               Some(x) => ::serde::Deserialize::from_json(x)?, \
               None => {path}(), \
             }}"
        )
    } else {
        format!(
            "{n}: match ::serde::json::obj_get({obj}, \"{n}\") {{ \
               Some(x) => ::serde::Deserialize::from_json(x)?, \
               None => ::serde::Deserialize::from_json(&{VALUE}::Null) \
                   .map_err(|_| {ERROR}::missing_field(\"{n}\"))?, \
             }}"
        )
    }
}

fn de_fields(fields: &[Field], obj: &str, whole: &str) -> String {
    fields.iter().map(|f| de_field_expr(f, obj, whole)).collect::<Vec<_>>().join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits = de_fields(fields, "obj", "v");
            format!(
                "let obj = v.as_object().ok_or_else(|| {ERROR}::expected(\"object\", v))?;\n\
                 Ok(Self {{ {inits} }})"
            )
        }
        Shape::NewtypeStruct => "Ok(Self(::serde::Deserialize::from_json(v)?))".to_string(),
        Shape::Enum(variants) => match &item.attrs.tag {
            Some(tag) => {
                // Internally tagged: dispatch on obj[tag], fields from obj.
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    let tag_str = variant_tag(item, vn);
                    let arm = match &v.kind {
                        VariantKind::Unit => format!("\"{tag_str}\" => Ok(Self::{vn}),\n"),
                        VariantKind::Newtype => {
                            panic!("serde shim: newtype variant `{vn}` cannot be internally tagged")
                        }
                        VariantKind::Struct(fields) => {
                            let inits = de_fields(fields, "obj", "v");
                            format!("\"{tag_str}\" => Ok(Self::{vn} {{ {inits} }}),\n")
                        }
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let obj = v.as_object().ok_or_else(|| {ERROR}::expected(\"object\", v))?;\n\
                     let tag = ::serde::json::obj_get(obj, \"{tag}\")\
                         .and_then(|t| t.as_str())\
                         .ok_or_else(|| {ERROR}::custom(\
                             \"missing tag `{tag}` on `{name}`\"))?;\n\
                     match tag {{\n{arms}\
                         other => Err({ERROR}::custom(format!(\
                             \"unknown variant `{{other}}` of `{name}`\"))),\n\
                     }}"
                )
            }
            None => {
                // Externally tagged: strings name unit variants, single-entry
                // objects carry data variants.
                let mut unit_arms = String::new();
                let mut data_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    let tag_str = variant_tag(item, vn);
                    match &v.kind {
                        VariantKind::Unit => {
                            unit_arms.push_str(&format!("\"{tag_str}\" => Ok(Self::{vn}),\n"));
                        }
                        VariantKind::Newtype => {
                            data_arms.push_str(&format!(
                                "\"{tag_str}\" => Ok(Self::{vn}(\
                                 ::serde::Deserialize::from_json(inner)?)),\n"
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            let inits = de_fields(fields, "vobj", "inner");
                            data_arms.push_str(&format!(
                                "\"{tag_str}\" => {{ \
                                   let vobj = inner.as_object().ok_or_else(|| \
                                       {ERROR}::expected(\"object\", inner))?; \
                                   Ok(Self::{vn} {{ {inits} }}) \
                                 }},\n"
                            ));
                        }
                    }
                }
                format!(
                    "match v {{\n\
                         {VALUE}::String(s) => match s.as_str() {{\n{unit_arms}\
                             other => Err({ERROR}::custom(format!(\
                                 \"unknown variant `{{other}}` of `{name}`\"))),\n\
                         }},\n\
                         {VALUE}::Object(m) if m.len() == 1 => {{\n\
                             let (k, inner) = &m[0];\n\
                             match k.as_str() {{\n{data_arms}\
                                 other => Err({ERROR}::custom(format!(\
                                     \"unknown variant `{{other}}` of `{name}`\"))),\n\
                             }}\n\
                         }},\n\
                         other => Err({ERROR}::expected(\"variant of `{name}`\", other)),\n\
                     }}"
                )
            }
        },
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &{VALUE}) -> ::std::result::Result<Self, {ERROR}> {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse().unwrap_or_else(|e| {
        panic!("serde shim: generated Serialize for `{}` failed to parse: {e}", item.name)
    })
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse().unwrap_or_else(|e| {
        panic!("serde shim: generated Deserialize for `{}` failed to parse: {e}", item.name)
    })
}

//! The JSON tree the shim's `Serialize`/`Deserialize` traits target, plus a
//! parser and compact/pretty printers. Re-exported by the `serde_json` shim
//! as its `Value`.
//!
//! Objects are insertion-ordered `Vec<(String, Value)>` (like serde_json
//! with `preserve_order`), so serialised structs keep declaration order.

use std::fmt;

/// An insertion-ordered JSON object.
pub type Map = Vec<(String, Value)>;

/// A JSON number. Integers keep their integer identity so `as_u64` works on
/// parsed counters; floats print with Rust's shortest-roundtrip formatting.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A (finite) float.
    Float(f64),
}

impl Number {
    /// This number as an f64 (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(x) => x,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed integer forms compare by value.
            (Number::PosInt(a), Number::NegInt(b)) | (Number::NegInt(b), Number::PosInt(a)) => {
                b >= 0 && a == b as u64
            }
            _ => false,
        }
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// Looks up `key` in an insertion-ordered object.
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => obj_get(m, key),
            _ => None,
        }
    }

    /// RFC 6901 JSON-pointer lookup (`/a/b/0`).
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut cur = self;
        for raw in pointer[1..].split('/') {
            let token = raw.replace("~1", "/").replace("~0", "~");
            cur = match cur {
                Value::Object(m) => obj_get(m, &token)?,
                Value::Array(a) => a.get(token.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::NegInt(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as i64, if this is an integer in i64 range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// One-word kind name for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// JSON (de)serialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "expected X, got Y" for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error::custom(format!("expected {what}, got {}", got.kind_name()))
    }

    /// A missing required field.
    pub fn missing_field(name: &str) -> Error {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // Keep whole floats float-typed across a roundtrip, as
                // serde_json does ("1000.0", not "1000").
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; serde_json writes null.
                out.push_str("null");
            }
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number_into(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, x);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, x);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, x, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, x, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl Value {
    /// Compact JSON text.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }

    /// Pretty JSON text (2-space indent).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_compact_string())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out: Map = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses JSON text into a [`Value`]. Trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":1,"b":[true,null,-2.5],"c":{"d":"x\ny"},"e":1e3}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.pointer("/b/2").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.pointer("/c/d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(1000.0));
        let back = parse(&v.to_compact_string()).unwrap();
        assert_eq!(v, back);
        let pretty = v.to_pretty_string();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_text_roundtrips_exactly() {
        for x in [0.1f64, 1.0, 12345.6789, 1e-12, f64::MAX] {
            let v = Value::Number(Number::Float(x));
            let back = parse(&v.to_compact_string()).unwrap();
            assert_eq!(back.as_f64(), Some(x));
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}

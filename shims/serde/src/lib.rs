//! Offline shim for `serde`: `Serialize`/`Deserialize` defined directly over
//! an owned JSON tree ([`json::Value`]) instead of serde's
//! serializer/deserializer visitors. The workspace only ever serialises to
//! and from JSON (via the `serde_json` shim), so the tree model covers the
//! full surface while staying a few hundred lines.
//!
//! The derive macros (re-exported from `serde_derive`) generate `to_json` /
//! `from_json` implementations honouring the `#[serde(...)]` attributes the
//! workspace uses: `tag`, `rename_all = "snake_case"`, and `flatten`.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Number, Value};

/// A value that can render itself as a JSON tree.
pub trait Serialize {
    /// This value as JSON.
    fn to_json(&self) -> Value;
}

/// A value that can reconstruct itself from a JSON tree.
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        // Shortest-roundtrip f32 text, re-read as f64, so `1.1f32` prints as
        // "1.1" (as real serde_json does) rather than the f64 widening.
        let s = format!("{self}");
        Value::Number(Number::Float(s.parse::<f64>().unwrap_or(*self as f64)))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", n, stringify!($t))))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", n, stringify!($t))))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", v))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("f32", v))? as f32)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        arr.iter().map(T::from_json).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if arr.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, got {}", $len, arr.len())));
                }
                Ok(($($t::from_json(&arr[$n])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_json(v)?))).collect()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_json(&42u64.to_json()).unwrap(), 42);
        assert_eq!(i32::from_json(&(-7i32).to_json()).unwrap(), -7);
        let x = 1234.5678e-3f64;
        assert_eq!(f64::from_json(&x.to_json()).unwrap(), x);
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        let v: Vec<(u64, u64)> = vec![(1, 2), (3, 4)];
        assert_eq!(Vec::<(u64, u64)>::from_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn f32_serialises_shortest() {
        assert_eq!(format!("{}", 1.1f32.to_json()), "1.1");
        assert_eq!(f32::from_json(&1.1f32.to_json()).unwrap(), 1.1f32);
    }
}

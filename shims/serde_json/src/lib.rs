//! Offline shim for `serde_json`, backed by the serde shim's JSON tree
//! (`serde::json::Value`). Provides the surface this workspace uses:
//! `json!`, `to_string`, `to_string_pretty`, `to_writer`, `from_str`,
//! `to_value`, and `Value`/`Number`/`Error` re-exports.

pub use serde::json::{Error, Map, Number, Value};

/// Serialises `value` to its JSON tree. Infallible in the tree model (the
/// real serde_json returns `Result`; no caller here inspects the error arm).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Compact JSON text for `value`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact_string())
}

/// Pretty JSON text (2-space indent) for `value`.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Writes compact JSON for `value` into `writer`.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer
        .write_all(to_string(value)?.as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_json(&serde::json::parse(s)?)
}

/// Builds a [`Value`] from JSON-ish syntax. Keys must be string literals;
/// values may be nested objects/arrays, `null`, booleans, or any
/// `Serialize` expression.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation muncher for [`json!`] — not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////// arrays ////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$last),])
    };

    //////////////////// objects ////////////////////
    // End of input.
    (@object $object:ident () ()) => {};
    // Entry with a nested-object value.
    (@object $object:ident ($key:tt) (: {$($map:tt)*} $(, $($rest:tt)*)?)) => {
        $object.push(($key.to_string(), $crate::json_internal!({$($map)*})));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Entry with a nested-array value.
    (@object $object:ident ($key:tt) (: [$($arr:tt)*] $(, $($rest:tt)*)?)) => {
        $object.push(($key.to_string(), $crate::json_internal!([$($arr)*])));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Entry with a `null` / bool value.
    (@object $object:ident ($key:tt) (: null $(, $($rest:tt)*)?)) => {
        $object.push(($key.to_string(), $crate::Value::Null));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($key:tt) (: true $(, $($rest:tt)*)?)) => {
        $object.push(($key.to_string(), $crate::Value::Bool(true)));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($key:tt) (: false $(, $($rest:tt)*)?)) => {
        $object.push(($key.to_string(), $crate::Value::Bool(false)));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Entry with an expression value, more entries follow.
    (@object $object:ident ($key:tt) (: $value:expr , $($rest:tt)*)) => {
        $object.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    // Final entry with an expression value.
    (@object $object:ident ($key:tt) (: $value:expr)) => {
        $object.push(($key.to_string(), $crate::to_value(&$value)));
    };
    // Take the next key (a string literal).
    (@object $object:ident () ($key:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($key) ($($rest)*));
    };

    //////////////////// entry points ////////////////////
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_internal!(@object object () ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
// `json!` object expansion is one `push` per literal entry; only this
// crate's own tests see the expansion as local code, so the lint is
// allowed here (downstream crates get the external-macro exemption).
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "kernel_a";
        let v = json!({
            "traceEvents": [
                { "ph": "X", "name": name, "dur": 12.5, "args": { "track": 3u32 } },
                { "ph": "M", "flag": true, "opt": Option::<u64>::None },
            ],
            "empty_obj": {},
            "empty_arr": [],
            "nothing": null,
        });
        assert_eq!(v.pointer("/traceEvents/0/name").unwrap().as_str(), Some("kernel_a"));
        assert_eq!(v.pointer("/traceEvents/0/args/track").unwrap().as_u64(), Some(3));
        assert_eq!(v.pointer("/traceEvents/1/flag").unwrap().as_bool(), Some(true));
        assert!(v.pointer("/traceEvents/1/opt").unwrap().is_null());
        assert!(v.get("empty_obj").unwrap().is_object());
        assert!(v.get("nothing").unwrap().is_null());
    }

    #[test]
    fn string_roundtrip() {
        let v = json!({ "a": [1u64, 2u64], "b": "x" });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn writer_and_io_error_conversion() {
        fn io_path() -> std::io::Result<Vec<u8>> {
            let mut out = Vec::new();
            to_writer(&mut out, &json!({ "k": 1u64 }))?;
            Ok(out)
        }
        assert_eq!(io_path().unwrap(), br#"{"k":1}"#.to_vec());
    }
}

//! Offline shim for `criterion` 0.5: enough API for the workspace's
//! `harness = false` bench targets to compile and produce useful output.
//! Each `Bencher::iter` call runs a short warmup, then times a fixed number
//! of iterations and prints mean wall-clock time per iteration — no
//! statistical analysis, plots, or CLI.

use std::fmt;
use std::time::Instant;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{id}"), 10, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&label, self.sample_size, |bench| f(bench, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier with an attached parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: format!("{function}"), parameter: format!("{parameter}") }
    }

    /// Parameter-only id (`from_parameter` in real criterion).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: format!("{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Default)]
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times `f`, accumulating into this bencher.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup, then the timed run.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        self.total_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }

    fn report<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: usize, mut run: F) {
        for _ in 0..samples.saturating_sub(1) {
            run(self);
        }
        if self.iters > 0 {
            let mean_ns = self.total_ns / self.iters as u128;
            println!("{label}: mean {:.3} ms/iter ({} iters)", mean_ns as f64 / 1e6, self.iters);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher::default();
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    if b.iters > 0 {
        let mean_ns = b.total_ns / b.iters as u128;
        println!("{label}: mean {:.3} ms/iter ({} iters)", mean_ns as f64 / 1e6, b.iters);
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
